//! Counters collected by the simulation engines.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters from a functional (accuracy-oriented) simulation.
///
/// The headline derived metric is [`SimStats::accuracy`] — the paper's
/// *prediction accuracy*, "the percentage of TLB misses that hit in the
/// prefetch buffer at the time of the reference" (§3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Data references simulated.
    pub accesses: u64,
    /// TLB misses (including those satisfied by the prefetch buffer).
    pub misses: u64,
    /// TLB misses satisfied by the prefetch buffer.
    pub prefetch_buffer_hits: u64,
    /// TLB misses that walked the page table.
    pub demand_walks: u64,
    /// Prefetches inserted into the buffer.
    pub prefetches_issued: u64,
    /// Prefetch candidates dropped because the page was already resident
    /// in the TLB or the buffer.
    pub prefetches_filtered: u64,
    /// Prefetched entries evicted from the buffer before use.
    pub prefetches_evicted_unused: u64,
    /// State-maintenance memory operations (RP's pointer updates).
    pub maintenance_ops: u64,
    /// Distinct pages touched (process footprint).
    pub footprint_pages: u64,
}

impl SimStats {
    /// Accumulates another run's (or shard's) counters into `self`.
    ///
    /// Every counter is a plain sum, which is exact for all of them
    /// except [`footprint_pages`](SimStats::footprint_pages): distinct
    /// pages touched by more than one shard would be double-counted, so
    /// a sum is only an upper bound. The sharded runner
    /// (`run_app_sharded`) therefore replaces the merged footprint with
    /// the exact union of the shards' page sets after merging; callers
    /// merging stats over *disjoint* address spaces (e.g. different
    /// applications) can use the sum as-is.
    ///
    /// Merging is commutative and associative, so a fold over shard
    /// results is deterministic regardless of which shard finished
    /// first — the fold order, not the completion order, defines the
    /// result.
    pub fn merge(&mut self, other: &SimStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.prefetch_buffer_hits += other.prefetch_buffer_hits;
        self.demand_walks += other.demand_walks;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetches_filtered += other.prefetches_filtered;
        self.prefetches_evicted_unused += other.prefetches_evicted_unused;
        self.maintenance_ops += other.maintenance_ops;
        self.footprint_pages += other.footprint_pages;
    }

    /// TLB miss rate: misses / accesses (0 before any access).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Prediction accuracy: prefetch-buffer hits / TLB misses (§3.2).
    ///
    /// Zero when there were no misses.
    pub fn accuracy(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.prefetch_buffer_hits as f64 / self.misses as f64
        }
    }

    /// Fraction of issued prefetches that were eventually used.
    pub fn prefetch_efficiency(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetch_buffer_hits as f64 / self.prefetches_issued as f64
        }
    }

    /// Extra memory operations per TLB miss (prefetch fetches plus
    /// maintenance) — the traffic axis of the DP-vs-RP comparison.
    pub fn memory_ops_per_miss(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            (self.prefetches_issued + self.maintenance_ops) as f64 / self.misses as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses {}, misses {} (rate {:.4}), accuracy {:.3}, traffic/miss {:.2}",
            self.accesses,
            self.misses,
            self.miss_rate(),
            self.accuracy(),
            self.memory_ops_per_miss()
        )
    }
}

/// Counters from a timing (cycle-accounting) simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingStats {
    /// Total execution cycles.
    pub cycles: f64,
    /// Data references simulated.
    pub accesses: u64,
    /// TLB misses.
    pub misses: u64,
    /// Misses satisfied by an already-arrived prefetch (no stall).
    pub covered_hits: u64,
    /// Misses whose prefetch was still in flight (partial stall).
    pub inflight_hits: u64,
    /// Misses served by a full-penalty demand walk.
    pub demand_misses: u64,
    /// Cycles stalled on demand walks.
    pub stall_demand: f64,
    /// Cycles stalled waiting for in-flight prefetches.
    pub stall_inflight: f64,
    /// Cycles stalled waiting for pending state maintenance (RP's
    /// LRU-stack updates).
    pub stall_maintenance: f64,
    /// Prefetch fetches issued on the memory channel.
    pub channel_fetches: u64,
    /// Maintenance operations issued on the memory channel.
    pub channel_maintenance: u64,
    /// Prefetch opportunities skipped because the channel was busy (the
    /// paper's RP fallback mode).
    pub prefetches_skipped_busy: u64,
    /// Prefetches dropped because too many were outstanding.
    pub prefetches_dropped_backlog: u64,
}

impl TimingStats {
    /// Execution cycles normalised against a baseline run (the paper's
    /// Table 3 metric).
    pub fn normalized_against(&self, baseline: &TimingStats) -> f64 {
        if baseline.cycles == 0.0 {
            0.0
        } else {
            self.cycles / baseline.cycles
        }
    }

    /// Cycles per access.
    pub fn cpi_proxy(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.cycles / self.accesses as f64
        }
    }
}

impl fmt::Display for TimingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles {:.0} ({:.3}/access), misses {} [covered {}, in-flight {}, demand {}]",
            self.cycles,
            self.cpi_proxy(),
            self.misses,
            self.covered_hits,
            self.inflight_hits,
            self.demand_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.prefetch_efficiency(), 0.0);
        assert_eq!(s.memory_ops_per_miss(), 0.0);
    }

    #[test]
    fn merge_sums_every_counter_and_commutes() {
        let a = SimStats {
            accesses: 100,
            misses: 20,
            prefetch_buffer_hits: 15,
            demand_walks: 5,
            prefetches_issued: 30,
            prefetches_filtered: 4,
            prefetches_evicted_unused: 3,
            maintenance_ops: 7,
            footprint_pages: 50,
        };
        let b = SimStats {
            accesses: 11,
            misses: 2,
            prefetch_buffer_hits: 1,
            demand_walks: 1,
            prefetches_issued: 6,
            prefetches_filtered: 2,
            prefetches_evicted_unused: 1,
            maintenance_ops: 3,
            footprint_pages: 9,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        assert_eq!(ab.accesses, 111);
        assert_eq!(ab.misses, 22);
        assert_eq!(ab.prefetch_buffer_hits, 16);
        assert_eq!(ab.demand_walks, 6);
        assert_eq!(ab.prefetches_issued, 36);
        assert_eq!(ab.prefetches_filtered, 6);
        assert_eq!(ab.prefetches_evicted_unused, 4);
        assert_eq!(ab.maintenance_ops, 10);
        assert_eq!(ab.footprint_pages, 59);
    }

    #[test]
    fn merging_the_default_is_the_identity() {
        let s = SimStats {
            accesses: 42,
            misses: 7,
            ..Default::default()
        };
        let mut merged = s;
        merged.merge(&SimStats::default());
        assert_eq!(merged, s);
        let mut from_zero = SimStats::default();
        from_zero.merge(&s);
        assert_eq!(from_zero, s);
    }

    #[test]
    fn accuracy_is_hits_over_misses() {
        let s = SimStats {
            accesses: 100,
            misses: 20,
            prefetch_buffer_hits: 15,
            ..Default::default()
        };
        assert!((s.accuracy() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn traffic_combines_fetches_and_maintenance() {
        let s = SimStats {
            misses: 10,
            prefetches_issued: 20,
            maintenance_ops: 40,
            ..Default::default()
        };
        assert!((s.memory_ops_per_miss() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_against_baseline() {
        let base = TimingStats {
            cycles: 200.0,
            ..Default::default()
        };
        let run = TimingStats {
            cycles: 170.0,
            ..Default::default()
        };
        assert!((run.normalized_against(&base) - 0.85).abs() < 1e-12);
        assert_eq!(run.normalized_against(&TimingStats::default()), 0.0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!SimStats::default().to_string().is_empty());
        assert!(!TimingStats::default().to_string().is_empty());
    }
}
