//! Counters collected by the simulation engines.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters from a functional (accuracy-oriented) simulation.
///
/// The headline derived metric is [`SimStats::accuracy`] — the paper's
/// *prediction accuracy*, "the percentage of TLB misses that hit in the
/// prefetch buffer at the time of the reference" (§3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Data references simulated.
    pub accesses: u64,
    /// TLB misses (including those satisfied by the prefetch buffer).
    pub misses: u64,
    /// TLB misses satisfied by the prefetch buffer.
    pub prefetch_buffer_hits: u64,
    /// TLB misses that walked the page table.
    pub demand_walks: u64,
    /// Prefetches inserted into the buffer.
    pub prefetches_issued: u64,
    /// Prefetch candidates dropped because the page was already resident
    /// in the TLB or the buffer.
    pub prefetches_filtered: u64,
    /// Prefetched entries evicted from the buffer before use.
    pub prefetches_evicted_unused: u64,
    /// State-maintenance memory operations (RP's pointer updates).
    pub maintenance_ops: u64,
    /// Distinct pages touched (process footprint).
    pub footprint_pages: u64,
}

impl SimStats {
    /// TLB miss rate: misses / accesses (0 before any access).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Prediction accuracy: prefetch-buffer hits / TLB misses (§3.2).
    ///
    /// Zero when there were no misses.
    pub fn accuracy(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.prefetch_buffer_hits as f64 / self.misses as f64
        }
    }

    /// Fraction of issued prefetches that were eventually used.
    pub fn prefetch_efficiency(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetch_buffer_hits as f64 / self.prefetches_issued as f64
        }
    }

    /// Extra memory operations per TLB miss (prefetch fetches plus
    /// maintenance) — the traffic axis of the DP-vs-RP comparison.
    pub fn memory_ops_per_miss(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            (self.prefetches_issued + self.maintenance_ops) as f64 / self.misses as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses {}, misses {} (rate {:.4}), accuracy {:.3}, traffic/miss {:.2}",
            self.accesses,
            self.misses,
            self.miss_rate(),
            self.accuracy(),
            self.memory_ops_per_miss()
        )
    }
}

/// Counters from a timing (cycle-accounting) simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingStats {
    /// Total execution cycles.
    pub cycles: f64,
    /// Data references simulated.
    pub accesses: u64,
    /// TLB misses.
    pub misses: u64,
    /// Misses satisfied by an already-arrived prefetch (no stall).
    pub covered_hits: u64,
    /// Misses whose prefetch was still in flight (partial stall).
    pub inflight_hits: u64,
    /// Misses served by a full-penalty demand walk.
    pub demand_misses: u64,
    /// Cycles stalled on demand walks.
    pub stall_demand: f64,
    /// Cycles stalled waiting for in-flight prefetches.
    pub stall_inflight: f64,
    /// Cycles stalled waiting for pending state maintenance (RP's
    /// LRU-stack updates).
    pub stall_maintenance: f64,
    /// Prefetch fetches issued on the memory channel.
    pub channel_fetches: u64,
    /// Maintenance operations issued on the memory channel.
    pub channel_maintenance: u64,
    /// Prefetch opportunities skipped because the channel was busy (the
    /// paper's RP fallback mode).
    pub prefetches_skipped_busy: u64,
    /// Prefetches dropped because too many were outstanding.
    pub prefetches_dropped_backlog: u64,
}

impl TimingStats {
    /// Execution cycles normalised against a baseline run (the paper's
    /// Table 3 metric).
    pub fn normalized_against(&self, baseline: &TimingStats) -> f64 {
        if baseline.cycles == 0.0 {
            0.0
        } else {
            self.cycles / baseline.cycles
        }
    }

    /// Cycles per access.
    pub fn cpi_proxy(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.cycles / self.accesses as f64
        }
    }
}

impl fmt::Display for TimingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles {:.0} ({:.3}/access), misses {} [covered {}, in-flight {}, demand {}]",
            self.cycles,
            self.cpi_proxy(),
            self.misses,
            self.covered_hits,
            self.inflight_hits,
            self.demand_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.prefetch_efficiency(), 0.0);
        assert_eq!(s.memory_ops_per_miss(), 0.0);
    }

    #[test]
    fn accuracy_is_hits_over_misses() {
        let s = SimStats {
            accesses: 100,
            misses: 20,
            prefetch_buffer_hits: 15,
            ..Default::default()
        };
        assert!((s.accuracy() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn traffic_combines_fetches_and_maintenance() {
        let s = SimStats {
            misses: 10,
            prefetches_issued: 20,
            maintenance_ops: 40,
            ..Default::default()
        };
        assert!((s.memory_ops_per_miss() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_against_baseline() {
        let base = TimingStats {
            cycles: 200.0,
            ..Default::default()
        };
        let run = TimingStats {
            cycles: 170.0,
            ..Default::default()
        };
        assert!((run.normalized_against(&base) - 0.85).abs() < 1e-12);
        assert_eq!(run.normalized_against(&TimingStats::default()), 0.0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!SimStats::default().to_string().is_empty());
        assert!(!TimingStats::default().to_string().is_empty());
    }
}
