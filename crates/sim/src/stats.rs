//! Counters collected by the simulation engines.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of streams a [`PerStreamStats`] breakdown can
/// attribute (re-exported bound of
/// [`tlbsim_workloads::MultiStreamSpec`]).
///
/// The breakdown is heap-backed (one `StreamStats` per stream), so the
/// bound is a sanity limit on mix width, not a storage constraint; it
/// also keeps every stream index representable as a 16-bit
/// `tlbsim_core::Asid` tag with room to spare.
pub const MAX_STREAMS: usize = tlbsim_workloads::MAX_STREAMS;

/// One stream's share of a multiprogrammed run.
///
/// The counters mirror the attribution-relevant subset of [`SimStats`]:
/// prefetches are attributed to the stream whose *miss* triggered them,
/// matching the paper's per-application accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Data references the stream issued.
    pub accesses: u64,
    /// TLB misses on the stream's references.
    pub misses: u64,
    /// The stream's misses satisfied by the prefetch buffer.
    pub prefetch_buffer_hits: u64,
    /// The stream's misses that walked the page table.
    pub demand_walks: u64,
    /// Prefetches issued while handling the stream's misses.
    pub prefetches_issued: u64,
    /// Distinct pages the stream demand-missed on while it was the
    /// attributed stream — its slice of the aggregate footprint. Unlike
    /// the aggregate [`SimStats::footprint_pages`], prefetched-but-
    /// never-referenced pages are not included, so the per-stream sum is
    /// a lower bound on the aggregate (exact when no prefetcher runs and
    /// the streams' address regions are disjoint).
    pub footprint_pages: u64,
}

impl StreamStats {
    /// Accumulates another share's counters into `self`.
    ///
    /// `footprint_pages` sums like the rest — exact only for disjoint
    /// page sets. The sharded mix runner replaces merged per-stream
    /// footprints with exact per-stream unions after folding, the same
    /// reconciliation the aggregate footprint gets.
    pub fn add(&mut self, other: &StreamStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.prefetch_buffer_hits += other.prefetch_buffer_hits;
        self.demand_walks += other.demand_walks;
        self.prefetches_issued += other.prefetches_issued;
        self.footprint_pages += other.footprint_pages;
    }

    /// The stream's TLB miss rate (0 before any access).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// The stream's prediction accuracy (0 when it had no misses).
    pub fn accuracy(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.prefetch_buffer_hits as f64 / self.misses as f64
        }
    }
}

/// Per-stream attribution of a multiprogrammed (interleaved) run.
///
/// Empty (`len() == 0`) for single-stream runs driven through the plain
/// entry points — the breakdown only materialises when a mix-aware
/// runner (`run_mix` / `run_mix_sharded`) attributes segments. Storage
/// is one heap-backed `StreamStats` per stream, sized at mix width, so
/// hundreds of streams cost hundreds of rows — not a fixed inline
/// array. The breakdown is built and resized only at run setup and
/// merge time, never on the per-access hot path, which preserves the
/// engines' zero-allocation steady state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerStreamStats {
    streams: Vec<StreamStats>,
}

impl PerStreamStats {
    /// An empty breakdown sized for `streams` streams.
    ///
    /// # Panics
    ///
    /// Panics if `streams` exceeds [`MAX_STREAMS`] — the mix constructor
    /// (`MultiStreamSpec::new`) rejects such mixes before a runner can
    /// get here.
    pub fn with_streams(streams: usize) -> Self {
        assert!(
            streams <= MAX_STREAMS,
            "per-stream breakdown supports at most {MAX_STREAMS} streams"
        );
        PerStreamStats {
            streams: vec![StreamStats::default(); streams],
        }
    }

    /// Number of attributed streams (0 = no breakdown).
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the run carried no per-stream attribution.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The attributed shares, in mix rotation order.
    pub fn streams(&self) -> &[StreamStats] {
        &self.streams
    }

    /// Adds `share` to stream `index`'s counters.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not below [`len`](PerStreamStats::len).
    pub fn record(&mut self, index: usize, share: &StreamStats) {
        assert!(
            index < self.streams.len(),
            "stream index {index} out of range"
        );
        self.streams[index].add(share);
    }

    /// Overwrites stream `index`'s attributed footprint with an exactly
    /// computed page count — the reconciliation hook the mix runners use
    /// after unioning per-stream page sets (summing shard-local
    /// footprints would double-count pages shards share).
    ///
    /// # Panics
    ///
    /// Panics if `index` is not below [`len`](PerStreamStats::len).
    pub fn set_footprint(&mut self, index: usize, pages: u64) {
        assert!(
            index < self.streams.len(),
            "stream index {index} out of range"
        );
        self.streams[index].footprint_pages = pages;
    }

    /// Merges another breakdown stream-by-stream.
    ///
    /// Shares merge positionally (shard `k`'s stream `i` is the same
    /// stream as shard `k+1`'s stream `i`), and the merged breakdown
    /// covers the wider of the two — merging an empty breakdown is the
    /// identity, so single-stream paths stay breakdown-free end to end.
    pub fn merge(&mut self, other: &PerStreamStats) {
        if other.streams.len() > self.streams.len() {
            self.streams
                .resize(other.streams.len(), StreamStats::default());
        }
        for (mine, theirs) in self.streams.iter_mut().zip(&other.streams) {
            mine.add(theirs);
        }
    }
}

/// Counters from a functional (accuracy-oriented) simulation.
///
/// The headline derived metric is [`SimStats::accuracy`] — the paper's
/// *prediction accuracy*, "the percentage of TLB misses that hit in the
/// prefetch buffer at the time of the reference" (§3.2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Data references simulated.
    pub accesses: u64,
    /// TLB misses (including those satisfied by the prefetch buffer).
    pub misses: u64,
    /// TLB misses satisfied by the prefetch buffer.
    pub prefetch_buffer_hits: u64,
    /// TLB misses that walked the page table.
    pub demand_walks: u64,
    /// Prefetches inserted into the buffer.
    pub prefetches_issued: u64,
    /// Prefetch candidates dropped because the page was already resident
    /// in the TLB or the buffer.
    pub prefetches_filtered: u64,
    /// Prefetched entries evicted from the buffer before use.
    pub prefetches_evicted_unused: u64,
    /// State-maintenance memory operations (RP's pointer updates).
    pub maintenance_ops: u64,
    /// Distinct pages touched (process footprint).
    pub footprint_pages: u64,
    /// Per-stream attribution of a multiprogrammed run (empty for
    /// single-stream runs; see [`PerStreamStats`]).
    pub per_stream: PerStreamStats,
}

impl SimStats {
    /// Accumulates another run's (or shard's) counters into `self`.
    ///
    /// Every counter is a plain sum, which is exact for all of them
    /// except [`footprint_pages`](SimStats::footprint_pages): distinct
    /// pages touched by more than one shard would be double-counted, so
    /// a sum is only an upper bound. The sharded runner
    /// (`run_app_sharded`) therefore replaces the merged footprint with
    /// the exact union of the shards' page sets after merging; callers
    /// merging stats over *disjoint* address spaces (e.g. different
    /// applications) can use the sum as-is.
    ///
    /// Merging is commutative and associative, so a fold over shard
    /// results is deterministic regardless of which shard finished
    /// first — the fold order, not the completion order, defines the
    /// result.
    pub fn merge(&mut self, other: &SimStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.prefetch_buffer_hits += other.prefetch_buffer_hits;
        self.demand_walks += other.demand_walks;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetches_filtered += other.prefetches_filtered;
        self.prefetches_evicted_unused += other.prefetches_evicted_unused;
        self.maintenance_ops += other.maintenance_ops;
        self.footprint_pages += other.footprint_pages;
        self.per_stream.merge(&other.per_stream);
    }

    /// TLB miss rate: misses / accesses (0 before any access).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Prediction accuracy: prefetch-buffer hits / TLB misses (§3.2).
    ///
    /// Zero when there were no misses.
    pub fn accuracy(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.prefetch_buffer_hits as f64 / self.misses as f64
        }
    }

    /// Fraction of issued prefetches that were eventually used.
    pub fn prefetch_efficiency(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetch_buffer_hits as f64 / self.prefetches_issued as f64
        }
    }

    /// Extra memory operations per TLB miss (prefetch fetches plus
    /// maintenance) — the traffic axis of the DP-vs-RP comparison.
    pub fn memory_ops_per_miss(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            (self.prefetches_issued + self.maintenance_ops) as f64 / self.misses as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses {}, misses {} (rate {:.4}), accuracy {:.3}, traffic/miss {:.2}",
            self.accesses,
            self.misses,
            self.miss_rate(),
            self.accuracy(),
            self.memory_ops_per_miss()
        )
    }
}

/// Counters from a timing (cycle-accounting) simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingStats {
    /// Total execution cycles.
    pub cycles: f64,
    /// Data references simulated.
    pub accesses: u64,
    /// TLB misses.
    pub misses: u64,
    /// Misses satisfied by an already-arrived prefetch (no stall).
    pub covered_hits: u64,
    /// Misses whose prefetch was still in flight (partial stall).
    pub inflight_hits: u64,
    /// Misses served by a full-penalty demand walk.
    pub demand_misses: u64,
    /// Cycles stalled on demand walks.
    pub stall_demand: f64,
    /// Cycles stalled waiting for in-flight prefetches.
    pub stall_inflight: f64,
    /// Cycles stalled waiting for pending state maintenance (RP's
    /// LRU-stack updates).
    pub stall_maintenance: f64,
    /// Prefetch fetches issued on the memory channel.
    pub channel_fetches: u64,
    /// Maintenance operations issued on the memory channel.
    pub channel_maintenance: u64,
    /// Prefetch opportunities skipped because the channel was busy (the
    /// paper's RP fallback mode).
    pub prefetches_skipped_busy: u64,
    /// Prefetches dropped because too many were outstanding.
    pub prefetches_dropped_backlog: u64,
}

impl TimingStats {
    /// Execution cycles normalised against a baseline run (the paper's
    /// Table 3 metric).
    pub fn normalized_against(&self, baseline: &TimingStats) -> f64 {
        if baseline.cycles == 0.0 {
            0.0
        } else {
            self.cycles / baseline.cycles
        }
    }

    /// Cycles per access.
    pub fn cpi_proxy(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.cycles / self.accesses as f64
        }
    }
}

impl fmt::Display for TimingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles {:.0} ({:.3}/access), misses {} [covered {}, in-flight {}, demand {}]",
            self.cycles,
            self.cpi_proxy(),
            self.misses,
            self.covered_hits,
            self.inflight_hits,
            self.demand_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.prefetch_efficiency(), 0.0);
        assert_eq!(s.memory_ops_per_miss(), 0.0);
    }

    #[test]
    fn merge_sums_every_counter_and_commutes() {
        let a = SimStats {
            accesses: 100,
            misses: 20,
            prefetch_buffer_hits: 15,
            demand_walks: 5,
            prefetches_issued: 30,
            prefetches_filtered: 4,
            prefetches_evicted_unused: 3,
            maintenance_ops: 7,
            footprint_pages: 50,
            per_stream: PerStreamStats::default(),
        };
        let b = SimStats {
            accesses: 11,
            misses: 2,
            prefetch_buffer_hits: 1,
            demand_walks: 1,
            prefetches_issued: 6,
            prefetches_filtered: 2,
            prefetches_evicted_unused: 1,
            maintenance_ops: 3,
            footprint_pages: 9,
            per_stream: PerStreamStats::default(),
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        assert_eq!(ab.accesses, 111);
        assert_eq!(ab.misses, 22);
        assert_eq!(ab.prefetch_buffer_hits, 16);
        assert_eq!(ab.demand_walks, 6);
        assert_eq!(ab.prefetches_issued, 36);
        assert_eq!(ab.prefetches_filtered, 6);
        assert_eq!(ab.prefetches_evicted_unused, 4);
        assert_eq!(ab.maintenance_ops, 10);
        assert_eq!(ab.footprint_pages, 59);
    }

    #[test]
    fn merging_the_default_is_the_identity() {
        let s = SimStats {
            accesses: 42,
            misses: 7,
            ..Default::default()
        };
        let mut merged = s.clone();
        merged.merge(&SimStats::default());
        assert_eq!(merged, s);
        let mut from_zero = SimStats::default();
        from_zero.merge(&s);
        assert_eq!(from_zero, s);
    }

    #[test]
    fn accuracy_is_hits_over_misses() {
        let s = SimStats {
            accesses: 100,
            misses: 20,
            prefetch_buffer_hits: 15,
            ..Default::default()
        };
        assert!((s.accuracy() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn traffic_combines_fetches_and_maintenance() {
        let s = SimStats {
            misses: 10,
            prefetches_issued: 20,
            maintenance_ops: 40,
            ..Default::default()
        };
        assert!((s.memory_ops_per_miss() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_against_baseline() {
        let base = TimingStats {
            cycles: 200.0,
            ..Default::default()
        };
        let run = TimingStats {
            cycles: 170.0,
            ..Default::default()
        };
        assert!((run.normalized_against(&base) - 0.85).abs() < 1e-12);
        assert_eq!(run.normalized_against(&TimingStats::default()), 0.0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!SimStats::default().to_string().is_empty());
        assert!(!TimingStats::default().to_string().is_empty());
    }

    fn share(accesses: u64, misses: u64, hits: u64) -> StreamStats {
        StreamStats {
            accesses,
            misses,
            prefetch_buffer_hits: hits,
            demand_walks: misses - hits,
            prefetches_issued: hits,
            footprint_pages: 0,
        }
    }

    #[test]
    fn per_stream_breakdown_records_and_derives() {
        let mut per = PerStreamStats::with_streams(2);
        assert_eq!(per.len(), 2);
        assert!(!per.is_empty());
        per.record(0, &share(100, 20, 15));
        per.record(1, &share(50, 10, 2));
        per.record(1, &share(50, 10, 3));
        let streams = per.streams();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].accesses, 100);
        assert!((streams[0].accuracy() - 0.75).abs() < 1e-12);
        assert!((streams[0].miss_rate() - 0.2).abs() < 1e-12);
        assert_eq!(streams[1].accesses, 100);
        assert_eq!(streams[1].prefetch_buffer_hits, 5);
        assert!((streams[1].accuracy() - 0.25).abs() < 1e-12);
        // Zero denominators stay defined.
        assert_eq!(StreamStats::default().accuracy(), 0.0);
        assert_eq!(StreamStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn per_stream_merge_is_positional_and_empty_is_identity() {
        let mut a = PerStreamStats::with_streams(2);
        a.record(0, &share(10, 4, 1));
        let mut b = PerStreamStats::with_streams(2);
        b.record(0, &share(30, 6, 2));
        b.record(1, &share(7, 1, 0));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        assert_eq!(ab.streams()[0].accesses, 40);
        assert_eq!(ab.streams()[0].prefetch_buffer_hits, 3);
        assert_eq!(ab.streams()[1].accesses, 7);

        // Empty is the identity and carries no width.
        let mut merged = ab.clone();
        merged.merge(&PerStreamStats::default());
        assert_eq!(merged, ab);
        let mut from_empty = PerStreamStats::default();
        from_empty.merge(&ab);
        assert_eq!(from_empty, ab);
    }

    #[test]
    fn sim_stats_merge_carries_the_breakdown() {
        let mut mixed = SimStats {
            per_stream: PerStreamStats::with_streams(2),
            ..Default::default()
        };
        mixed.per_stream.record(0, &share(10, 2, 1));
        let mut other = SimStats {
            per_stream: PerStreamStats::with_streams(2),
            ..Default::default()
        };
        other.per_stream.record(1, &share(20, 4, 2));
        mixed.merge(&other);
        assert_eq!(mixed.per_stream.streams()[0].accesses, 10);
        assert_eq!(mixed.per_stream.streams()[1].accesses, 20);
    }

    #[test]
    fn set_footprint_overwrites_rather_than_sums() {
        let mut per = PerStreamStats::with_streams(2);
        per.record(0, &share(10, 4, 1));
        per.set_footprint(0, 123);
        per.set_footprint(0, 77);
        assert_eq!(per.streams()[0].footprint_pages, 77);
        assert_eq!(per.streams()[1].footprint_pages, 0);
    }

    #[test]
    fn merge_widens_to_the_wider_breakdown() {
        let mut narrow = PerStreamStats::with_streams(1);
        narrow.record(0, &share(5, 2, 1));
        let mut wide = PerStreamStats::with_streams(3);
        wide.record(2, &share(9, 3, 0));
        narrow.merge(&wide);
        assert_eq!(narrow.len(), 3);
        assert_eq!(narrow.streams()[0].accesses, 5);
        assert_eq!(narrow.streams()[2].accesses, 9);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_breakdown_panics() {
        let _ = PerStreamStats::with_streams(MAX_STREAMS + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_record_panics() {
        let mut per = PerStreamStats::with_streams(1);
        per.record(1, &StreamStats::default());
    }
}
