//! Prefetching into a two-level TLB hierarchy (extension).
//!
//! The paper's §4 lists evaluating distance prefetching "for other
//! levels of the storage hierarchy" as ongoing work; the natural first
//! step is a two-level TLB, which §1 also names among the hardware
//! levers. This engine places the prefetch buffer (and the prefetcher)
//! beside the *second-level* TLB: the mechanism observes the L2 miss
//! stream — even more filtered than the L1 miss stream the paper's
//! configuration watches — and prefetched translations promote L2-ward
//! on use.

use tlbsim_core::{MemoryAccess, MissContext, TlbPrefetcher};
use tlbsim_mmu::{HierarchyConfig, HierarchyHit, PageTable, PrefetchBuffer, TlbHierarchy};

use crate::config::{SimConfig, SimError};
use crate::stats::SimStats;

/// Statistics of a two-level simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Data references simulated.
    pub accesses: u64,
    /// Misses in the first-level TLB.
    pub l1_misses: u64,
    /// Misses in both levels (the stream the prefetcher sees).
    pub l2_misses: u64,
    /// L2 misses satisfied by the prefetch buffer.
    pub prefetch_buffer_hits: u64,
    /// Prefetches inserted into the buffer.
    pub prefetches_issued: u64,
}

impl HierarchyStats {
    /// Prediction accuracy at the L2 level (buffer hits / L2 misses).
    pub fn accuracy(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            self.prefetch_buffer_hits as f64 / self.l2_misses as f64
        }
    }

    /// L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }

    /// Global (both-level) miss rate.
    pub fn l2_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.accesses as f64
        }
    }
}

/// A functional simulator over a two-level TLB.
///
/// # Examples
///
/// ```
/// use tlbsim_mmu::HierarchyConfig;
/// use tlbsim_sim::{HierarchyEngine, SimConfig};
/// use tlbsim_workloads::{find_app, Scale};
///
/// let mut engine =
///     HierarchyEngine::new(&SimConfig::paper_default(), HierarchyConfig::default())?;
/// engine.run(find_app("galgel").expect("registered").workload(Scale::TINY));
/// assert!(engine.stats().accuracy() > 0.9);
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub struct HierarchyEngine {
    hierarchy: TlbHierarchy,
    buffer: PrefetchBuffer,
    prefetcher: Box<dyn TlbPrefetcher>,
    page_table: PageTable,
    config: SimConfig,
    stats: HierarchyStats,
}

impl HierarchyEngine {
    /// Builds a two-level engine; the `config`'s TLB geometry is
    /// superseded by `hierarchy`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid geometry or prefetcher settings.
    pub fn new(config: &SimConfig, hierarchy: HierarchyConfig) -> Result<Self, SimError> {
        Ok(HierarchyEngine {
            hierarchy: TlbHierarchy::new(hierarchy)?,
            buffer: PrefetchBuffer::new(config.prefetch_buffer_entries.max(1))?,
            prefetcher: config.prefetcher.build()?,
            page_table: PageTable::new(),
            config: config.clone(),
            stats: HierarchyStats::default(),
        })
    }

    /// Simulates one reference.
    pub fn access(&mut self, access: &MemoryAccess) {
        self.stats.accesses += 1;
        let page = self.config.page_size.page_of(access.vaddr);
        match self.hierarchy.lookup(page) {
            HierarchyHit::L1(_) => return,
            HierarchyHit::L2(_) => {
                self.stats.l1_misses += 1;
                return;
            }
            HierarchyHit::Miss => {
                self.stats.l1_misses += 1;
                self.stats.l2_misses += 1;
            }
        }

        let (frame, pb_hit) = match self.buffer.promote(page) {
            Some(frame) => {
                self.stats.prefetch_buffer_hits += 1;
                (frame, true)
            }
            None => (self.page_table.translate(page), false),
        };
        self.hierarchy.fill(page, frame);

        let ctx = MissContext {
            page,
            pc: access.pc,
            prefetch_buffer_hit: pb_hit,
            // L2 evictions are not tracked by the hierarchy model;
            // recency prefetching is exercised at a single level only.
            evicted_tlb_entry: None,
        };
        let decision = self.prefetcher.on_miss(&ctx);
        for candidate in decision.pages {
            if candidate == page || self.buffer.contains(candidate) {
                continue;
            }
            let frame = self.page_table.translate(candidate);
            self.buffer.insert(candidate, frame);
            self.stats.prefetches_issued += 1;
        }
    }

    /// Simulates an entire stream.
    pub fn run(&mut self, stream: impl IntoIterator<Item = MemoryAccess>) -> &HierarchyStats {
        for access in stream {
            self.access(&access);
        }
        &self.stats
    }

    /// Statistics so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Converts to the single-level stats shape for uniform reporting
    /// (misses = L2 misses).
    pub fn as_sim_stats(&self) -> SimStats {
        SimStats {
            accesses: self.stats.accesses,
            misses: self.stats.l2_misses,
            prefetch_buffer_hits: self.stats.prefetch_buffer_hits,
            demand_walks: self.stats.l2_misses - self.stats.prefetch_buffer_hits,
            prefetches_issued: self.stats.prefetches_issued,
            footprint_pages: self.page_table.len() as u64,
            ..SimStats::default()
        }
    }
}

impl std::fmt::Debug for HierarchyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchyEngine")
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_mmu::TlbConfig;

    fn sequential(pages: u64, refs: u64) -> impl Iterator<Item = MemoryAccess> {
        (0..pages * refs).map(move |i| MemoryAccess::read(0x40, i / refs * 4096))
    }

    fn engine(l1: usize, l2: usize) -> HierarchyEngine {
        HierarchyEngine::new(
            &SimConfig::paper_default(),
            HierarchyConfig {
                l1: TlbConfig::fully_associative(l1),
                l2: TlbConfig::fully_associative(l2),
            },
        )
        .unwrap()
    }

    #[test]
    fn l1_misses_at_least_l2_misses() {
        let mut e = engine(16, 128);
        e.run(sequential(2000, 4));
        let s = e.stats();
        assert!(s.l1_misses >= s.l2_misses);
        assert!(s.l2_misses > 0);
    }

    #[test]
    fn dp_covers_l2_misses_of_sequential_walk() {
        let mut e = engine(16, 128);
        e.run(sequential(5000, 4));
        assert!(e.stats().accuracy() > 0.99, "{:?}", e.stats());
    }

    #[test]
    fn small_working_set_hits_l1_after_warmup() {
        let mut e = engine(16, 128);
        let stream = (0..10_000u64).map(|i| MemoryAccess::read(0, (i % 8) * 4096));
        e.run(stream);
        assert_eq!(e.stats().l2_misses, 8);
        assert_eq!(e.stats().l1_misses, 8);
    }

    #[test]
    fn l2_filters_the_miss_stream() {
        // A working set fitting L2 but not L1: L1 misses continuously,
        // L2 only cold-misses — the prefetcher sees almost nothing.
        let mut e = engine(16, 128);
        let stream = (0..20_000u64).map(|i| MemoryAccess::read(0, (i % 64) * 4096));
        e.run(stream);
        assert_eq!(e.stats().l2_misses, 64);
        assert!(e.stats().l1_misses > 1000);
    }

    #[test]
    fn as_sim_stats_is_consistent() {
        let mut e = engine(16, 128);
        e.run(sequential(1000, 2));
        let s = e.as_sim_stats();
        assert_eq!(s.misses, e.stats().l2_misses);
        assert_eq!(
            s.prefetch_buffer_hits + s.demand_walks,
            s.misses
        );
    }
}
