//! Prefetching into a two-level TLB hierarchy (extension).
//!
//! The paper's §4 lists evaluating distance prefetching "for other
//! levels of the storage hierarchy" as ongoing work; the natural first
//! step is a two-level TLB, which §1 also names among the hardware
//! levers. This engine places the prefetch buffer (and the prefetcher)
//! beside the *second-level* TLB: the mechanism observes the L2 miss
//! stream — even more filtered than the L1 miss stream the paper's
//! configuration watches — and prefetched translations promote L2-ward
//! on use.

use tlbsim_core::{MemoryAccess, MissContext};
use tlbsim_mmu::{HierarchyConfig, HierarchyHit, TlbHierarchy};

use crate::batch::{drive_stream, PrefetchCore};
use crate::config::{SimConfig, SimError};
use crate::stats::SimStats;

/// Statistics of a two-level simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Data references simulated.
    pub accesses: u64,
    /// Misses in the first-level TLB.
    pub l1_misses: u64,
    /// Misses in both levels (the stream the prefetcher sees).
    pub l2_misses: u64,
    /// L2 misses satisfied by the prefetch buffer.
    pub prefetch_buffer_hits: u64,
    /// Prefetches inserted into the buffer.
    pub prefetches_issued: u64,
}

impl HierarchyStats {
    /// Prediction accuracy at the L2 level (buffer hits / L2 misses).
    pub fn accuracy(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            self.prefetch_buffer_hits as f64 / self.l2_misses as f64
        }
    }

    /// L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }

    /// Global (both-level) miss rate.
    pub fn l2_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.accesses as f64
        }
    }
}

/// A functional simulator over a two-level TLB.
///
/// # Examples
///
/// ```
/// use tlbsim_mmu::HierarchyConfig;
/// use tlbsim_sim::{HierarchyEngine, SimConfig};
/// use tlbsim_workloads::{find_app, Scale};
///
/// let mut engine =
///     HierarchyEngine::new(&SimConfig::paper_default(), HierarchyConfig::default())?;
/// engine.run(find_app("galgel").expect("registered").workload(Scale::TINY));
/// assert!(engine.stats().accuracy() > 0.9);
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub struct HierarchyEngine {
    hierarchy: TlbHierarchy,
    core: PrefetchCore,
    config: SimConfig,
    stats: HierarchyStats,
    batch: Vec<MemoryAccess>,
}

impl HierarchyEngine {
    /// Builds a two-level engine; the `config`'s TLB geometry is
    /// superseded by `hierarchy`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid geometry or prefetcher settings.
    pub fn new(config: &SimConfig, hierarchy: HierarchyConfig) -> Result<Self, SimError> {
        Ok(HierarchyEngine {
            hierarchy: TlbHierarchy::new(hierarchy)?,
            core: PrefetchCore::new(config)?,
            config: config.clone(),
            stats: HierarchyStats::default(),
            batch: Vec::new(),
        })
    }

    /// Simulates one reference.
    pub fn access(&mut self, access: &MemoryAccess) {
        self.stats.accesses += 1;
        let page = self.config.page_size.page_of(access.vaddr);
        match self.hierarchy.lookup(page) {
            HierarchyHit::L1(_) => return,
            HierarchyHit::L2(_) => {
                self.stats.l1_misses += 1;
                return;
            }
            HierarchyHit::Miss => {
                self.stats.l1_misses += 1;
                self.stats.l2_misses += 1;
            }
        }

        let (frame, pb_hit) = self.core.translate(page);
        if pb_hit {
            self.stats.prefetch_buffer_hits += 1;
        }
        self.hierarchy.fill(page, frame);

        let ctx = MissContext {
            page,
            pc: access.pc,
            prefetch_buffer_hit: pb_hit,
            // L2 evictions are not tracked by the hierarchy model;
            // recency prefetching is exercised at a single level only.
            evicted_tlb_entry: None,
        };
        // The hierarchy engine filters only against the buffer (it never
        // probes two TLB levels for residency), hence the constant-false
        // extra filter.
        let outcome = self.core.observe_and_install(&ctx, true, |_| false);
        self.stats.prefetches_issued += outcome.issued;
    }

    /// Simulates a batch of references (the L1-hit early return inside
    /// [`access`](Self::access) keeps hits cheap; there is no additional
    /// hoisting here).
    pub fn access_batch(&mut self, batch: &[MemoryAccess]) {
        for access in batch {
            self.access(access);
        }
    }

    /// Simulates an entire stream, chunked through a reusable internal
    /// batch buffer.
    pub fn run(&mut self, stream: impl IntoIterator<Item = MemoryAccess>) -> &HierarchyStats {
        let mut batch = std::mem::take(&mut self.batch);
        drive_stream(stream, &mut batch, |chunk| self.access_batch(chunk));
        self.batch = batch;
        &self.stats
    }

    /// Statistics so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Converts to the single-level stats shape for uniform reporting
    /// (misses = L2 misses).
    pub fn as_sim_stats(&self) -> SimStats {
        SimStats {
            accesses: self.stats.accesses,
            misses: self.stats.l2_misses,
            prefetch_buffer_hits: self.stats.prefetch_buffer_hits,
            demand_walks: self.stats.l2_misses - self.stats.prefetch_buffer_hits,
            prefetches_issued: self.stats.prefetches_issued,
            footprint_pages: self.core.page_table.len() as u64,
            ..SimStats::default()
        }
    }
}

impl std::fmt::Debug for HierarchyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchyEngine")
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_mmu::TlbConfig;

    fn sequential(pages: u64, refs: u64) -> impl Iterator<Item = MemoryAccess> {
        (0..pages * refs).map(move |i| MemoryAccess::read(0x40, i / refs * 4096))
    }

    fn engine(l1: usize, l2: usize) -> HierarchyEngine {
        HierarchyEngine::new(
            &SimConfig::paper_default(),
            HierarchyConfig {
                l1: TlbConfig::fully_associative(l1),
                l2: TlbConfig::fully_associative(l2),
            },
        )
        .unwrap()
    }

    #[test]
    fn l1_misses_at_least_l2_misses() {
        let mut e = engine(16, 128);
        e.run(sequential(2000, 4));
        let s = e.stats();
        assert!(s.l1_misses >= s.l2_misses);
        assert!(s.l2_misses > 0);
    }

    #[test]
    fn dp_covers_l2_misses_of_sequential_walk() {
        let mut e = engine(16, 128);
        e.run(sequential(5000, 4));
        assert!(e.stats().accuracy() > 0.99, "{:?}", e.stats());
    }

    #[test]
    fn small_working_set_hits_l1_after_warmup() {
        let mut e = engine(16, 128);
        let stream = (0..10_000u64).map(|i| MemoryAccess::read(0, (i % 8) * 4096));
        e.run(stream);
        assert_eq!(e.stats().l2_misses, 8);
        assert_eq!(e.stats().l1_misses, 8);
    }

    #[test]
    fn l2_filters_the_miss_stream() {
        // A working set fitting L2 but not L1: L1 misses continuously,
        // L2 only cold-misses — the prefetcher sees almost nothing.
        let mut e = engine(16, 128);
        let stream = (0..20_000u64).map(|i| MemoryAccess::read(0, (i % 64) * 4096));
        e.run(stream);
        assert_eq!(e.stats().l2_misses, 64);
        assert!(e.stats().l1_misses > 1000);
    }

    #[test]
    fn as_sim_stats_is_consistent() {
        let mut e = engine(16, 128);
        e.run(sequential(1000, 2));
        let s = e.as_sim_stats();
        assert_eq!(s.misses, e.stats().l2_misses);
        assert_eq!(s.prefetch_buffer_hits + s.demand_walks, s.misses);
    }
}
