//! # tlbsim-sim — simulation engines
//!
//! Two engines drive the prefetching mechanisms of `tlbsim-core` through
//! the MMU substrate of `tlbsim-mmu`:
//!
//! * [`Engine`] — the functional simulator behind Figures 7–9 and
//!   Table 2: counts TLB misses, prefetch-buffer hits (the paper's
//!   *prediction accuracy*), and memory traffic; prefetches complete
//!   instantly;
//! * [`TimingEngine`] — the cycle-accounting simulator behind Table 3:
//!   prefetch traffic serialises on a single channel
//!   (`tlbsim_mem::PrefetchChannel`), in-flight prefetches stall the CPU
//!   until arrival, and in-memory prediction state (RP) serialises the
//!   miss handler on its pointer updates.
//!
//! [`run_app`], [`compare_schemes`] and the parallel [`sweep`] executor
//! run the synthetic applications of `tlbsim-workloads` through either
//! engine.
//!
//! ## Two axes of parallelism
//!
//! * **Across jobs** — [`sweep`] distributes a grid of independent jobs
//!   over the machine, one recycled engine per worker; this is how the
//!   figure-scale parameter grids run.
//! * **Within one job** — [`run_app_sharded`] time-slices a single
//!   large run into contiguous shards ([`ShardPlan`]), simulates each
//!   on a private engine shard in parallel, and merges the per-shard
//!   [`SimStats`] deterministically ([`SimStats::merge`] plus
//!   footprint-union and prefetch-buffer boundary reconciliation).
//!   `shards = 1` is bit-identical to the sequential path. Shard
//!   workers are *self-healing*: a panicking shard is retried up to
//!   [`SHARD_ATTEMPTS`] times, then degraded to an in-line sequential
//!   run; [`RunHealth`] on the result reports what recovery happened.
//!
//! ## Multiprogrammed execution
//!
//! A `tlbsim_workloads::MultiStreamSpec` interleaves several streams as
//! one machine's reference stream. [`run_mix`] executes it under a
//! [`SwitchPolicy`] — keep state across switches, flush TLB +
//! prediction state at every switch, or retag it with per-stream ASIDs
//! so switches are flush-free ([`SwitchPolicy::Asid`], with shared or
//! per-stream partitioned tables via [`TablePolicy`]) — and attributes
//! hits/misses/prefetch outcomes *and demand footprints* per stream
//! ([`SimStats::per_stream`]); [`run_mix_sharded`] partitions the
//! interleave at switch boundaries (or whole streams, for eviction-free
//! partitioned ASID runs), which makes flush-on-switch sharding — and
//! its degenerate ASID twin `contexts = 1` — *bit-identical* to the
//! sequential run at any shard count.
//!
//! ## Batching contract
//!
//! Every engine processes references through `access_batch(&[MemoryAccess])`
//! with a translation-hit fast path; the `run(...)` entry points chunk
//! arbitrary iterators through one reusable engine-owned buffer, and
//! [`Engine::run_workload`] streams a workload via
//! `Workload::fill_batch` without materialising it. On a miss, engines
//! hand their single long-lived `CandidateBuf` sink to the mechanism, so
//! the steady-state miss path performs **zero heap allocations** — the
//! `zero_alloc` integration test pins this with a counting allocator.
//! The [`sweep`] executor extends the same discipline across jobs: each
//! worker thread recycles one engine and one batch buffer for its whole
//! lifetime ([`Engine::try_recycle`]).
//!
//! ## Quick start
//!
//! ```
//! use tlbsim_core::PrefetcherConfig;
//! use tlbsim_sim::{compare_schemes, SimConfig};
//! use tlbsim_workloads::{find_app, Scale};
//!
//! let app = find_app("mpeg-dec").expect("registered");
//! let results = compare_schemes(
//!     app,
//!     Scale::TINY,
//!     &SimConfig::paper_default(),
//!     &[PrefetcherConfig::distance(), PrefetcherConfig::stride()],
//! )?;
//! // mpeg-dec alternates two distances: DP predicts, ASP cannot.
//! assert!(results[0].1.accuracy() > results[1].1.accuracy());
//! # Ok::<(), tlbsim_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod cache_engine;
mod config;
mod engine;
mod hierarchy_engine;
mod multiprog;
mod runner;
mod shard;
mod stats;
mod timing_engine;

pub use cache_engine::{CacheEngine, CacheStats};
pub use config::{SimConfig, SimError};
pub use engine::Engine;
pub use hierarchy_engine::{HierarchyEngine, HierarchyStats};
pub use multiprog::{run_mix, run_mix_sharded, SwitchPolicy, TablePolicy};
pub use runner::{
    compare_schemes, run_app, run_app_checkpointed, run_app_timed, sweep, SweepJob, SweepResult,
    SweepSpec,
};
pub use shard::{
    auto_shard_count, resolve_shards, run_app_sharded, RunHealth, ShardOutcome, ShardPlan,
    ShardRange, ShardedRun, AUTO_SHARD_MIN_SLICE, SHARD_ATTEMPTS,
};
pub use stats::{PerStreamStats, SimStats, StreamStats, TimingStats, MAX_STREAMS};
pub use timing_engine::TimingEngine;
