//! Simulation configuration.

use std::fmt;

use serde::{Deserialize, Serialize};
use tlbsim_core::{ConfigError, InvalidGeometry, PageSize, PrefetcherConfig};
use tlbsim_mmu::TlbConfig;

/// Everything a simulation run needs besides the reference stream.
///
/// Defaults are the paper's representative setup (§3.1): 128-entry
/// fully-associative TLB, 16-entry prefetch buffer, 4 KiB pages, and a
/// distance prefetcher with `r = 256`, `s = 2`, direct-mapped.
///
/// # Examples
///
/// ```
/// use tlbsim_core::PrefetcherConfig;
/// use tlbsim_sim::SimConfig;
///
/// let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::recency());
/// assert_eq!(cfg.tlb.entries, 128);
/// assert_eq!(cfg.prefetch_buffer_entries, 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Prefetch buffer size (`b`). Must be at least 1: a zero-entry
    /// buffer cannot hold any prefetch, so engine constructors reject it
    /// with [`SimError::ZeroPrefetchBuffer`] instead of silently
    /// resizing.
    pub prefetch_buffer_entries: usize,
    /// Page size for splitting byte addresses into pages.
    pub page_size: PageSize,
    /// The prefetching mechanism under test.
    pub prefetcher: PrefetcherConfig,
    /// Drop prefetch candidates already resident in the TLB or the
    /// buffer (the default, and what the paper's hardware does via the
    /// concurrent lookup). Disabling it is an ablation that shows the
    /// buffer-pollution cost of issuing blindly.
    pub filter_prefetches: bool,
}

impl SimConfig {
    /// The paper's representative configuration with a distance
    /// prefetcher.
    pub fn paper_default() -> Self {
        SimConfig {
            tlb: TlbConfig::paper_default(),
            prefetch_buffer_entries: 16,
            page_size: PageSize::DEFAULT,
            prefetcher: PrefetcherConfig::distance(),
            filter_prefetches: true,
        }
    }

    /// The no-prefetching baseline with the same TLB.
    pub fn baseline() -> Self {
        SimConfig {
            prefetcher: PrefetcherConfig::none(),
            ..Self::paper_default()
        }
    }

    /// Replaces the prefetcher configuration.
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherConfig) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Replaces the TLB geometry.
    pub fn with_tlb(mut self, tlb: TlbConfig) -> Self {
        self.tlb = tlb;
        self
    }

    /// Replaces the prefetch buffer size.
    pub fn with_prefetch_buffer(mut self, entries: usize) -> Self {
        self.prefetch_buffer_entries = entries;
        self
    }

    /// Enables or disables residency filtering of prefetch candidates
    /// (an ablation; the paper's hardware always filters).
    pub fn with_prefetch_filtering(mut self, enabled: bool) -> Self {
        self.filter_prefetches = enabled;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_default()
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} TLB {}e/{}, PB {}, {}",
            self.page_size,
            self.tlb.entries,
            self.tlb.assoc,
            self.prefetch_buffer_entries,
            self.prefetcher
        )
    }
}

/// Errors constructing a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The TLB or prefetch-buffer geometry is invalid.
    Geometry(InvalidGeometry),
    /// The prefetcher configuration is invalid.
    Prefetcher(ConfigError),
    /// `prefetch_buffer_entries` was zero — a buffer that cannot hold a
    /// single prefetch is a configuration bug, not a request for a
    /// minimal buffer.
    ZeroPrefetchBuffer,
    /// A sharded run was requested with zero shards — there would be no
    /// worker to simulate the stream (see
    /// [`run_app_sharded`](crate::run_app_sharded)).
    ZeroShards,
    /// An ASID switch policy was requested with zero live contexts —
    /// there would be no tag for any stream to run under (see
    /// [`SwitchPolicy::Asid`](crate::SwitchPolicy::Asid)).
    ZeroAsidContexts,
    /// A shard panicked persistently: its workers exhausted their
    /// attempt budget *and* the in-line degraded run panicked too, so
    /// the self-healing executor could not produce this slice's
    /// statistics (see [`RunHealth`](crate::RunHealth)).
    ShardPanicked {
        /// Index of the failing shard.
        shard: usize,
        /// The panic's message, for the one-line diagnosis.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Geometry(e) => write!(f, "invalid simulation geometry: {e}"),
            SimError::Prefetcher(e) => write!(f, "invalid prefetcher: {e}"),
            SimError::ZeroPrefetchBuffer => {
                f.write_str("prefetch buffer must have at least one entry")
            }
            SimError::ZeroShards => f.write_str("sharded run requires at least one shard"),
            SimError::ZeroAsidContexts => {
                f.write_str("ASID switch policy requires at least one live context")
            }
            SimError::ShardPanicked { shard, message } => {
                write!(f, "shard {shard} panicked persistently: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Geometry(e) => Some(e),
            SimError::Prefetcher(e) => Some(e),
            SimError::ZeroPrefetchBuffer
            | SimError::ZeroShards
            | SimError::ZeroAsidContexts
            | SimError::ShardPanicked { .. } => None,
        }
    }
}

impl From<InvalidGeometry> for SimError {
    fn from(e: InvalidGeometry) -> Self {
        SimError::Geometry(e)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Prefetcher(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_core::Associativity;

    #[test]
    fn paper_default_shape() {
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.tlb.entries, 128);
        assert_eq!(cfg.tlb.assoc, Associativity::Full);
        assert_eq!(cfg.prefetch_buffer_entries, 16);
        assert_eq!(cfg.page_size.bytes(), 4096);
    }

    #[test]
    fn builders_replace_fields() {
        let cfg = SimConfig::paper_default()
            .with_prefetch_buffer(32)
            .with_tlb(TlbConfig::fully_associative(64));
        assert_eq!(cfg.prefetch_buffer_entries, 32);
        assert_eq!(cfg.tlb.entries, 64);
    }

    #[test]
    fn display_is_informative() {
        let s = SimConfig::paper_default().to_string();
        assert!(s.contains("128"));
        assert!(s.contains("DP"));
    }
}
