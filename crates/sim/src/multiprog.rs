//! Multiprogrammed (interleaved) execution with context-switch
//! semantics.
//!
//! The plain runners treat a [`MultiStreamSpec`] like any other stream:
//! `run_app(&mix, …)` simulates the interleave as one merged reference
//! stream (the mix implements `StreamSpec`). What they cannot do is see
//! the *switches* — the paper's §4 names flushing translation and
//! prediction state across context switches as the open multiprogramming
//! question, and per-tenant attribution is what makes a consolidated
//! result legible. This module adds the switch-aware entry points:
//!
//! * [`run_mix`] walks the interleave segment-by-segment (the schedule's
//!   own decisions, via [`MultiStreamSpec::segments`]), optionally
//!   flushing the TLB, prefetch buffer and prediction tables at every
//!   stream switch ([`Engine::context_switch`] — the same flush path
//!   behind [`Engine::run_with_flush_interval`]), and attributes every
//!   segment's accesses, misses and prefetch outcomes to its stream in
//!   [`SimStats::per_stream`];
//! * [`run_mix_sharded`] partitions the interleave across worker threads
//!   at **switch boundaries** and folds per-shard statistics through the
//!   exact machinery of [`run_app_sharded`](crate::run_app_sharded)
//!   ([`SimStats::merge`] carries the per-stream breakdown, the
//!   footprint is recomputed as a union, boundary prefetch-buffer
//!   residency is surfaced).
//!
//! ## Why switch-aligned shards
//!
//! A shard starts cold: empty TLB, empty buffer, unlearned tables. Under
//! `flush_on_switch` that is *exactly* the machine state a sequential
//! run has immediately after a context switch — so cutting the stream
//! only at switches makes the sharded run **bit-identical** to the
//! sequential one (pinned by the differential tests), not merely
//! approximately equal. Without flushing, boundaries introduce the same
//! bounded cold-start effects as ordinary sharding, quantified by
//! [`ShardedRun::boundary_resident_prefetches`].

use tlbsim_workloads::{MultiStreamSpec, Scale, StreamSpec, Workload};

use crate::config::{SimConfig, SimError};
use crate::engine::Engine;
use crate::shard::{fold_shards, run_shards_recovering, ShardHarvest, ShardRange, ShardedRun};
use crate::stats::{PerStreamStats, SimStats, StreamStats};

/// The attribution-relevant difference between two engine snapshots —
/// what one segment of one stream contributed.
fn share_between(before: &SimStats, after: &SimStats) -> StreamStats {
    StreamStats {
        accesses: after.accesses - before.accesses,
        misses: after.misses - before.misses,
        prefetch_buffer_hits: after.prefetch_buffer_hits - before.prefetch_buffer_hits,
        demand_walks: after.demand_walks - before.demand_walks,
        prefetches_issued: after.prefetches_issued - before.prefetches_issued,
    }
}

/// Runs a multiprogrammed interleave through the functional engine with
/// context-switch semantics and per-stream attribution.
///
/// Segments execute in schedule order on one engine. When
/// `flush_on_switch` is set, every change of running stream flushes the
/// TLB, the prefetch buffer and the prefetcher's learned state
/// ([`Engine::context_switch`]); the page table survives, as
/// translations do across a real context switch. Each segment's counter
/// deltas are attributed to its stream in the returned
/// [`SimStats::per_stream`] breakdown.
///
/// A 1-stream mix has no switches, so — flush flag or not — the result
/// equals the plain [`run_app`](crate::run_app) on that stream (the
/// aggregate counters bit-identically; `per_stream` additionally holds
/// the single stream's full share).
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is invalid.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tlbsim_sim::{run_mix, SimConfig};
/// use tlbsim_workloads::{find_app, MultiStreamSpec, Scale, Schedule, StreamSpec};
///
/// let mix = MultiStreamSpec::new(
///     vec![
///         Arc::new(find_app("gap").expect("registered")) as Arc<dyn StreamSpec>,
///         Arc::new(find_app("mcf").expect("registered")),
///     ],
///     Schedule::RoundRobin { quantum: 10_000 },
/// )
/// .expect("valid mix");
/// let stats = run_mix(&mix, Scale::TINY, &SimConfig::paper_default(), true)?;
///
/// // Attribution is exhaustive: the per-stream shares sum back to the
/// // aggregate counters.
/// assert_eq!(stats.per_stream.len(), 2);
/// let attributed: u64 = stats.per_stream.streams().iter().map(|s| s.accesses).sum();
/// assert_eq!(attributed, stats.accesses);
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub fn run_mix(
    mix: &MultiStreamSpec,
    scale: Scale,
    config: &SimConfig,
    flush_on_switch: bool,
) -> Result<SimStats, SimError> {
    let mut engine = Engine::new(config)?;
    let mut workloads: Vec<Workload> = mix.streams().iter().map(|s| s.workload(scale)).collect();
    let mut per = PerStreamStats::with_streams(mix.streams().len());
    let mut running: Option<usize> = None;
    for segment in mix.segments(scale) {
        if flush_on_switch && running.is_some_and(|r| r != segment.stream) {
            engine.context_switch();
        }
        running = Some(segment.stream);
        let before = *engine.stats();
        engine.run_workload_limit(&mut workloads[segment.stream], segment.len);
        let share = share_between(&before, engine.stats());
        debug_assert_eq!(
            share.accesses, segment.len,
            "stream {} ended before its reported stream_len",
            segment.stream
        );
        per.record(segment.stream, &share);
    }
    let mut stats = *engine.finish();
    stats.per_stream = per;
    Ok(stats)
}

/// One switch-delimited run of consecutive same-stream segments — the
/// unit shard boundaries may fall on.
#[derive(Debug, Clone, Copy)]
struct MixSlice {
    stream: usize,
    start_in_stream: u64,
    len: u64,
}

/// Coalesces the schedule's segments into switch-delimited slices.
/// Consecutive segments of the same stream (the tail once every other
/// stream has exhausted) fuse, so a boundary between any two slices is
/// always a genuine context switch.
fn switch_slices(mix: &MultiStreamSpec, scale: Scale) -> Vec<MixSlice> {
    let mut slices: Vec<MixSlice> = Vec::new();
    for segment in mix.segments(scale) {
        match slices.last_mut() {
            Some(last) if last.stream == segment.stream => last.len += segment.len,
            _ => slices.push(MixSlice {
                stream: segment.stream,
                start_in_stream: segment.start,
                len: segment.len,
            }),
        }
    }
    slices
}

/// Partitions `slices` into `shards` contiguous groups of roughly equal
/// access counts, cutting only between slices. Returns per-shard slice
/// index ranges alongside the equivalent access-stream [`ShardRange`]s.
fn plan_slice_groups(
    slices: &[MixSlice],
    shards: usize,
) -> (Vec<std::ops::Range<usize>>, Vec<ShardRange>) {
    let total: u64 = slices.iter().map(|s| s.len).sum();
    let mut groups = Vec::with_capacity(shards);
    let mut ranges = Vec::with_capacity(shards);
    let mut next_slice = 0usize;
    let mut position = 0u64;
    for shard in 0..shards {
        let target = (shard as u64 + 1) * total / shards as u64;
        let start_slice = next_slice;
        let start_position = position;
        while next_slice < slices.len() && (position < target || shard + 1 == shards) {
            position += slices[next_slice].len;
            next_slice += 1;
        }
        groups.push(start_slice..next_slice);
        ranges.push(ShardRange {
            start: start_position,
            len: position - start_position,
        });
    }
    (groups, ranges)
}

/// Runs one shard's group of slices on a fresh engine, with per-stream
/// workloads positioned by arithmetic, and harvests its statistics.
fn run_slice_group(
    mix: &MultiStreamSpec,
    scale: Scale,
    config: &SimConfig,
    flush_on_switch: bool,
    slices: &[MixSlice],
) -> ShardHarvest {
    let mut engine = Engine::new(config).expect("configuration validated by the caller");
    let mut per = PerStreamStats::with_streams(mix.streams().len());
    // Stream workloads are created on first use and positioned with one
    // skip; within a group each stream's slices are consecutive chunks
    // of that stream, so later slices continue without reseeking.
    let mut workloads: Vec<Option<Workload>> = (0..mix.streams().len()).map(|_| None).collect();
    for (index, slice) in slices.iter().enumerate() {
        if flush_on_switch && index > 0 {
            // Coalescing guarantees consecutive slices switch streams.
            engine.context_switch();
        }
        let workload = match &mut workloads[slice.stream] {
            Some(w) => w,
            none => {
                let mut fresh = mix.streams()[slice.stream].workload(scale);
                let skipped = fresh.skip_accesses(slice.start_in_stream);
                debug_assert_eq!(
                    skipped, slice.start_in_stream,
                    "stream shorter than planned"
                );
                none.insert(fresh)
            }
        };
        let before = *engine.stats();
        engine.run_workload_limit(workload, slice.len);
        per.record(slice.stream, &share_between(&before, engine.stats()));
    }
    let mut stats = *engine.finish();
    stats.per_stream = per;
    (
        stats,
        engine.touched_pages_snapshot(),
        engine.resident_prefetches(),
    )
}

/// Partitions a multiprogrammed interleave across `shards` worker
/// threads — cutting only at context-switch boundaries — and merges the
/// per-shard statistics deterministically, per-stream attribution
/// included.
///
/// The fold is the sharded executor's own: counters merge in shard order
/// via [`SimStats::merge`] (which carries [`SimStats::per_stream`]
/// positionally), the merged footprint is the exact union of shard page
/// sets, and non-final prefetch-buffer residency is reported as
/// [`ShardedRun::boundary_resident_prefetches`]. With `shards = 1` the
/// result is bit-identical to [`run_mix`]; with `flush_on_switch` it is
/// bit-identical at **every** shard count, because each shard boundary
/// coincides with a flush the sequential run performs anyway.
///
/// Slices cannot be cut below switch granularity, so shard balance is
/// bounded by the schedule: a mix whose tail is one long single-stream
/// run keeps that run on a single worker.
///
/// Like [`run_app_sharded`](crate::run_app_sharded), the executor is
/// self-healing: panicking shard workers are retried then degraded to
/// in-line execution, with recovery (and any quarantined trace records
/// among the mix's members) reported in [`ShardedRun::health`].
///
/// # Errors
///
/// Returns [`SimError::ZeroShards`] for `shards == 0`, the
/// configuration's own error if it is invalid, or
/// [`SimError::ShardPanicked`] for a persistently panicking shard.
pub fn run_mix_sharded(
    mix: &MultiStreamSpec,
    scale: Scale,
    config: &SimConfig,
    flush_on_switch: bool,
    shards: usize,
) -> Result<ShardedRun, SimError> {
    if shards == 0 {
        return Err(SimError::ZeroShards);
    }
    // Validate once, up front, so workers can assume constructibility.
    drop(Engine::new(config)?);

    let slices = switch_slices(mix, scale);
    let (groups, ranges) = plan_slice_groups(&slices, shards);

    let (harvests, mut health) = run_shards_recovering(shards, |index| {
        run_slice_group(
            mix,
            scale,
            config,
            flush_on_switch,
            &slices[groups[index].clone()],
        )
    })?;
    health.quarantined_records = mix.quarantined_records();
    Ok(fold_shards(harvests, &ranges, health))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_app;
    use std::sync::Arc;
    use tlbsim_workloads::{find_app, Schedule};

    fn mix_of(names: &[&str], schedule: Schedule) -> MultiStreamSpec {
        let streams: Vec<Arc<dyn StreamSpec>> = names
            .iter()
            .map(|n| Arc::new(find_app(n).unwrap()) as Arc<dyn StreamSpec>)
            .collect();
        MultiStreamSpec::new(streams, schedule).unwrap()
    }

    #[test]
    fn attribution_is_exhaustive_and_per_stream_lengths_are_exact() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 1000 });
        let stats = run_mix(&mix, Scale::TINY, &SimConfig::paper_default(), false).unwrap();
        assert_eq!(stats.per_stream.len(), 2);
        for (share, spec) in stats.per_stream.streams().iter().zip(mix.streams()) {
            assert_eq!(share.accesses, spec.stream_len(Scale::TINY));
        }
        let shares = stats.per_stream.streams();
        let sum = |f: fn(&StreamStats) -> u64| -> u64 { shares.iter().map(f).sum() };
        assert_eq!(sum(|s| s.accesses), stats.accesses);
        assert_eq!(sum(|s| s.misses), stats.misses);
        assert_eq!(sum(|s| s.prefetch_buffer_hits), stats.prefetch_buffer_hits);
        assert_eq!(sum(|s| s.demand_walks), stats.demand_walks);
        assert_eq!(sum(|s| s.prefetches_issued), stats.prefetches_issued);
    }

    #[test]
    fn flushing_on_switch_costs_accuracy_never_changes_miss_attribution_totals() {
        let mix = mix_of(&["gap", "eon"], Schedule::RoundRobin { quantum: 500 });
        let config = SimConfig::paper_default();
        let kept = run_mix(&mix, Scale::TINY, &config, false).unwrap();
        let flushed = run_mix(&mix, Scale::TINY, &config, true).unwrap();
        assert_eq!(kept.accesses, flushed.accesses);
        assert!(
            flushed.misses >= kept.misses,
            "flushes cannot reduce misses"
        );
        assert!(flushed.accuracy() <= kept.accuracy() + 1e-12);
    }

    #[test]
    fn one_stream_mix_matches_run_app_in_aggregate() {
        let mix = mix_of(&["gap"], Schedule::RoundRobin { quantum: 333 });
        let config = SimConfig::paper_default();
        let plain = run_app(find_app("gap").unwrap(), Scale::TINY, &config).unwrap();
        for flush in [false, true] {
            let mut mixed = run_mix(&mix, Scale::TINY, &config, flush).unwrap();
            assert_eq!(mixed.per_stream.len(), 1);
            assert_eq!(mixed.per_stream.streams()[0].accesses, plain.accesses);
            mixed.per_stream = PerStreamStats::default();
            assert_eq!(mixed, plain, "flush={flush}");
        }
    }

    #[test]
    fn slice_groups_partition_exactly_at_switch_boundaries() {
        let mix = mix_of(
            &["gap", "mcf", "eon"],
            Schedule::RoundRobin { quantum: 700 },
        );
        let slices = switch_slices(&mix, Scale::TINY);
        assert!(slices.windows(2).all(|w| w[0].stream != w[1].stream));
        let total: u64 = slices.iter().map(|s| s.len).sum();
        assert_eq!(total, mix.stream_len(Scale::TINY));
        for shards in [1usize, 2, 4, 64] {
            let (groups, ranges) = plan_slice_groups(&slices, shards);
            assert_eq!(groups.len(), shards);
            assert_eq!(ranges.len(), shards);
            // Groups are contiguous, disjoint and exhaustive.
            let mut next = 0usize;
            let mut position = 0u64;
            for (group, range) in groups.iter().zip(&ranges) {
                assert_eq!(group.start, next);
                next = group.end;
                assert_eq!(range.start, position);
                let len: u64 = slices[group.clone()].iter().map(|s| s.len).sum();
                assert_eq!(range.len, len);
                position += len;
            }
            assert_eq!(next, slices.len());
            assert_eq!(position, total);
        }
    }

    #[test]
    fn sharded_mix_with_flush_is_bit_identical_to_sequential() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 800 });
        let config = SimConfig::paper_default();
        let sequential = run_mix(&mix, Scale::TINY, &config, true).unwrap();
        for shards in [1usize, 2, 4] {
            let sharded = run_mix_sharded(&mix, Scale::TINY, &config, true, shards).unwrap();
            assert_eq!(
                sharded.merged, sequential,
                "{shards} shards diverged under flush-on-switch"
            );
        }
    }

    #[test]
    fn sharded_mix_without_flush_conserves_accesses_and_attribution() {
        let mix = mix_of(&["gap", "eon"], Schedule::RoundRobin { quantum: 900 });
        let config = SimConfig::paper_default();
        let sequential = run_mix(&mix, Scale::TINY, &config, false).unwrap();
        for shards in [1usize, 2, 4] {
            let sharded = run_mix_sharded(&mix, Scale::TINY, &config, false, shards).unwrap();
            assert_eq!(sharded.merged.accesses, sequential.accesses);
            assert_eq!(sharded.merged.per_stream.len(), 2);
            for (share, expected) in sharded
                .merged
                .per_stream
                .streams()
                .iter()
                .zip(sequential.per_stream.streams())
            {
                assert_eq!(share.accesses, expected.accesses, "shards={shards}");
            }
            if shards == 1 {
                assert_eq!(sharded.merged, sequential, "one shard must be sequential");
            }
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let mix = mix_of(&["gap"], Schedule::RoundRobin { quantum: 10 });
        assert!(matches!(
            run_mix_sharded(&mix, Scale::TINY, &SimConfig::paper_default(), false, 0),
            Err(SimError::ZeroShards)
        ));
    }

    #[test]
    fn invalid_config_is_rejected_before_spawning() {
        let mix = mix_of(&["gap"], Schedule::RoundRobin { quantum: 10 });
        let bad = SimConfig::paper_default().with_prefetch_buffer(0);
        assert!(matches!(
            run_mix_sharded(&mix, Scale::TINY, &bad, false, 2),
            Err(SimError::ZeroPrefetchBuffer)
        ));
        assert!(matches!(
            run_mix(&mix, Scale::TINY, &bad, false),
            Err(SimError::ZeroPrefetchBuffer)
        ));
    }

    #[test]
    fn mix_recovery_from_a_transient_panic_is_bit_identical_under_flush() {
        use tlbsim_trace::{FaultKind, FaultPlan};
        use tlbsim_workloads::ChaosSpec;

        // One member panics its decoding worker once; under
        // flush-on-switch, the retried sharded run must still match the
        // undisturbed sequential interleave bit-for-bit.
        let gap = Arc::new(find_app("gap").unwrap()) as Arc<dyn StreamSpec>;
        let chaos = Arc::new(ChaosSpec::new(
            Arc::new(find_app("mcf").unwrap()),
            FaultPlan::new().with(3_000, FaultKind::WorkerPanic),
            1,
        )) as Arc<dyn StreamSpec>;
        let faulty = MultiStreamSpec::new(
            vec![Arc::clone(&gap), chaos],
            Schedule::RoundRobin { quantum: 800 },
        )
        .unwrap();
        let clean = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 800 });

        let config = SimConfig::paper_default();
        let sequential = run_mix(&clean, Scale::TINY, &config, true).unwrap();
        let recovered = run_mix_sharded(&faulty, Scale::TINY, &config, true, 2).unwrap();
        assert_eq!(recovered.health.retries, 1);
        assert_eq!(recovered.health.degraded_shards, 0);
        assert_eq!(recovered.health.quarantined_records, 0);
        assert_eq!(
            recovered.merged, sequential,
            "recovered mix must match the clean sequential run"
        );
    }

    #[test]
    fn more_shards_than_slices_leave_empty_tails() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 1 << 40 });
        // Giant quantum: exactly two slices. Eight shards → six empty.
        let run =
            run_mix_sharded(&mix, Scale::TINY, &SimConfig::paper_default(), false, 8).unwrap();
        assert_eq!(run.shards.len(), 8);
        let nonempty = run.shards.iter().filter(|s| s.range.len > 0).count();
        assert_eq!(nonempty, 2);
        assert_eq!(run.merged.accesses, mix.stream_len(Scale::TINY));
    }
}
