//! Multiprogrammed (interleaved) execution with context-switch
//! semantics.
//!
//! The plain runners treat a [`MultiStreamSpec`] like any other stream:
//! `run_app(&mix, …)` simulates the interleave as one merged reference
//! stream (the mix implements `StreamSpec`). What they cannot do is see
//! the *switches* — the paper's §4 names flushing translation and
//! prediction state across context switches as the open multiprogramming
//! question, and per-tenant attribution is what makes a consolidated
//! result legible. This module adds the switch-aware entry points:
//!
//! * [`run_mix`] walks the interleave slice-by-slice (the schedule's
//!   own decisions, via [`MultiStreamSpec::segments`]) under a
//!   [`SwitchPolicy`] — keep state across switches, flush everything
//!   ([`Engine::context_switch`]), or retag it with per-stream ASIDs so
//!   switches are flush-free — and attributes every slice's accesses,
//!   misses, prefetch outcomes and demand footprint to its stream in
//!   [`SimStats::per_stream`];
//! * [`run_mix_sharded`] partitions the interleave across worker threads
//!   and folds per-shard statistics through the exact machinery of
//!   [`run_app_sharded`](crate::run_app_sharded) ([`SimStats::merge`]
//!   carries the per-stream breakdown, aggregate and per-stream
//!   footprints are recomputed as unions, boundary prefetch-buffer
//!   residency is surfaced).
//!
//! ## The ASID model
//!
//! Under [`SwitchPolicy::Asid`] every stream runs as `Asid(i)` (its mix
//! index). A switch retags the TLB, prefetch buffer, prediction table
//! and the mechanism's banked registers instead of flushing them; the
//! page table stays shared and untagged — it is the global translation
//! oracle, which keeps footprints comparable across policies. At most
//! `contexts` ASIDs are *live*: activating a stream beyond that recycles
//! the least-recently-activated slot by evicting every trace of its
//! context ([`Engine::evict_asid`]). The degeneration rule follows:
//! with `contexts = 1` the sole live context is fully evicted at every
//! switch, which is bit-identical to [`SwitchPolicy::FlushOnSwitch`] —
//! the differential oracle the equivalence tests pin.
//!
//! [`TablePolicy`] picks where competition happens: `Shared` runs one
//! machine whose tagged structures compete for capacity across
//! contexts; `Partitioned` gives each stream a private TLB, buffer and
//! table (per-stream static partition), with slot recycling flushing
//! the victim's private machine.
//!
//! ## Why sharding stays exact
//!
//! A shard starts cold: empty TLB, empty buffer, unlearned tables. Under
//! `FlushOnSwitch` that is *exactly* the machine state a sequential
//! run has immediately after a context switch — so cutting the stream
//! only at switches makes the sharded run **bit-identical** to the
//! sequential one (pinned by the differential tests), and the
//! degenerate `Asid { contexts: 1, .. }` inherits the same exactness
//! through the degeneration rule. `Asid` with `Partitioned` tables and
//! `contexts >= n_streams` shards at *stream* granularity instead: no
//! context is ever evicted and the private machines are independent, so
//! assigning whole streams to shards is embarrassingly parallel and
//! bit-identical to sequential at every shard count. The remaining
//! configurations (shared competitive tables with surviving state)
//! shard at switch boundaries with the same bounded cold-start effects
//! as ordinary sharding, quantified by
//! [`ShardedRun::boundary_resident_prefetches`].

use serde::{Deserialize, Serialize};
use tlbsim_core::{Asid, VirtPage};
use tlbsim_workloads::{MultiStreamSpec, Scale, StreamSpec, Workload};

use crate::config::{SimConfig, SimError};
use crate::engine::Engine;
use crate::shard::{fold_shards, run_shards_recovering, ShardHarvest, ShardRange, ShardedRun};
use crate::stats::{PerStreamStats, SimStats, StreamStats};

/// Where an ASID-switched machine's competitive structures live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TablePolicy {
    /// One machine: TLB, prefetch buffer and prediction table are tagged
    /// and *shared* — contexts compete for capacity the way co-scheduled
    /// tenants compete for a physical TLB.
    Shared,
    /// Per-stream private machines: each stream gets its own TLB, buffer
    /// and table (a static partition); recycling a live slot flushes the
    /// victim's private machine.
    Partitioned,
}

/// What happens to translation and prediction state at a context switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchPolicy {
    /// Switches are invisible: all state survives untagged (the
    /// optimistic upper bound — streams can hit on each other's
    /// entries).
    None,
    /// Every switch flushes the TLB, the prefetch buffer and the
    /// mechanism's learned state ([`Engine::context_switch`]); the page
    /// table survives. This is the paper's §4 pessimistic model and the
    /// differential oracle ASID mode degenerates to.
    FlushOnSwitch,
    /// Flush-free switching: stream `i` runs tagged as `Asid(i)`, with
    /// at most `contexts` tags live at once — activating a stream beyond
    /// that evicts the least-recently-activated context entirely. With
    /// `contexts = 1` this degenerates bit-identically to
    /// [`FlushOnSwitch`](SwitchPolicy::FlushOnSwitch).
    Asid {
        /// Live-context budget (hardware ASID slots). Must be at least
        /// 1; `>= n_streams` means no context is ever evicted.
        contexts: usize,
        /// Shared competitive structures or per-stream partitions.
        tables: TablePolicy,
    },
}

impl SwitchPolicy {
    /// Validates the policy itself (stream-count-independent).
    pub(crate) fn validate(&self) -> Result<(), SimError> {
        match self {
            SwitchPolicy::Asid { contexts: 0, .. } => Err(SimError::ZeroAsidContexts),
            _ => Ok(()),
        }
    }
}

impl std::fmt::Display for SwitchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchPolicy::None => f.write_str("no flush"),
            SwitchPolicy::FlushOnSwitch => f.write_str("flush on switch"),
            SwitchPolicy::Asid { contexts, tables } => write!(
                f,
                "asid ({} contexts, {} tables)",
                contexts,
                match tables {
                    TablePolicy::Shared => "shared",
                    TablePolicy::Partitioned => "partitioned",
                }
            ),
        }
    }
}

/// The attribution-relevant difference between two engine snapshots —
/// what one slice of one stream contributed.
fn share_between(before: &SimStats, after: &SimStats) -> StreamStats {
    StreamStats {
        accesses: after.accesses - before.accesses,
        misses: after.misses - before.misses,
        prefetch_buffer_hits: after.prefetch_buffer_hits - before.prefetch_buffer_hits,
        demand_walks: after.demand_walks - before.demand_walks,
        prefetches_issued: after.prefetches_issued - before.prefetches_issued,
        // Footprints are sets, not deltas: the runner overwrites them
        // from the engine's per-stream page sets once the run is done.
        footprint_pages: 0,
    }
}

/// Moves `stream` to the most-recently-activated end of the live list,
/// returning the least-recently-activated victim if a slot had to be
/// recycled to admit it.
fn activate_asid(live: &mut Vec<usize>, stream: usize, contexts: usize) -> Option<usize> {
    if let Some(pos) = live.iter().position(|&s| s == stream) {
        live.remove(pos);
        live.push(stream);
        return None;
    }
    let victim = if live.len() == contexts {
        Some(live.remove(0))
    } else {
        None
    };
    live.push(stream);
    victim
}

/// Runs a multiprogrammed interleave through the functional engine with
/// context-switch semantics and per-stream attribution.
///
/// Slices execute in schedule order under `policy` (see
/// [`SwitchPolicy`]). Each slice's counter deltas are attributed to its
/// stream in the returned [`SimStats::per_stream`] breakdown, and each
/// stream's demand footprint (distinct pages it missed on) is recorded
/// in [`StreamStats::footprint_pages`].
///
/// A 1-stream mix has no switches, so — whatever the policy — the
/// result equals the plain [`run_app`](crate::run_app) on that stream
/// (the aggregate counters bit-identically; `per_stream` additionally
/// holds the single stream's full share).
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is invalid, or
/// [`SimError::ZeroAsidContexts`] for an ASID policy with no live slots.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tlbsim_sim::{run_mix, SimConfig, SwitchPolicy};
/// use tlbsim_workloads::{find_app, MultiStreamSpec, Scale, Schedule, StreamSpec};
///
/// let mix = MultiStreamSpec::new(
///     vec![
///         Arc::new(find_app("gap").expect("registered")) as Arc<dyn StreamSpec>,
///         Arc::new(find_app("mcf").expect("registered")),
///     ],
///     Schedule::RoundRobin { quantum: 10_000 },
/// )
/// .expect("valid mix");
/// let stats = run_mix(&mix, Scale::TINY, &SimConfig::paper_default(), SwitchPolicy::FlushOnSwitch)?;
///
/// // Attribution is exhaustive: the per-stream shares sum back to the
/// // aggregate counters.
/// assert_eq!(stats.per_stream.len(), 2);
/// let attributed: u64 = stats.per_stream.streams().iter().map(|s| s.accesses).sum();
/// assert_eq!(attributed, stats.accesses);
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub fn run_mix(
    mix: &MultiStreamSpec,
    scale: Scale,
    config: &SimConfig,
    policy: SwitchPolicy,
) -> Result<SimStats, SimError> {
    policy.validate()?;
    drop(Engine::new(config)?);
    let slices = switch_slices(mix, scale);
    Ok(run_slices(mix, scale, config, policy, &slices).stats)
}

/// One switch-delimited run of consecutive same-stream segments — the
/// unit shard boundaries may fall on.
#[derive(Debug, Clone, Copy)]
struct MixSlice {
    stream: usize,
    start_in_stream: u64,
    len: u64,
}

/// Coalesces the schedule's segments into switch-delimited slices.
/// Consecutive segments of the same stream (the tail once every other
/// stream has exhausted) fuse, so a boundary between any two slices is
/// always a genuine context switch.
fn switch_slices(mix: &MultiStreamSpec, scale: Scale) -> Vec<MixSlice> {
    let mut slices: Vec<MixSlice> = Vec::new();
    for segment in mix.segments(scale) {
        match slices.last_mut() {
            Some(last) if last.stream == segment.stream => last.len += segment.len,
            _ => slices.push(MixSlice {
                stream: segment.stream,
                start_in_stream: segment.start,
                len: segment.len,
            }),
        }
    }
    slices
}

/// Partitions `slices` into `shards` contiguous groups of roughly equal
/// access counts, cutting only between slices. Returns per-shard slice
/// index ranges alongside the equivalent access-stream [`ShardRange`]s.
fn plan_slice_groups(
    slices: &[MixSlice],
    shards: usize,
) -> (Vec<std::ops::Range<usize>>, Vec<ShardRange>) {
    let total: u64 = slices.iter().map(|s| s.len).sum();
    let mut groups = Vec::with_capacity(shards);
    let mut ranges = Vec::with_capacity(shards);
    let mut next_slice = 0usize;
    let mut position = 0u64;
    for shard in 0..shards {
        let target = (shard as u64 + 1) * total / shards as u64;
        let start_slice = next_slice;
        let start_position = position;
        while next_slice < slices.len() && (position < target || shard + 1 == shards) {
            position += slices[next_slice].len;
            next_slice += 1;
        }
        groups.push(start_slice..next_slice);
        ranges.push(ShardRange {
            start: start_position,
            len: position - start_position,
        });
    }
    (groups, ranges)
}

/// Executes a group of slices under `policy` on fresh machine state and
/// harvests statistics, page sets and buffer residency — the shared
/// kernel of [`run_mix`] (all slices, one group) and the sharded
/// executors (one group per worker).
fn run_slices(
    mix: &MultiStreamSpec,
    scale: Scale,
    config: &SimConfig,
    policy: SwitchPolicy,
    slices: &[MixSlice],
) -> ShardHarvest {
    match policy {
        SwitchPolicy::Asid {
            contexts,
            tables: TablePolicy::Partitioned,
        } => run_slices_partitioned(mix, scale, config, contexts, slices),
        _ => run_slices_one_machine(mix, scale, config, policy, slices),
    }
}

/// Positions (lazily creating) the cached workload for `slice`.
///
/// Within a slice group each stream's slices are consecutive chunks of
/// that stream, so later slices continue without reseeking.
fn positioned_workload<'w>(
    mix: &MultiStreamSpec,
    scale: Scale,
    workloads: &'w mut [Option<Workload>],
    slice: &MixSlice,
) -> &'w mut Workload {
    match &mut workloads[slice.stream] {
        Some(w) => w,
        none => {
            let mut fresh = mix.streams()[slice.stream].workload(scale);
            let skipped = fresh.skip_accesses(slice.start_in_stream);
            debug_assert_eq!(
                skipped, slice.start_in_stream,
                "stream shorter than planned"
            );
            none.insert(fresh)
        }
    }
}

/// The single-machine executor: [`SwitchPolicy::None`],
/// [`SwitchPolicy::FlushOnSwitch`], and shared-table ASID switching.
fn run_slices_one_machine(
    mix: &MultiStreamSpec,
    scale: Scale,
    config: &SimConfig,
    policy: SwitchPolicy,
    slices: &[MixSlice],
) -> ShardHarvest {
    let n = mix.streams().len();
    let mut engine = Engine::new(config).expect("configuration validated by the caller");
    let mut per = PerStreamStats::with_streams(n);
    let mut workloads: Vec<Option<Workload>> = (0..n).map(|_| None).collect();
    let mut live: Vec<usize> = Vec::new();
    let mut running: Option<usize> = None;
    for slice in slices {
        match policy {
            SwitchPolicy::None => {}
            SwitchPolicy::FlushOnSwitch => {
                if running.is_some_and(|r| r != slice.stream) {
                    engine.context_switch();
                }
            }
            SwitchPolicy::Asid { contexts, .. } => {
                if let Some(victim) = activate_asid(&mut live, slice.stream, contexts) {
                    engine.evict_asid(Asid::new(victim as u16));
                }
                engine.set_asid(Asid::new(slice.stream as u16));
            }
        }
        running = Some(slice.stream);
        engine.attribute_to(slice.stream);
        let workload = positioned_workload(mix, scale, &mut workloads, slice);
        let before = engine.stats().clone();
        engine.run_workload_limit(workload, slice.len);
        let share = share_between(&before, engine.stats());
        debug_assert_eq!(
            share.accesses, slice.len,
            "stream {} ended before its reported stream_len",
            slice.stream
        );
        per.record(slice.stream, &share);
    }
    let mut stats = engine.finish().clone();
    for stream in 0..n {
        per.set_footprint(stream, engine.stream_footprint(stream));
    }
    stats.per_stream = per;
    ShardHarvest {
        pages: engine.touched_pages_snapshot(),
        resident: engine.resident_prefetches(),
        stream_pages: (0..n).map(|s| engine.stream_pages_snapshot(s)).collect(),
        stats,
    }
}

/// The partitioned-table executor: each stream owns a private engine
/// (TLB + buffer + table + page table); recycling a live slot flushes
/// the victim's machine ([`Engine::context_switch`] on it). Aggregates
/// are folded in stream-index order, with the footprint recomputed as
/// the union of the private page sets — equal to the shared page table
/// a single-machine run would have kept.
fn run_slices_partitioned(
    mix: &MultiStreamSpec,
    scale: Scale,
    config: &SimConfig,
    contexts: usize,
    slices: &[MixSlice],
) -> ShardHarvest {
    let n = mix.streams().len();
    let mut engines: Vec<Option<Engine>> = (0..n).map(|_| None).collect();
    let mut workloads: Vec<Option<Workload>> = (0..n).map(|_| None).collect();
    let mut live: Vec<usize> = Vec::new();
    for slice in slices {
        if let Some(victim) = activate_asid(&mut live, slice.stream, contexts) {
            if let Some(engine) = engines[victim].as_mut() {
                // Private machines carry no foreign state, so recycling
                // the slot is a plain flush of the victim's machine.
                engine.context_switch();
            }
        }
        let engine = match &mut engines[slice.stream] {
            Some(e) => e,
            none => {
                let mut fresh = Engine::new(config).expect("configuration validated by the caller");
                // Private engines attribute under a single local index.
                fresh.attribute_to(0);
                none.insert(fresh)
            }
        };
        let workload = positioned_workload(mix, scale, &mut workloads, slice);
        engine.run_workload_limit(workload, slice.len);
    }

    let mut stats = SimStats::default();
    let mut per = PerStreamStats::with_streams(n);
    let mut pages: Vec<VirtPage> = Vec::new();
    let mut stream_pages: Vec<Vec<VirtPage>> = Vec::with_capacity(n);
    let mut resident = 0;
    for (stream, engine) in engines.iter_mut().enumerate() {
        let Some(engine) = engine else {
            stream_pages.push(Vec::new());
            continue;
        };
        let own = engine.finish().clone();
        per.record(
            stream,
            &StreamStats {
                accesses: own.accesses,
                misses: own.misses,
                prefetch_buffer_hits: own.prefetch_buffer_hits,
                demand_walks: own.demand_walks,
                prefetches_issued: own.prefetches_issued,
                footprint_pages: 0,
            },
        );
        per.set_footprint(stream, engine.stream_footprint(0));
        stats.merge(&own);
        pages.extend(engine.touched_pages_snapshot());
        resident += engine.resident_prefetches();
        stream_pages.push(engine.stream_pages_snapshot(0));
    }
    pages.sort_unstable();
    pages.dedup();
    stats.footprint_pages = pages.len() as u64;
    stats.per_stream = per;
    ShardHarvest {
        stats,
        pages,
        resident,
        stream_pages,
    }
}

/// Partitions a multiprogrammed interleave across `shards` worker
/// threads and merges the per-shard statistics deterministically,
/// per-stream attribution and footprints included.
///
/// The fold is the sharded executor's own: counters merge in shard order
/// via [`SimStats::merge`] (which carries [`SimStats::per_stream`]
/// positionally), and the merged aggregate *and per-stream* footprints
/// are recomputed as exact unions of the shards' page sets. The cut
/// strategy follows the policy:
///
/// * `Asid` with [`TablePolicy::Partitioned`] and `contexts >=
///   n_streams` shards at **stream granularity** (whole streams
///   assigned to shards, balanced by stream length): no context is ever
///   evicted and the private machines are independent, so the result is
///   bit-identical to the sequential run at every shard count;
/// * every other policy cuts at **switch boundaries**. With `shards =
///   1` the result is bit-identical to [`run_mix`]; with
///   [`SwitchPolicy::FlushOnSwitch`] — or its degenerate twin
///   `Asid { contexts: 1, .. }` — it is bit-identical at every shard
///   count, because each shard boundary coincides with a state wipe the
///   sequential run performs anyway. Shared-table ASID runs with more
///   live contexts approximate, like ordinary sharding, with the error
///   quantified by [`ShardedRun::boundary_resident_prefetches`].
///
/// Like [`run_app_sharded`](crate::run_app_sharded), the executor is
/// self-healing: panicking shard workers are retried then degraded to
/// in-line execution, with recovery (and any quarantined trace records
/// among the mix's members) reported in [`ShardedRun::health`].
///
/// # Errors
///
/// Returns [`SimError::ZeroShards`] for `shards == 0`,
/// [`SimError::ZeroAsidContexts`] for an ASID policy with no live
/// slots, the configuration's own error if it is invalid, or
/// [`SimError::ShardPanicked`] for a persistently panicking shard.
pub fn run_mix_sharded(
    mix: &MultiStreamSpec,
    scale: Scale,
    config: &SimConfig,
    policy: SwitchPolicy,
    shards: usize,
) -> Result<ShardedRun, SimError> {
    if shards == 0 {
        return Err(SimError::ZeroShards);
    }
    policy.validate()?;
    // Validate once, up front, so workers can assume constructibility.
    drop(Engine::new(config)?);

    if let SwitchPolicy::Asid {
        contexts,
        tables: TablePolicy::Partitioned,
    } = policy
    {
        if contexts >= mix.streams().len() {
            return run_mix_sharded_by_stream(mix, scale, config, policy, shards);
        }
    }

    let slices = switch_slices(mix, scale);
    let (groups, ranges) = plan_slice_groups(&slices, shards);

    let (harvests, mut health) = run_shards_recovering(shards, |index| {
        run_slices(mix, scale, config, policy, &slices[groups[index].clone()])
    })?;
    health.quarantined_records = mix.quarantined_records();
    Ok(fold_shards(harvests, &ranges, health))
}

/// Stream-granular sharding for eviction-free partitioned ASID runs:
/// whole streams are assigned to shards (greedy longest-processing-time
/// balance on stream length, deterministic tie-breaks), and each shard
/// runs its streams full-length on private engines. Because no slot is
/// ever recycled and machines are private, the interleave order is
/// irrelevant and the fold is bit-identical to the sequential run.
fn run_mix_sharded_by_stream(
    mix: &MultiStreamSpec,
    scale: Scale,
    config: &SimConfig,
    policy: SwitchPolicy,
    shards: usize,
) -> Result<ShardedRun, SimError> {
    let n = mix.streams().len();
    let lens: Vec<u64> = mix.streams().iter().map(|s| s.stream_len(scale)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(lens[i]), i));
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut loads = vec![0u64; shards];
    for stream in order {
        let lightest = (0..shards)
            .min_by_key(|&g| (loads[g], g))
            .expect("at least one shard");
        owned[lightest].push(stream);
        loads[lightest] += lens[stream];
    }
    // Run each shard's streams in mix order; the ranges fabricated here
    // describe attribution volume (cumulative access counts), not
    // positions in the interleaved stream.
    let group_slices: Vec<Vec<MixSlice>> = owned
        .iter_mut()
        .map(|streams| {
            streams.sort_unstable();
            streams
                .iter()
                .map(|&stream| MixSlice {
                    stream,
                    start_in_stream: 0,
                    len: lens[stream],
                })
                .collect()
        })
        .collect();
    let mut ranges = Vec::with_capacity(shards);
    let mut position = 0u64;
    for load in &loads {
        ranges.push(ShardRange {
            start: position,
            len: *load,
        });
        position += load;
    }

    let (harvests, mut health) = run_shards_recovering(shards, |index| {
        run_slices(mix, scale, config, policy, &group_slices[index])
    })?;
    health.quarantined_records = mix.quarantined_records();
    Ok(fold_shards(harvests, &ranges, health))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_app;
    use std::sync::Arc;
    use tlbsim_workloads::{find_app, Schedule};

    fn mix_of(names: &[&str], schedule: Schedule) -> MultiStreamSpec {
        let streams: Vec<Arc<dyn StreamSpec>> = names
            .iter()
            .map(|n| Arc::new(find_app(n).unwrap()) as Arc<dyn StreamSpec>)
            .collect();
        MultiStreamSpec::new(streams, schedule).unwrap()
    }

    #[test]
    fn attribution_is_exhaustive_and_per_stream_lengths_are_exact() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 1000 });
        let stats = run_mix(
            &mix,
            Scale::TINY,
            &SimConfig::paper_default(),
            SwitchPolicy::None,
        )
        .unwrap();
        assert_eq!(stats.per_stream.len(), 2);
        for (share, spec) in stats.per_stream.streams().iter().zip(mix.streams()) {
            assert_eq!(share.accesses, spec.stream_len(Scale::TINY));
        }
        let shares = stats.per_stream.streams();
        let sum = |f: fn(&StreamStats) -> u64| -> u64 { shares.iter().map(f).sum() };
        assert_eq!(sum(|s| s.accesses), stats.accesses);
        assert_eq!(sum(|s| s.misses), stats.misses);
        assert_eq!(sum(|s| s.prefetch_buffer_hits), stats.prefetch_buffer_hits);
        assert_eq!(sum(|s| s.demand_walks), stats.demand_walks);
        assert_eq!(sum(|s| s.prefetches_issued), stats.prefetches_issued);
        // Demand footprints are bounded by the aggregate (which also
        // counts prefetched-but-unreferenced pages).
        assert!(sum(|s| s.footprint_pages) <= 2 * stats.footprint_pages);
        assert!(shares.iter().all(|s| s.footprint_pages > 0));
    }

    #[test]
    fn flushing_on_switch_costs_accuracy_never_changes_miss_attribution_totals() {
        let mix = mix_of(&["gap", "eon"], Schedule::RoundRobin { quantum: 500 });
        let config = SimConfig::paper_default();
        let kept = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::None).unwrap();
        let flushed = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch).unwrap();
        assert_eq!(kept.accesses, flushed.accesses);
        assert!(
            flushed.misses >= kept.misses,
            "flushes cannot reduce misses"
        );
        assert!(flushed.accuracy() <= kept.accuracy() + 1e-12);
    }

    #[test]
    fn asid_switching_beats_flushing_and_conserves_attribution() {
        let mix = mix_of(
            &["gap", "mcf", "eon"],
            Schedule::RoundRobin { quantum: 400 },
        );
        let config = SimConfig::paper_default();
        let flushed = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch).unwrap();
        for tables in [TablePolicy::Shared, TablePolicy::Partitioned] {
            let asid = run_mix(
                &mix,
                Scale::TINY,
                &config,
                SwitchPolicy::Asid {
                    contexts: 3,
                    tables,
                },
            )
            .unwrap();
            assert_eq!(asid.accesses, flushed.accesses, "{tables:?}");
            assert!(
                asid.misses <= flushed.misses,
                "{tables:?}: keeping state across switches cannot add misses"
            );
            let attributed: u64 = asid.per_stream.streams().iter().map(|s| s.accesses).sum();
            assert_eq!(attributed, asid.accesses, "{tables:?}");
        }
    }

    #[test]
    fn degenerate_asid_equals_the_flush_oracle() {
        // One live context forces a full eviction at every switch: both
        // table policies must degenerate bit-identically to the flush
        // oracle — the central equivalence of the ASID model.
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 700 });
        let config = SimConfig::paper_default();
        let oracle = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch).unwrap();
        for tables in [TablePolicy::Shared, TablePolicy::Partitioned] {
            let squeezed = run_mix(
                &mix,
                Scale::TINY,
                &config,
                SwitchPolicy::Asid {
                    contexts: 1,
                    tables,
                },
            )
            .unwrap();
            assert_eq!(squeezed, oracle, "{tables:?} degeneration broke");
        }
    }

    #[test]
    fn zero_asid_contexts_is_rejected() {
        let mix = mix_of(&["gap"], Schedule::RoundRobin { quantum: 10 });
        for entry in [
            run_mix(
                &mix,
                Scale::TINY,
                &SimConfig::paper_default(),
                SwitchPolicy::Asid {
                    contexts: 0,
                    tables: TablePolicy::Shared,
                },
            )
            .map(|_| ()),
            run_mix_sharded(
                &mix,
                Scale::TINY,
                &SimConfig::paper_default(),
                SwitchPolicy::Asid {
                    contexts: 0,
                    tables: TablePolicy::Partitioned,
                },
                2,
            )
            .map(|_| ()),
        ] {
            assert!(matches!(entry, Err(SimError::ZeroAsidContexts)));
        }
        assert!(SimError::ZeroAsidContexts
            .to_string()
            .contains("live context"));
    }

    #[test]
    fn one_stream_mix_matches_run_app_in_aggregate() {
        let mix = mix_of(&["gap"], Schedule::RoundRobin { quantum: 333 });
        let config = SimConfig::paper_default();
        let plain = run_app(find_app("gap").unwrap(), Scale::TINY, &config).unwrap();
        for policy in [
            SwitchPolicy::None,
            SwitchPolicy::FlushOnSwitch,
            SwitchPolicy::Asid {
                contexts: 1,
                tables: TablePolicy::Shared,
            },
            SwitchPolicy::Asid {
                contexts: 4,
                tables: TablePolicy::Partitioned,
            },
        ] {
            let mut mixed = run_mix(&mix, Scale::TINY, &config, policy).unwrap();
            assert_eq!(mixed.per_stream.len(), 1);
            assert_eq!(mixed.per_stream.streams()[0].accesses, plain.accesses);
            mixed.per_stream = PerStreamStats::default();
            assert_eq!(mixed, plain, "policy {policy}");
        }
    }

    #[test]
    fn slice_groups_partition_exactly_at_switch_boundaries() {
        let mix = mix_of(
            &["gap", "mcf", "eon"],
            Schedule::RoundRobin { quantum: 700 },
        );
        let slices = switch_slices(&mix, Scale::TINY);
        assert!(slices.windows(2).all(|w| w[0].stream != w[1].stream));
        let total: u64 = slices.iter().map(|s| s.len).sum();
        assert_eq!(total, mix.stream_len(Scale::TINY));
        for shards in [1usize, 2, 4, 64] {
            let (groups, ranges) = plan_slice_groups(&slices, shards);
            assert_eq!(groups.len(), shards);
            assert_eq!(ranges.len(), shards);
            // Groups are contiguous, disjoint and exhaustive.
            let mut next = 0usize;
            let mut position = 0u64;
            for (group, range) in groups.iter().zip(&ranges) {
                assert_eq!(group.start, next);
                next = group.end;
                assert_eq!(range.start, position);
                let len: u64 = slices[group.clone()].iter().map(|s| s.len).sum();
                assert_eq!(range.len, len);
                position += len;
            }
            assert_eq!(next, slices.len());
            assert_eq!(position, total);
        }
    }

    #[test]
    fn sharded_mix_with_flush_is_bit_identical_to_sequential() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 800 });
        let config = SimConfig::paper_default();
        let sequential = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch).unwrap();
        for shards in [1usize, 2, 4] {
            let sharded = run_mix_sharded(
                &mix,
                Scale::TINY,
                &config,
                SwitchPolicy::FlushOnSwitch,
                shards,
            )
            .unwrap();
            assert_eq!(
                sharded.merged, sequential,
                "{shards} shards diverged under flush-on-switch"
            );
        }
    }

    #[test]
    fn sharded_partitioned_asid_is_bit_identical_to_sequential() {
        let mix = mix_of(
            &["gap", "mcf", "eon"],
            Schedule::RoundRobin { quantum: 900 },
        );
        let config = SimConfig::paper_default();
        let policy = SwitchPolicy::Asid {
            contexts: 3,
            tables: TablePolicy::Partitioned,
        };
        let sequential = run_mix(&mix, Scale::TINY, &config, policy).unwrap();
        for shards in [1usize, 2, 4] {
            let sharded = run_mix_sharded(&mix, Scale::TINY, &config, policy, shards).unwrap();
            assert_eq!(
                sharded.merged, sequential,
                "{shards} stream-granular shards diverged"
            );
            let covered: u64 = sharded.shards.iter().map(|s| s.range.len).sum();
            assert_eq!(covered, mix.stream_len(Scale::TINY));
        }
    }

    #[test]
    fn sharded_mix_without_flush_conserves_accesses_and_attribution() {
        let mix = mix_of(&["gap", "eon"], Schedule::RoundRobin { quantum: 900 });
        let config = SimConfig::paper_default();
        let sequential = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::None).unwrap();
        for shards in [1usize, 2, 4] {
            let sharded =
                run_mix_sharded(&mix, Scale::TINY, &config, SwitchPolicy::None, shards).unwrap();
            assert_eq!(sharded.merged.accesses, sequential.accesses);
            assert_eq!(sharded.merged.per_stream.len(), 2);
            for (share, expected) in sharded
                .merged
                .per_stream
                .streams()
                .iter()
                .zip(sequential.per_stream.streams())
            {
                assert_eq!(share.accesses, expected.accesses, "shards={shards}");
            }
            if shards == 1 {
                assert_eq!(sharded.merged, sequential, "one shard must be sequential");
            }
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let mix = mix_of(&["gap"], Schedule::RoundRobin { quantum: 10 });
        assert!(matches!(
            run_mix_sharded(
                &mix,
                Scale::TINY,
                &SimConfig::paper_default(),
                SwitchPolicy::None,
                0
            ),
            Err(SimError::ZeroShards)
        ));
    }

    #[test]
    fn invalid_config_is_rejected_before_spawning() {
        let mix = mix_of(&["gap"], Schedule::RoundRobin { quantum: 10 });
        let bad = SimConfig::paper_default().with_prefetch_buffer(0);
        assert!(matches!(
            run_mix_sharded(&mix, Scale::TINY, &bad, SwitchPolicy::None, 2),
            Err(SimError::ZeroPrefetchBuffer)
        ));
        assert!(matches!(
            run_mix(&mix, Scale::TINY, &bad, SwitchPolicy::None),
            Err(SimError::ZeroPrefetchBuffer)
        ));
    }

    #[test]
    fn mix_recovery_from_a_transient_panic_is_bit_identical_under_flush() {
        use tlbsim_trace::{FaultKind, FaultPlan};
        use tlbsim_workloads::ChaosSpec;

        // One member panics its decoding worker once; under
        // flush-on-switch, the retried sharded run must still match the
        // undisturbed sequential interleave bit-for-bit.
        let gap = Arc::new(find_app("gap").unwrap()) as Arc<dyn StreamSpec>;
        let chaos = Arc::new(ChaosSpec::new(
            Arc::new(find_app("mcf").unwrap()),
            FaultPlan::new().with(3_000, FaultKind::WorkerPanic),
            1,
        )) as Arc<dyn StreamSpec>;
        let faulty = MultiStreamSpec::new(
            vec![Arc::clone(&gap), chaos],
            Schedule::RoundRobin { quantum: 800 },
        )
        .unwrap();
        let clean = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 800 });

        let config = SimConfig::paper_default();
        let sequential =
            run_mix(&clean, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch).unwrap();
        let recovered = run_mix_sharded(
            &faulty,
            Scale::TINY,
            &config,
            SwitchPolicy::FlushOnSwitch,
            2,
        )
        .unwrap();
        assert_eq!(recovered.health.retries, 1);
        assert_eq!(recovered.health.degraded_shards, 0);
        assert_eq!(recovered.health.quarantined_records, 0);
        assert_eq!(
            recovered.merged, sequential,
            "recovered mix must match the clean sequential run"
        );
    }

    #[test]
    fn more_shards_than_slices_leave_empty_tails() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 1 << 40 });
        // Giant quantum: exactly two slices. Eight shards → six empty.
        let run = run_mix_sharded(
            &mix,
            Scale::TINY,
            &SimConfig::paper_default(),
            SwitchPolicy::None,
            8,
        )
        .unwrap();
        assert_eq!(run.shards.len(), 8);
        let nonempty = run.shards.iter().filter(|s| s.range.len > 0).count();
        assert_eq!(nonempty, 2);
        assert_eq!(run.merged.accesses, mix.stream_len(Scale::TINY));
    }

    #[test]
    fn switch_policy_displays_are_distinct() {
        let policies = [
            SwitchPolicy::None,
            SwitchPolicy::FlushOnSwitch,
            SwitchPolicy::Asid {
                contexts: 8,
                tables: TablePolicy::Shared,
            },
            SwitchPolicy::Asid {
                contexts: 8,
                tables: TablePolicy::Partitioned,
            },
        ];
        let rendered: Vec<String> = policies.iter().map(|p| p.to_string()).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &rendered[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
