//! Sharding one large run across worker threads.
//!
//! The [`sweep`](crate::sweep) executor parallelises *across* jobs; this
//! module parallelises *within* one job, so a single figure-scale run
//! can use the whole machine. The access stream is time-sliced into
//! contiguous, statically planned chunks ([`ShardPlan`]); each worker
//! thread owns a private TLB + prefetch-engine shard built from the same
//! [`SimConfig`], positions its workload with
//! [`Workload::skip_accesses`] (visit-granularity seeking — no prefix
//! replay), and simulates exactly its slice. Per-shard [`SimStats`] are
//! then folded in shard order with [`SimStats::merge`], with two
//! reconciliation steps at shard boundaries:
//!
//! * **footprint union** — distinct pages touched by several shards
//!   must count once, so the merged
//!   [`footprint_pages`](SimStats::footprint_pages) is recomputed as the
//!   exact union of the shards' page sets rather than the sum;
//! * **in-flight prefetch-buffer state** — prefetches still resident in
//!   a non-final shard's buffer at its boundary are translations a
//!   sequential run could still have promoted later; their count is
//!   surfaced as [`ShardedRun::boundary_resident_prefetches`] so the
//!   sharding approximation is quantified, not silent.
//!
//! Because the plan is static and the fold order is the shard order, the
//! merged result depends only on `(app, scale, config, shards)` — never
//! on which worker finished first. With `shards = 1` the executor
//! degenerates to a plain sequential run and the merged statistics are
//! bit-identical to [`run_app`](crate::run_app) (both properties are
//! pinned by tests).
//!
//! ## What sharding approximates
//!
//! Every shard starts cold: empty TLB, empty prefetch buffer, unlearned
//! prediction tables. Merged counters are therefore exact for the
//! simulated slices but differ slightly from a sequential run around the
//! `shards − 1` boundaries (extra cold misses, unlearned predictions).
//! The paper's headline metrics are ratios over millions of events, so
//! boundary effects vanish at figure scale — but fidelity-critical runs
//! should use `shards = 1`, which is the default everywhere.

use std::panic::AssertUnwindSafe;

use tlbsim_core::VirtPage;
use tlbsim_workloads::{Scale, StreamSpec};

use crate::config::{SimConfig, SimError};
use crate::engine::Engine;
use crate::stats::SimStats;

/// Worker attempts each shard gets on the pool before its slice is
/// degraded to in-line execution on the coordinating thread (see
/// [`RunHealth`]).
pub const SHARD_ATTEMPTS: usize = 2;

/// The smallest slice the automatic shard planner will hand a worker.
///
/// Below this, per-shard cold-start (empty TLB, unlearned tables) and
/// thread bring-up dominate the slice itself, so [`auto_shard_count`]
/// caps the shard count at `stream_len / AUTO_SHARD_MIN_SLICE` even on
/// very wide machines.
pub const AUTO_SHARD_MIN_SLICE: u64 = 8192;

/// Picks a shard count for a stream of `stream_len` accesses: the
/// machine's available parallelism, clamped so no shard's slice falls
/// below [`AUTO_SHARD_MIN_SLICE`], and always at least 1.
///
/// This is what `--shards auto` and the serving layer's default resolve
/// to — a hardcoded shard count models one machine, while the fleet
/// this daemon runs on varies from laptops to many-core servers.
pub fn auto_shard_count(stream_len: u64) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let by_length = usize::try_from((stream_len / AUTO_SHARD_MIN_SLICE).max(1)).unwrap_or(cpus);
    cpus.min(by_length).max(1)
}

/// Resolves a user-facing shard request: `0` means "auto" (see
/// [`auto_shard_count`]), any other value is taken literally — clamped
/// to the stream length (and at least 1), so a request like
/// `--shards 64` over a 10-access stream plans 10 single-access shards
/// instead of 54 empty ones whose workers spin up for nothing.
pub fn resolve_shards(requested: usize, stream_len: u64) -> usize {
    if requested == 0 {
        auto_shard_count(stream_len)
    } else {
        let cap = usize::try_from(stream_len.max(1)).unwrap_or(usize::MAX);
        requested.min(cap).max(1)
    }
}

/// What it took to finish a run: the self-healing executor's recovery
/// counters plus the input damage the workload layer absorbed.
///
/// All-zero ([`RunHealth::is_clean`]) on the happy path. The sharded
/// runners attach it to every [`ShardedRun`], so a result produced
/// through retries, degraded shards, or a quarantine-decoded trace says
/// so — the statistics themselves are unchanged by recovery (a retried
/// or degraded shard re-simulates exactly the slice the plan assigned
/// it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunHealth {
    /// Worker attempts that panicked and were retried on the pool.
    pub retries: u64,
    /// Shards whose workers exhausted [`SHARD_ATTEMPTS`] and ran
    /// in-line on the coordinating thread instead.
    pub degraded_shards: u64,
    /// Input records the workload layer quarantined at decode (see
    /// `StreamSpec::quarantined_records`).
    pub quarantined_records: u64,
}

impl RunHealth {
    /// Whether the run needed no recovery and lost no input.
    pub fn is_clean(&self) -> bool {
        *self == RunHealth::default()
    }
}

impl std::fmt::Display for RunHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        write!(
            f,
            "{} retries, {} degraded shards, {} quarantined records",
            self.retries, self.degraded_shards, self.quarantined_records
        )
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_owned()
    }
}

/// Runs `count` index-addressed tasks on a scoped worker pool bounded
/// by the machine's available parallelism, retrying each panicking task
/// up to [`SHARD_ATTEMPTS`] times, and returns `(slots, retries)` in
/// index order — `None` in a slot means every worker attempt panicked
/// and the caller should degrade that index to in-line execution.
///
/// This is the execution scaffold shared by the sharded runners
/// ([`run_app_sharded`], [`run_mix_sharded`](crate::run_mix_sharded)):
/// workers pull indices from a shared cursor (so absurd task counts
/// cannot exhaust OS threads), every task's slot is fixed by its index,
/// and the returned order is the index order — scheduling can never
/// affect the result. A panic is contained to the attempt that raised
/// it (`catch_unwind`): the worker thread survives to run other
/// indices, and determinism is unaffected because a retried task
/// re-runs the identical slice.
pub(crate) fn parallel_indexed_recovering<T, F>(count: usize, task: F) -> (Vec<Option<T>>, u64)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(count);
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..count).map(|_| std::sync::Mutex::new(None)).collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let retries = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let slots = &slots;
            let cursor = &cursor;
            let retries = &retries;
            let task = &task;
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= count {
                    break;
                }
                for attempt in 1..=SHARD_ATTEMPTS {
                    match std::panic::catch_unwind(AssertUnwindSafe(|| task(index))) {
                        Ok(result) => {
                            *slots[index].lock().expect("slot lock") = Some(result);
                            break;
                        }
                        Err(_) if attempt < SHARD_ATTEMPTS => {
                            retries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(_) => {} // attempts exhausted: slot stays None
                    }
                }
            });
        }
    });

    (
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker threads joined"))
            .collect(),
        retries.into_inner(),
    )
}

/// Drives the self-healing execution protocol for one family of shard
/// tasks: pool with bounded retries first, then in-line degrade on this
/// thread for any shard whose workers kept panicking, then a typed
/// [`SimError::ShardPanicked`] if even the in-line run panics.
///
/// Returns the per-index results plus the [`RunHealth`] recovery
/// counters (`quarantined_records` is left 0 for the caller to fill).
pub(crate) fn run_shards_recovering<T, F>(
    count: usize,
    task: F,
) -> Result<(Vec<T>, RunHealth), SimError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (slots, retries) = parallel_indexed_recovering(count, &task);
    let mut health = RunHealth {
        retries,
        ..RunHealth::default()
    };
    let mut results = Vec::with_capacity(count);
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(result) => results.push(result),
            None => {
                // Every pooled attempt panicked: degrade this slice to
                // in-line execution rather than poisoning the run.
                health.degraded_shards += 1;
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| task(index))).map_err(
                    |payload| SimError::ShardPanicked {
                        shard: index,
                        message: panic_message(payload),
                    },
                )?;
                results.push(result);
            }
        }
    }
    Ok((results, health))
}

/// One shard's contiguous slice of the access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Stream position of the first access in the slice.
    pub start: u64,
    /// Number of accesses in the slice.
    pub len: u64,
}

/// A static partition of a reference stream into contiguous shard
/// ranges.
///
/// The first `total % shards` ranges are one access longer than the
/// rest, so the partition is as even as possible, covers the stream
/// exactly, and depends only on `(total, shards)` — the anchor of the
/// executor's determinism.
///
/// # Examples
///
/// ```
/// use tlbsim_sim::ShardPlan;
///
/// let plan = ShardPlan::split(10, 4);
/// let lens: Vec<u64> = plan.ranges().iter().map(|r| r.len).collect();
/// assert_eq!(lens, [3, 3, 2, 2]);
/// assert_eq!(plan.ranges()[2].start, 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<ShardRange>,
}

impl ShardPlan {
    /// Splits `total` accesses into `shards` contiguous ranges.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero; the public executor surfaces that as
    /// [`SimError::ZeroShards`] before planning.
    pub fn split(total: u64, shards: usize) -> Self {
        assert!(shards > 0, "shard plan requires at least one shard");
        let shards_u64 = shards as u64;
        let base = total / shards_u64;
        let longer = total % shards_u64;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for index in 0..shards_u64 {
            let len = base + u64::from(index < longer);
            ranges.push(ShardRange { start, len });
            start += len;
        }
        ShardPlan { ranges }
    }

    /// Splits `total` accesses into `shards` contiguous ranges whose
    /// interior boundaries fall on multiples of `alignment`.
    ///
    /// With `alignment == 1` (or 0, which is treated as 1) the plan is
    /// **identical** to [`ShardPlan::split`] — the sequential-equality
    /// pins on generator workloads are untouched. For larger alignments
    /// the stream's whole alignment units are split as evenly as
    /// [`ShardPlan::split`] splits accesses, and the final shard absorbs
    /// the sub-unit remainder; when the stream holds fewer whole units
    /// than shards, leading shards plan empty ranges (which workers
    /// skip for free), never misaligned ones.
    ///
    /// This is what lets block-compressed (v2) trace replay shard
    /// without paying delta decoding at the cuts: the workloads layer
    /// advertises its records-per-block via `StreamSpec::seek_alignment`
    /// and every worker's O(1) seek then lands exactly on a block
    /// restart.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, as for [`ShardPlan::split`].
    pub fn split_aligned(total: u64, shards: usize, alignment: u64) -> Self {
        if alignment <= 1 {
            return Self::split(total, shards);
        }
        let units = total / alignment;
        let unit_plan = Self::split(units, shards);
        let mut ranges = Vec::with_capacity(shards);
        for (index, unit_range) in unit_plan.ranges.iter().enumerate() {
            let start = unit_range.start * alignment;
            let end = if index + 1 == unit_plan.ranges.len() {
                total
            } else {
                (unit_range.start + unit_range.len) * alignment
            };
            ranges.push(ShardRange {
                start,
                len: end - start,
            });
        }
        ShardPlan { ranges }
    }

    /// The planned ranges, in stream order.
    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// Total accesses covered by the plan.
    pub fn total(&self) -> u64 {
        self.ranges.iter().map(|r| r.len).sum()
    }
}

/// One shard's outcome inside a [`ShardedRun`].
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The slice this shard simulated.
    pub range: ShardRange,
    /// The shard's own counters (footprint is shard-local).
    pub stats: SimStats,
    /// Prefetches still resident in this shard's buffer when its slice
    /// ended — issued but never promoted.
    pub resident_prefetches: u64,
}

/// The merged result of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// Deterministically merged statistics: counters summed in shard
    /// order, footprint replaced by the exact union of shard page sets.
    pub merged: SimStats,
    /// Per-shard outcomes, in stream order.
    pub shards: Vec<ShardOutcome>,
    /// Shard-boundary reconciliation: the summed prefetch-buffer
    /// residency of every *non-final* shard at the end of its slice.
    /// These are the in-flight translations a sequential run could still
    /// have used; `0` when `shards == 1`, where the run is bit-identical
    /// to the sequential path.
    pub boundary_resident_prefetches: u64,
    /// What it took to produce this result: worker retries, shards
    /// degraded to in-line execution, and input records lost to
    /// quarantine decode. All-zero on the happy path.
    pub health: RunHealth,
}

/// Partitions one run — of a registered application model or a recorded
/// trace (any [`StreamSpec`]) — across `shards` worker threads and
/// merges the per-shard statistics deterministically.
///
/// Trace replay shards especially cheaply: a generator shard seeks by
/// visit arithmetic, while a trace shard's cursor positions itself with
/// one O(1) offset computation into the shared mapping.
///
/// Shards run on a scoped worker pool bounded by the machine's
/// available parallelism (extra shards queue on a shared cursor), and
/// results are folded in shard order, so the output is independent of
/// worker scheduling and arbitrary shard counts cannot exhaust OS
/// threads. With `shards = 1` the result is bit-identical to
/// [`run_app`].
///
/// The executor is self-healing: a worker attempt that panics
/// mid-slice (a poisoned allocator, a chaos-injected fault) is retried
/// on the pool up to [`SHARD_ATTEMPTS`] times, then the slice is
/// degraded to in-line sequential execution on the calling thread;
/// recovery is reported in [`ShardedRun::health`], and because a
/// retried or degraded shard re-simulates exactly its planned slice,
/// the recovered statistics are identical to an undisturbed run's.
///
/// # Errors
///
/// Returns [`SimError::ZeroShards`] for `shards == 0`, the
/// configuration's own error if it is invalid, or
/// [`SimError::ShardPanicked`] if a shard keeps panicking even when run
/// in-line (a persistent fault, not a transient one).
///
/// # Examples
///
/// ```
/// use tlbsim_sim::{run_app, run_app_sharded, SimConfig};
/// use tlbsim_workloads::{find_app, Scale};
///
/// let app = find_app("galgel").expect("registered");
/// let config = SimConfig::paper_default();
/// let sharded = run_app_sharded(app, Scale::TINY, &config, 4)?;
/// assert_eq!(sharded.shards.len(), 4);
///
/// // Sharding preserves the exact access and miss totals, and the
/// // merged accuracy tracks the sequential run at figure scale.
/// let sequential = run_app(app, Scale::TINY, &config)?;
/// assert_eq!(sharded.merged.accesses, sequential.accesses);
/// assert!((sharded.merged.accuracy() - sequential.accuracy()).abs() < 0.05);
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
///
/// [`run_app`]: crate::run_app
pub fn run_app_sharded<S: StreamSpec + ?Sized>(
    app: &S,
    scale: Scale,
    config: &SimConfig,
    shards: usize,
) -> Result<ShardedRun, SimError> {
    if shards == 0 {
        return Err(SimError::ZeroShards);
    }
    // Validate the configuration once, up front, so worker threads can
    // assume it is constructible and stay Result-free.
    drop(Engine::new(config)?);

    // Land shard cuts on the stream's preferred seek boundaries (block
    // restarts for v2 traces; 1 — an ordinary even split — otherwise).
    let plan = ShardPlan::split_aligned(app.stream_len(scale), shards, app.seek_alignment());
    let shard_task = |index: usize| -> ShardHarvest {
        let range = plan.ranges()[index];
        let mut engine = Engine::new(config).expect("configuration validated above");
        let mut workload = app.workload(scale);
        let skipped = workload.skip_accesses(range.start);
        debug_assert_eq!(skipped, range.start, "stream shorter than planned");
        engine.run_workload_limit(&mut workload, range.len);
        ShardHarvest {
            stats: engine.stats().clone(),
            pages: engine.touched_pages_snapshot(),
            resident: engine.resident_prefetches(),
            stream_pages: Vec::new(),
        }
    };
    let (harvests, mut health) = run_shards_recovering(shards, shard_task)?;
    health.quarantined_records = app.quarantined_records();
    Ok(fold_shards(harvests, plan.ranges(), health))
}

/// What one shard worker hands back for merging: its counters, the
/// pages it touched, its end-of-slice prefetch-buffer residency, and —
/// for multiprogrammed runs — the per-stream demand page sets backing
/// footprint attribution (empty for single-stream runs).
#[derive(Debug, Clone)]
pub(crate) struct ShardHarvest {
    pub stats: SimStats,
    pub pages: Vec<VirtPage>,
    pub resident: u64,
    pub stream_pages: Vec<Vec<VirtPage>>,
}

/// Folds per-shard harvests — in shard order — into a [`ShardedRun`]:
/// counters merge via [`SimStats::merge`], the footprint is recomputed
/// as the exact union of the shard page sets, non-final residency sums
/// into the boundary-reconciliation counter, and any per-stream page
/// sets union positionally into the merged per-stream footprints
/// (overwriting the summed attributions, for the same count-once reason
/// as the aggregate).
///
/// Shared by [`run_app_sharded`] and the multiprogrammed
/// [`run_mix_sharded`](crate::run_mix_sharded), whose shard boundaries
/// are switch-aligned rather than evenly split — the fold is agnostic to
/// how the ranges were planned.
pub(crate) fn fold_shards(
    harvests: Vec<ShardHarvest>,
    ranges: &[ShardRange],
    health: RunHealth,
) -> ShardedRun {
    let mut merged = SimStats::default();
    let mut union: Vec<VirtPage> = Vec::new();
    let streams = harvests
        .iter()
        .map(|h| h.stream_pages.len())
        .max()
        .unwrap_or(0);
    let mut stream_unions: Vec<Vec<VirtPage>> = vec![Vec::new(); streams];
    let mut outcomes = Vec::with_capacity(harvests.len());
    let mut boundary_resident = 0;
    let last = harvests.len().saturating_sub(1);
    for (index, (harvest, range)) in harvests.into_iter().zip(ranges).enumerate() {
        merged.merge(&harvest.stats);
        union.extend(harvest.pages);
        for (stream, pages) in harvest.stream_pages.into_iter().enumerate() {
            stream_unions[stream].extend(pages);
        }
        if index != last {
            boundary_resident += harvest.resident;
        }
        outcomes.push(ShardOutcome {
            range: *range,
            stats: harvest.stats,
            resident_prefetches: harvest.resident,
        });
    }
    union.sort_unstable();
    union.dedup();
    merged.footprint_pages = union.len() as u64;
    for (stream, mut pages) in stream_unions.into_iter().enumerate() {
        pages.sort_unstable();
        pages.dedup();
        if stream < merged.per_stream.len() {
            merged.per_stream.set_footprint(stream, pages.len() as u64);
        }
    }

    ShardedRun {
        merged,
        shards: outcomes,
        boundary_resident_prefetches: boundary_resident,
        health,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_app;
    use tlbsim_core::PrefetcherConfig;
    use tlbsim_workloads::find_app;

    #[test]
    fn plan_covers_the_stream_exactly_and_contiguously() {
        for total in [0u64, 1, 7, 4096, 99_991] {
            for shards in [1usize, 2, 3, 8, 64] {
                let plan = ShardPlan::split(total, shards);
                assert_eq!(plan.ranges().len(), shards);
                assert_eq!(plan.total(), total);
                let mut expected_start = 0;
                for range in plan.ranges() {
                    assert_eq!(range.start, expected_start, "{total}/{shards} gap");
                    expected_start += range.len;
                }
                assert_eq!(expected_start, total);
                // Even split: lengths differ by at most one.
                let lens: Vec<u64> = plan.ranges().iter().map(|r| r.len).collect();
                let min = *lens.iter().min().unwrap();
                let max = *lens.iter().max().unwrap();
                assert!(max - min <= 1, "{total}/{shards} uneven: {lens:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_plan_panics() {
        let _ = ShardPlan::split(10, 0);
    }

    #[test]
    fn zero_shards_is_a_sim_error() {
        let app = find_app("gap").unwrap();
        let err = run_app_sharded(app, Scale::TINY, &SimConfig::paper_default(), 0).unwrap_err();
        assert!(matches!(err, SimError::ZeroShards));
        assert!(err.to_string().contains("shard"));
    }

    #[test]
    fn invalid_config_is_rejected_before_spawning() {
        let app = find_app("gap").unwrap();
        let bad = SimConfig::paper_default().with_prefetch_buffer(0);
        assert!(matches!(
            run_app_sharded(app, Scale::TINY, &bad, 2),
            Err(SimError::ZeroPrefetchBuffer)
        ));
    }

    #[test]
    fn one_shard_is_bit_identical_to_the_sequential_run() {
        for (name, prefetcher) in [
            ("galgel", PrefetcherConfig::distance()),
            ("mcf", PrefetcherConfig::recency()),
            ("gap", PrefetcherConfig::markov()),
        ] {
            let app = find_app(name).unwrap();
            let config = SimConfig::paper_default().with_prefetcher(prefetcher);
            let sequential = run_app(app, Scale::TINY, &config).unwrap();
            let sharded = run_app_sharded(app, Scale::TINY, &config, 1).unwrap();
            assert_eq!(
                sharded.merged, sequential,
                "{name}: shards=1 must be bit-identical"
            );
            assert_eq!(sharded.boundary_resident_prefetches, 0);
            assert_eq!(sharded.shards.len(), 1);
            assert_eq!(sharded.shards[0].stats, sequential);
        }
    }

    #[test]
    fn sharded_runs_are_deterministic_across_repetitions() {
        // The merge is anchored to the static plan, not to worker
        // completion order: repeated runs (with the OS free to schedule
        // the worker threads differently every time) must agree exactly,
        // shard by shard.
        let app = find_app("galgel").unwrap();
        let config = SimConfig::paper_default();
        let first = run_app_sharded(app, Scale::TINY, &config, 4).unwrap();
        for _ in 0..4 {
            let again = run_app_sharded(app, Scale::TINY, &config, 4).unwrap();
            assert_eq!(again.merged, first.merged);
            assert_eq!(
                again.boundary_resident_prefetches,
                first.boundary_resident_prefetches
            );
            for (a, b) in again.shards.iter().zip(&first.shards) {
                assert_eq!(a.range, b.range);
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.resident_prefetches, b.resident_prefetches);
            }
        }
    }

    #[test]
    fn shards_partition_the_access_stream_exactly() {
        let app = find_app("mcf").unwrap();
        let config = SimConfig::paper_default();
        let total = app.stream_len(Scale::TINY);
        for shards in [2usize, 3, 5] {
            let run = run_app_sharded(app, Scale::TINY, &config, shards).unwrap();
            assert_eq!(run.merged.accesses, total, "{shards} shards lost accesses");
            let per_shard: u64 = run.shards.iter().map(|s| s.stats.accesses).sum();
            assert_eq!(per_shard, total);
            for shard in &run.shards {
                assert_eq!(shard.stats.accesses, shard.range.len);
            }
        }
    }

    #[test]
    fn merged_counters_stay_internally_consistent() {
        let app = find_app("galgel").unwrap();
        let run = run_app_sharded(app, Scale::TINY, &SimConfig::paper_default(), 3).unwrap();
        let m = &run.merged;
        assert_eq!(m.prefetch_buffer_hits + m.demand_walks, m.misses);
        assert!(m.misses <= m.accesses);
        // Footprint is a union, never larger than the sum of the parts
        // and at least as large as the largest part.
        let sum: u64 = run.shards.iter().map(|s| s.stats.footprint_pages).sum();
        let max = run
            .shards
            .iter()
            .map(|s| s.stats.footprint_pages)
            .max()
            .unwrap();
        assert!(m.footprint_pages <= sum);
        assert!(m.footprint_pages >= max);
    }

    #[test]
    fn footprint_union_matches_the_sequential_footprint() {
        // Shards translate the same pages the sequential run does (cold
        // boundaries may add prefetch translations, never remove
        // demand ones), and the union must count each page once.
        let app = find_app("gap").unwrap();
        let config = SimConfig::baseline(); // no prefetcher: page sets are purely demand-driven
        let sequential = run_app(app, Scale::TINY, &config).unwrap();
        let sharded = run_app_sharded(app, Scale::TINY, &config, 4).unwrap();
        assert_eq!(sharded.merged.footprint_pages, sequential.footprint_pages);
    }

    #[test]
    fn boundary_reconciliation_reports_nonfinal_shards_only() {
        let app = find_app("galgel").unwrap();
        let run = run_app_sharded(app, Scale::TINY, &SimConfig::paper_default(), 4).unwrap();
        let nonfinal: u64 = run.shards[..3].iter().map(|s| s.resident_prefetches).sum();
        assert_eq!(run.boundary_resident_prefetches, nonfinal);
        // A DP run on a distance-friendly app keeps predicting at the
        // cut points, so some in-flight state must exist to reconcile.
        assert!(run.boundary_resident_prefetches > 0);
    }

    #[test]
    fn more_shards_than_accesses_plan_to_empty_tails() {
        // Absurd but legal: trailing shards own empty ranges, and a
        // worker handed an empty range simulates nothing.
        let plan = ShardPlan::split(3, 8);
        let lens: Vec<u64> = plan.ranges().iter().map(|r| r.len).collect();
        assert_eq!(lens, [1, 1, 1, 0, 0, 0, 0, 0]);
        assert_eq!(plan.total(), 3);
    }

    #[test]
    fn auto_shard_count_respects_both_clamps() {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Tiny streams never fan out; huge streams use the whole host.
        assert_eq!(auto_shard_count(0), 1);
        assert_eq!(auto_shard_count(AUTO_SHARD_MIN_SLICE - 1), 1);
        assert_eq!(auto_shard_count(u64::MAX), cpus);
        // No auto plan hands a worker less than the minimum slice.
        for len in [1u64, 10_000, 100_000, 10_000_000] {
            let shards = auto_shard_count(len) as u64;
            assert!(shards >= 1);
            if shards > 1 {
                assert!(
                    len / shards >= AUTO_SHARD_MIN_SLICE,
                    "len {len}: {shards} shards"
                );
            }
        }
    }

    #[test]
    fn resolve_shards_treats_zero_as_auto() {
        assert_eq!(resolve_shards(3, u64::MAX), 3);
        assert_eq!(resolve_shards(1, 0), 1);
        assert_eq!(resolve_shards(0, 100_000), auto_shard_count(100_000));
    }

    #[test]
    fn resolve_shards_clamps_literal_requests_to_the_stream() {
        // More shards than accesses planned nothing but empty slices;
        // the resolver now caps the request at the stream length.
        assert_eq!(resolve_shards(64, 10), 10);
        assert_eq!(resolve_shards(10, 10), 10);
        assert_eq!(resolve_shards(9, 10), 9);
        // Degenerate streams still resolve to one (never zero) shard.
        assert_eq!(resolve_shards(64, 0), 1);
        assert_eq!(resolve_shards(usize::MAX, 1), 1);
    }

    #[test]
    fn aligned_split_with_unit_alignment_is_the_plain_split() {
        for total in [0u64, 1, 7, 4096, 99_991] {
            for shards in [1usize, 2, 3, 8, 64] {
                for alignment in [0u64, 1] {
                    assert_eq!(
                        ShardPlan::split_aligned(total, shards, alignment),
                        ShardPlan::split(total, shards),
                        "{total}/{shards}/align {alignment}"
                    );
                }
            }
        }
    }

    #[test]
    fn aligned_split_lands_interior_cuts_on_block_boundaries() {
        for (total, shards, alignment) in [
            (2000u64, 4usize, 100u64),
            (2000, 4, 256),
            (130, 4, 16),
            (99_991, 7, 4096),
            (10, 4, 16), // fewer whole blocks than shards
        ] {
            let plan = ShardPlan::split_aligned(total, shards, alignment);
            assert_eq!(plan.ranges().len(), shards);
            assert_eq!(plan.total(), total, "{total}/{shards}/{alignment}");
            let mut expected_start = 0;
            for (index, range) in plan.ranges().iter().enumerate() {
                assert_eq!(range.start, expected_start, "contiguous");
                assert_eq!(
                    range.start % alignment,
                    0,
                    "{total}/{shards}/{alignment}: shard {index} starts misaligned"
                );
                expected_start += range.len;
            }
            assert_eq!(expected_start, total);
        }
        // When block boundaries coincide with the even split, the plans
        // agree exactly — the anchor of the v1↔v2 sharded differential.
        assert_eq!(
            ShardPlan::split_aligned(2000, 4, 100),
            ShardPlan::split(2000, 4)
        );
    }

    #[test]
    fn clean_runs_report_clean_health() {
        let app = find_app("gap").unwrap();
        let run = run_app_sharded(app, Scale::TINY, &SimConfig::paper_default(), 4).unwrap();
        assert!(run.health.is_clean());
        assert_eq!(run.health.to_string(), "clean");
    }

    mod recovery {
        use super::*;
        use std::sync::Arc;
        use tlbsim_trace::{FaultKind, FaultPlan};
        use tlbsim_workloads::ChaosSpec;

        /// `gap` wrapped in a chaos spec that panics the worker decoding
        /// access 5000, at most `budget` times.
        fn panicky_gap(budget: u64) -> ChaosSpec {
            let app = Arc::new(find_app("gap").unwrap());
            let plan = FaultPlan::new().with(5_000, FaultKind::WorkerPanic);
            ChaosSpec::new(app, plan, budget)
        }

        #[test]
        fn transient_panic_is_retried_and_stats_match_the_clean_run() {
            // One budgeted panic: the first pooled attempt dies, the
            // retry replays the identical slice cleanly.
            let chaos = panicky_gap(1);
            let config = SimConfig::paper_default();
            let run = run_app_sharded(&chaos, Scale::TINY, &config, 1).unwrap();
            assert_eq!(run.health.retries, 1);
            assert_eq!(run.health.degraded_shards, 0);
            assert!(!run.health.is_clean());
            assert_eq!(
                run.health.to_string(),
                "1 retries, 0 degraded shards, 0 quarantined records"
            );

            let clean = run_app(find_app("gap").unwrap(), Scale::TINY, &config).unwrap();
            assert_eq!(run.merged, clean, "recovered stats must be bit-identical");
        }

        #[test]
        fn exhausted_workers_degrade_to_inline_and_still_recover() {
            // Budget = SHARD_ATTEMPTS: every pooled attempt panics, the
            // in-line degraded run finally replays the slice cleanly.
            let chaos = panicky_gap(SHARD_ATTEMPTS as u64);
            let config = SimConfig::paper_default();
            let run = run_app_sharded(&chaos, Scale::TINY, &config, 1).unwrap();
            assert_eq!(run.health.retries, (SHARD_ATTEMPTS - 1) as u64);
            assert_eq!(run.health.degraded_shards, 1);

            let clean = run_app(find_app("gap").unwrap(), Scale::TINY, &config).unwrap();
            assert_eq!(run.merged, clean, "degraded stats must be bit-identical");
        }

        #[test]
        fn persistent_panic_is_a_typed_error() {
            // Budget outlasts every recovery tier: pooled attempts and
            // the in-line run all panic, so the run errors typed.
            let chaos = panicky_gap(SHARD_ATTEMPTS as u64 + 1);
            let err =
                run_app_sharded(&chaos, Scale::TINY, &SimConfig::paper_default(), 1).unwrap_err();
            match &err {
                SimError::ShardPanicked { shard, message } => {
                    assert_eq!(*shard, 0);
                    assert!(message.contains("chaos"), "payload surfaced: {message}");
                }
                other => panic!("expected ShardPanicked, got {other:?}"),
            }
            assert!(err.to_string().contains("panicked persistently"));
        }

        #[test]
        fn recovery_works_under_real_sharding_too() {
            // Four shards; the fault lives in whichever shard decodes
            // access 5000. One budget unit → one retry somewhere, and
            // the merged result matches an undisturbed 4-shard run.
            let chaos = panicky_gap(1);
            let config = SimConfig::paper_default();
            let run = run_app_sharded(&chaos, Scale::TINY, &config, 4).unwrap();
            assert_eq!(run.health.retries, 1);
            assert_eq!(run.health.degraded_shards, 0);

            let clean = run_app_sharded(find_app("gap").unwrap(), Scale::TINY, &config, 4).unwrap();
            assert_eq!(run.merged, clean.merged);
            assert!(clean.health.is_clean());
        }

        #[test]
        fn wild_vaddrs_complete_the_run_without_panicking() {
            // Out-of-range virtual addresses are absorbed, not fatal:
            // page arithmetic is total over u64.
            let app = Arc::new(find_app("gap").unwrap());
            let plan = FaultPlan::seeded(7, 10_000, &[(FaultKind::WildVaddr, 25)]);
            let chaos = ChaosSpec::new(app, plan, 0);
            let run = run_app_sharded(&chaos, Scale::TINY, &SimConfig::paper_default(), 3).unwrap();
            assert!(run.health.is_clean());
            assert_eq!(run.merged.accesses, chaos.stream_len(Scale::TINY));
        }
    }

    #[test]
    fn sharded_accuracy_tracks_sequential_accuracy() {
        // Boundary cold-start effects must stay small relative to the
        // stream: the merged accuracy may differ from sequential, but
        // only by a few percent at test scale.
        let app = find_app("galgel").unwrap();
        let config = SimConfig::paper_default();
        let sequential = run_app(app, Scale::TINY, &config).unwrap();
        let sharded = run_app_sharded(app, Scale::TINY, &config, 4).unwrap();
        assert_eq!(sharded.merged.accesses, sequential.accesses);
        assert!(
            (sharded.merged.accuracy() - sequential.accuracy()).abs() < 0.05,
            "sharded accuracy {} drifted from sequential {}",
            sharded.merged.accuracy(),
            sequential.accuracy()
        );
    }
}
