//! The cycle-accounting simulation engine (the paper's Table 3 model).
//!
//! Reproduces the paper's deliberately RP-favouring timing experiment
//! (§3.2):
//!
//! * prefetch-related memory traffic contends only with itself, on a
//!   single serialized channel ([`tlbsim_mem::PrefetchChannel`]);
//! * a TLB miss that finds its translation already in the prefetch
//!   buffer costs nothing; one whose prefetch "has already been issued …
//!   is made to stall until the entry arrives";
//! * an uncovered miss pays the constant 100-cycle penalty;
//! * mechanisms that keep state in memory (RP) must complete their
//!   pointer updates before the CPU proceeds past the miss, and when the
//!   channel is still busy at the next miss they *skip* that miss's
//!   prefetches ("there would be only 4 memory transactions instead of
//!   6").

use tlbsim_core::{CandidateBuf, MemoryAccess, MissContext, StateLocation, TlbPrefetcher};
use tlbsim_mem::{PrefetchChannel, TimingParams};
use tlbsim_mmu::{PageTable, PrefetchBuffer, Tlb};

use crate::batch::drive_stream;
use crate::config::{SimConfig, SimError};
use crate::stats::TimingStats;

/// A cycle-accounting TLB-prefetching simulator.
///
/// # Examples
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_mem::TimingParams;
/// use tlbsim_sim::{SimConfig, TimingEngine};
///
/// let mut none = TimingEngine::new(&SimConfig::baseline(), TimingParams::paper_default())?;
/// let mut dp = TimingEngine::new(&SimConfig::paper_default(), TimingParams::paper_default())?;
/// let stream: Vec<MemoryAccess> =
///     (0..40_000u64).map(|i| MemoryAccess::read(0x40, i / 4 * 4096)).collect();
/// none.run(stream.iter().copied());
/// dp.run(stream.iter().copied());
/// let normalized = dp.stats().normalized_against(none.stats());
/// assert!(normalized < 1.0); // prefetching saves cycles here
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub struct TimingEngine {
    tlb: Tlb,
    buffer: PrefetchBuffer,
    prefetcher: Box<dyn TlbPrefetcher>,
    page_table: PageTable,
    config: SimConfig,
    params: TimingParams,
    channel: PrefetchChannel,
    /// Completion cycle of the most recent maintenance batch.
    maintenance_done: u64,
    /// Whether the mechanism's state lives in memory (RP), forcing the
    /// CPU to serialise on maintenance completion.
    maintenance_blocking: bool,
    now: f64,
    stats: TimingStats,
    sink: CandidateBuf,
    batch: Vec<MemoryAccess>,
}

impl TimingEngine {
    /// Builds a timing engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid.
    pub fn new(config: &SimConfig, params: TimingParams) -> Result<Self, SimError> {
        if config.prefetch_buffer_entries == 0 {
            return Err(SimError::ZeroPrefetchBuffer);
        }
        let prefetcher = config.prefetcher.build()?;
        let maintenance_blocking = prefetcher.profile().location == StateLocation::InMemory;
        Ok(TimingEngine {
            tlb: Tlb::new(config.tlb)?,
            buffer: PrefetchBuffer::new(config.prefetch_buffer_entries)?,
            prefetcher,
            page_table: PageTable::new(),
            config: config.clone(),
            channel: PrefetchChannel::new(params.memory_op_cost),
            params,
            maintenance_done: 0,
            maintenance_blocking,
            now: 0.0,
            stats: TimingStats::default(),
            sink: CandidateBuf::new(),
            batch: Vec::new(),
        })
    }

    /// Simulates one data reference.
    pub fn access(&mut self, access: &MemoryAccess) {
        self.stats.accesses += 1;
        self.now += self.params.cycles_per_access();
        let now_ticks = self.now as u64;

        // Completed prefetch fetches land in the buffer.
        let buffer = &mut self.buffer;
        let page_table = &mut self.page_table;
        self.channel.drain_arrived(now_ticks, |page| {
            let frame = page_table.translate(page);
            buffer.insert(page, frame);
        });

        let page = self.config.page_size.page_of(access.vaddr);
        if self.tlb.lookup(page).is_some() {
            return;
        }
        self.stats.misses += 1;

        // In-memory prediction state (RP) must be consistent before the
        // miss can be handled: wait out pending pointer updates.
        // Back-to-back misses coalesce their stack updates rather than
        // queueing them, so the CPU only drains the transaction already
        // on the bus — modelled as the expected remaining service time
        // of one memory operation (half an op).
        if self.maintenance_blocking && self.maintenance_done as f64 > self.now {
            let wait = (self.maintenance_done as f64 - self.now)
                .min(self.params.memory_op_cost as f64 / 2.0);
            self.stats.stall_maintenance += wait;
            self.now += wait;
        }

        let channel_busy_at_miss = self.channel.is_busy(self.now as u64);

        let (frame, pb_hit) = if let Some(frame) = self.buffer.promote(page) {
            self.stats.covered_hits += 1;
            (frame, true)
        } else if let Some(done) = self.channel.pending_completion(page) {
            // Issued but still in flight: stall until it arrives — but
            // never longer than the demand walk the miss handler can
            // race against it, which bounds the loss at the ordinary
            // miss penalty.
            let wait = (done as f64 - self.now)
                .max(0.0)
                .min(self.params.tlb_miss_penalty as f64);
            self.stats.stall_inflight += wait;
            self.stats.inflight_hits += 1;
            self.now += wait;
            self.channel.consume(page);
            (self.page_table.translate(page), true)
        } else {
            self.stats.demand_misses += 1;
            self.stats.stall_demand += self.params.tlb_miss_penalty as f64;
            self.now += self.params.tlb_miss_penalty as f64;
            (self.page_table.translate(page), false)
        };
        let fill = self.tlb.fill(page, frame);

        let ctx = MissContext {
            page,
            pc: access.pc,
            prefetch_buffer_hit: pb_hit,
            evicted_tlb_entry: fill.evicted,
        };
        self.sink.clear();
        self.prefetcher.on_miss(&ctx, &mut self.sink);

        let now_ticks = self.now as u64;
        let maintenance_ops = self.sink.maintenance_ops();
        if maintenance_ops > 0 {
            self.maintenance_done = self.channel.issue_maintenance(now_ticks, maintenance_ops);
            self.stats.channel_maintenance += u64::from(maintenance_ops);
        }

        // The paper's RP fallback: if earlier prefetch traffic is still
        // outstanding when the miss occurs, only the stack update happens
        // and the prefetches are skipped.
        if self.maintenance_blocking && channel_busy_at_miss {
            self.stats.prefetches_skipped_busy += self.sink.len() as u64;
            return;
        }

        for i in 0..self.sink.len() {
            let candidate = self.sink.pages()[i];
            if candidate == page
                || self.tlb.contains(candidate)
                || self.buffer.contains(candidate)
                || self.channel.pending_completion(candidate).is_some()
            {
                continue;
            }
            // Bound outstanding fetches by the buffer capacity: a longer
            // queue could never be useful before eviction.
            if self.channel.in_flight_count() >= self.buffer.capacity() {
                self.stats.prefetches_dropped_backlog += 1;
                continue;
            }
            self.channel.issue_fetch(now_ticks, candidate);
            self.stats.channel_fetches += 1;
        }
    }

    /// Simulates a batch of references.
    pub fn access_batch(&mut self, batch: &[MemoryAccess]) {
        for access in batch {
            self.access(access);
        }
    }

    /// Simulates an entire stream and returns the final statistics.
    ///
    /// The stream is chunked through a reusable internal batch buffer,
    /// matching the functional engine's streaming shape.
    pub fn run(&mut self, stream: impl IntoIterator<Item = MemoryAccess>) -> &TimingStats {
        let mut batch = std::mem::take(&mut self.batch);
        drive_stream(stream, &mut batch, |chunk| self.access_batch(chunk));
        self.batch = batch;
        self.stats.cycles = self.now;
        &self.stats
    }

    /// Statistics so far ([`TimingStats::cycles`] is set by
    /// [`TimingEngine::run`]).
    pub fn stats(&self) -> &TimingStats {
        &self.stats
    }

    /// The mechanism under test.
    pub fn prefetcher_name(&self) -> &'static str {
        self.prefetcher.name()
    }
}

impl std::fmt::Debug for TimingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingEngine")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_core::PrefetcherConfig;

    fn stream(pages: u64, refs: u64) -> Vec<MemoryAccess> {
        (0..pages * refs)
            .map(|i| MemoryAccess::read(0x40, i / refs * 4096))
            .collect()
    }

    fn run(cfg: &SimConfig, s: &[MemoryAccess]) -> TimingStats {
        let mut e = TimingEngine::new(cfg, TimingParams::paper_default()).unwrap();
        e.run(s.iter().copied());
        *e.stats()
    }

    #[test]
    fn baseline_cycles_are_base_plus_penalties() {
        let s = stream(1000, 4);
        let t = run(&SimConfig::baseline(), &s);
        let expected = TimingParams::paper_default().base_cycles(4000) + 1000.0 * 100.0;
        assert!(
            (t.cycles - expected).abs() < 1.0,
            "{} vs {expected}",
            t.cycles
        );
        assert_eq!(t.demand_misses, 1000);
    }

    #[test]
    fn covered_misses_save_cycles() {
        let s = stream(5000, 8);
        let base = run(&SimConfig::baseline(), &s);
        let dp = run(&SimConfig::paper_default(), &s);
        assert!(dp.cycles < base.cycles);
        assert!(dp.covered_hits + dp.inflight_hits > 4000);
    }

    #[test]
    fn tight_misses_wait_for_inflight_prefetches() {
        // refs=1: misses every ~3 cycles but fetches take 50: coverage is
        // mostly via in-flight waits, which still save most of the
        // 100-cycle penalty.
        let s = stream(5000, 1);
        let dp = run(&SimConfig::paper_default(), &s);
        assert!(dp.inflight_hits > 0);
        assert!(dp.stall_inflight > 0.0);
        let base = run(&SimConfig::baseline(), &s);
        assert!(dp.cycles < base.cycles);
    }

    #[test]
    fn recency_pays_maintenance_stalls_under_bursty_misses() {
        // A 300-page loop misses on every visit (TLB holds 128); pages
        // re-miss lap after lap, so RP has stack neighbours to prefetch
        // but its pointer updates congest the channel at refs = 1.
        let s: Vec<MemoryAccess> = (0..15_000u64)
            .map(|i| MemoryAccess::read(0x40, (i % 300) * 4096))
            .collect();
        let rp = run(
            &SimConfig::paper_default().with_prefetcher(PrefetcherConfig::recency()),
            &s,
        );
        assert!(rp.channel_maintenance > 0);
        assert!(rp.stall_maintenance > 0.0);
        assert!(rp.prefetches_skipped_busy > 0);
    }

    #[test]
    fn distance_never_stalls_on_maintenance() {
        let s = stream(3000, 1);
        let dp = run(&SimConfig::paper_default(), &s);
        assert_eq!(dp.stall_maintenance, 0.0);
        assert_eq!(dp.channel_maintenance, 0);
    }

    #[test]
    fn backlog_is_bounded_by_buffer_capacity() {
        let s = stream(5000, 1);
        let dp = run(&SimConfig::paper_default(), &s);
        // The drop counter may or may not fire depending on timing, but
        // in-flight fetches can never exceed the buffer size; indirectly
        // validated by issued fetches being well below 2-per-miss.
        assert!(dp.channel_fetches < 2 * dp.misses);
    }

    #[test]
    fn accesses_and_misses_match_functional_engine() {
        let s = stream(2000, 3);
        let t = run(&SimConfig::paper_default(), &s);
        let mut f = crate::Engine::new(&SimConfig::paper_default()).unwrap();
        f.run(s.iter().copied());
        assert_eq!(t.accesses, f.stats().accesses);
        assert_eq!(t.misses, f.stats().misses);
    }
}
