//! The shared batched access loop and miss-path core.
//!
//! All four engines used to duplicate the same inner loop — look the
//! page up in the TLB, and on a miss promote-or-walk the translation,
//! call the prefetcher, and install its candidates — each with its own
//! per-miss `Vec` handling. This module centralises the two halves the
//! engines share:
//!
//! * [`PrefetchCore`] — the prefetch buffer, the mechanism under test,
//!   the page table and the **one** [`CandidateBuf`] sink the engine
//!   ever allocates. Its [`observe_and_install`] method runs the
//!   mechanism on a miss and installs the surviving candidates without
//!   touching the heap.
//! * [`drive_stream`] — chunks any access iterator through a reusable
//!   batch buffer so engines process `&[MemoryAccess]` slices (the
//!   TLB-hit fast path then runs as a tight loop over each slice).
//!
//! [`observe_and_install`]: PrefetchCore::observe_and_install

use tlbsim_core::{
    Asid, CandidateBuf, MemoryAccess, MissContext, PhysPage, TlbPrefetcher, VirtPage,
};
use tlbsim_mmu::{PageTable, PrefetchBuffer};

use crate::config::{SimConfig, SimError};

/// Accesses processed per batch. Large enough to amortise the loop
/// bookkeeping, small enough (96 KiB of `MemoryAccess`) to stay cache
/// resident per worker.
pub(crate) const ACCESS_BATCH: usize = 4096;

/// Streams `stream` through `scratch` in [`ACCESS_BATCH`]-sized chunks,
/// invoking `process` once per chunk. `scratch` is only grown once; its
/// allocation is reused across calls when the caller retains it.
///
/// The chunk copy is the cost of the uniform `&[MemoryAccess]`
/// streaming contract. Only the functional `Engine` hoists work out of
/// its batch loop today; the timing/hierarchy/cache engines do heavy
/// per-access work that dwarfs the copy, and sharing the shape keeps
/// all four drivable by the same batch producers (`fill_batch`, the
/// sweep runner).
pub(crate) fn drive_stream<I, F>(stream: I, scratch: &mut Vec<MemoryAccess>, mut process: F)
where
    I: IntoIterator<Item = MemoryAccess>,
    F: FnMut(&[MemoryAccess]),
{
    let mut iter = stream.into_iter();
    loop {
        scratch.clear();
        scratch.extend(iter.by_ref().take(ACCESS_BATCH));
        if scratch.is_empty() {
            break;
        }
        process(scratch);
    }
}

/// What [`PrefetchCore::observe_and_install`] did for one miss.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PrefetchOutcome {
    /// Candidates fetched into the prefetch buffer.
    pub issued: u64,
    /// Candidates dropped by the residency/self filter.
    pub filtered: u64,
    /// Buffered-but-unused entries displaced by the inserts.
    pub evicted_unused: u64,
    /// State-maintenance memory operations the mechanism reported.
    pub maintenance_ops: u32,
}

/// The engine-shared miss path: prefetch buffer + mechanism + page table
/// + the single reusable candidate sink.
pub(crate) struct PrefetchCore {
    pub buffer: PrefetchBuffer,
    pub prefetcher: Box<dyn TlbPrefetcher>,
    pub page_table: PageTable,
    sink: CandidateBuf,
}

impl PrefetchCore {
    /// Builds the miss path from a configuration.
    ///
    /// A zero-entry prefetch buffer is a configuration error
    /// ([`SimError::ZeroPrefetchBuffer`]), not a silently resized one.
    pub fn new(config: &SimConfig) -> Result<Self, SimError> {
        if config.prefetch_buffer_entries == 0 {
            return Err(SimError::ZeroPrefetchBuffer);
        }
        Ok(PrefetchCore {
            buffer: PrefetchBuffer::new(config.prefetch_buffer_entries)?,
            prefetcher: config.prefetcher.build()?,
            page_table: PageTable::new(),
            sink: CandidateBuf::new(),
        })
    }

    /// Promote-or-walk: returns the translation for `page` and whether
    /// it came from the prefetch buffer.
    pub fn translate(&mut self, page: VirtPage) -> (PhysPage, bool) {
        match self.buffer.promote(page) {
            Some(frame) => (frame, true),
            None => (self.page_table.translate(page), false),
        }
    }

    /// Runs the mechanism on `ctx` and installs the surviving candidates
    /// into the prefetch buffer — the allocation-free tail of the miss
    /// path.
    ///
    /// A candidate is filtered out when it equals the missing page, or —
    /// if `filter_resident` — when it is already buffered or
    /// `extra_resident` reports it resident elsewhere (the engines pass
    /// their TLB lookup here; the hierarchy engine, which never filters
    /// on TLB residency, passes a constant `false`).
    pub fn observe_and_install(
        &mut self,
        ctx: &MissContext,
        filter_resident: bool,
        extra_resident: impl Fn(VirtPage) -> bool,
    ) -> PrefetchOutcome {
        self.sink.clear();
        self.prefetcher.on_miss(ctx, &mut self.sink);
        debug_assert_eq!(
            self.sink.overflowed(),
            0,
            "a mechanism overflowed the candidate sink"
        );

        let mut outcome = PrefetchOutcome {
            maintenance_ops: self.sink.maintenance_ops(),
            ..PrefetchOutcome::default()
        };
        for i in 0..self.sink.len() {
            let candidate = self.sink.pages()[i];
            if candidate == ctx.page
                || (filter_resident
                    && (self.buffer.contains(candidate) || extra_resident(candidate)))
            {
                outcome.filtered += 1;
                continue;
            }
            let frame = self.page_table.translate(candidate);
            if self.buffer.insert(candidate, frame).is_some() {
                outcome.evicted_unused += 1;
            }
            outcome.issued += 1;
        }
        outcome
    }

    /// Flushes the buffer and the mechanism's learned state (context
    /// switch). The page table is left intact — translations survive a
    /// context switch; use [`reset`](Self::reset) for full recycling.
    pub fn flush(&mut self) {
        self.buffer.flush();
        self.prefetcher.flush();
    }

    /// Retags the miss path to `asid` — the flush-free context switch.
    /// The buffer's subsequent fills and the mechanism's tagged rows and
    /// banked registers move to the new context; the page table is
    /// shared across contexts (it is the global translation oracle, and
    /// keeping it untagged is what makes footprints comparable between
    /// flush and ASID switching).
    pub fn set_asid(&mut self, asid: Asid) {
        self.buffer.set_asid(asid);
        self.prefetcher.set_asid(asid);
    }

    /// Drops every buffered entry, tagged row and banked register
    /// belonging to `asid` — the targeted analogue of
    /// [`flush`](Self::flush), used when an ASID slot is recycled. When
    /// the evicted context is the only one that ever ran, this is
    /// exactly a flush (no waste counters move in either path).
    pub fn evict_asid(&mut self, asid: Asid) {
        self.buffer.evict_asid(asid);
        self.prefetcher.evict_asid(asid);
    }

    /// Returns the core to its just-built state so an engine can be
    /// reused for a fresh run: flushes everything and replaces the page
    /// table (frame numbering restarts, making a recycled run
    /// bit-identical to a fresh one).
    pub fn reset(&mut self) {
        self.buffer.flush();
        self.prefetcher.flush();
        self.page_table = PageTable::new();
    }
}

impl std::fmt::Debug for PrefetchCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchCore")
            .field("buffer_capacity", &self.buffer.capacity())
            .field("prefetcher", &self.prefetcher.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_core::{MissContext, Pc};

    #[test]
    fn drive_stream_covers_every_access_in_order() {
        let accesses: Vec<MemoryAccess> = (0..ACCESS_BATCH as u64 * 2 + 37)
            .map(|i| MemoryAccess::read(i, i * 4096))
            .collect();
        let mut scratch = Vec::new();
        let mut seen = Vec::new();
        let mut chunks = 0;
        drive_stream(accesses.iter().copied(), &mut scratch, |chunk| {
            chunks += 1;
            seen.extend_from_slice(chunk);
        });
        assert_eq!(seen, accesses);
        assert_eq!(chunks, 3);
        assert!(scratch.capacity() >= ACCESS_BATCH);
    }

    #[test]
    fn drive_stream_handles_empty_streams() {
        let mut scratch = Vec::new();
        drive_stream(std::iter::empty(), &mut scratch, |_| {
            panic!("no chunk should be produced")
        });
    }

    #[test]
    fn zero_buffer_is_a_config_error() {
        let config = SimConfig::paper_default().with_prefetch_buffer(0);
        assert!(matches!(
            PrefetchCore::new(&config),
            Err(SimError::ZeroPrefetchBuffer)
        ));
    }

    #[test]
    fn observe_and_install_filters_the_missing_page() {
        let mut core = PrefetchCore::new(&SimConfig::paper_default()).unwrap();
        // Sequential-style warm-up so DP predicts page+1 == the page we
        // then mark "missing".
        for page in [10u64, 11, 12] {
            let ctx = MissContext::demand(VirtPage::new(page), Pc::new(0));
            core.observe_and_install(&ctx, true, |_| false);
        }
        let ctx = MissContext::demand(VirtPage::new(13), Pc::new(0));
        let outcome = core.observe_and_install(&ctx, true, |_| false);
        assert_eq!(outcome.issued, 1);
        assert!(core.buffer.contains(VirtPage::new(14)));
    }

    #[test]
    fn reset_restores_fresh_frame_numbering() {
        let mut core = PrefetchCore::new(&SimConfig::paper_default()).unwrap();
        let first = core.translate(VirtPage::new(7)).0;
        core.reset();
        assert_eq!(core.translate(VirtPage::new(99)).0, first);
    }
}
