//! Experiment runners: single runs, scheme comparisons, and a parallel
//! sweep executor for the figure-scale parameter grids.

use crossbeam::channel;
use parking_lot::Mutex;
use tlbsim_core::PrefetcherConfig;
use tlbsim_mem::TimingParams;
use tlbsim_workloads::{AppSpec, Scale};

use crate::config::{SimConfig, SimError};
use crate::engine::Engine;
use crate::stats::{SimStats, TimingStats};
use crate::timing_engine::TimingEngine;

/// Runs one application through the functional engine.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is invalid.
pub fn run_app(app: &AppSpec, scale: Scale, config: &SimConfig) -> Result<SimStats, SimError> {
    let mut engine = Engine::new(config)?;
    engine.run(app.workload(scale));
    Ok(*engine.stats())
}

/// Runs one application through the timing engine.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is invalid.
pub fn run_app_timed(
    app: &AppSpec,
    scale: Scale,
    config: &SimConfig,
    params: TimingParams,
) -> Result<TimingStats, SimError> {
    let mut engine = TimingEngine::new(config, params)?;
    engine.run(app.workload(scale));
    Ok(*engine.stats())
}

/// Runs one application under every given prefetcher, returning
/// `(label, stats)` pairs.
///
/// # Errors
///
/// Returns [`SimError`] on the first invalid configuration.
pub fn compare_schemes(
    app: &AppSpec,
    scale: Scale,
    base: &SimConfig,
    prefetchers: &[PrefetcherConfig],
) -> Result<Vec<(String, SimStats)>, SimError> {
    prefetchers
        .iter()
        .map(|p| {
            let cfg = base.clone().with_prefetcher(p.clone());
            Ok((p.label(), run_app(app, scale, &cfg)?))
        })
        .collect()
}

/// One unit of work for the parallel sweep: an application at a scale
/// under a configuration, identified by `tag`.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Identifier carried into the result (e.g. `"galgel/DP,256,D"`).
    pub tag: String,
    /// Application to simulate.
    pub app: &'static AppSpec,
    /// Run length.
    pub scale: Scale,
    /// Full simulation configuration.
    pub config: SimConfig,
}

/// The outcome of one sweep job.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The job's identifier.
    pub tag: String,
    /// Application name.
    pub app: &'static str,
    /// Functional statistics (accuracy, miss rate, traffic).
    pub stats: SimStats,
}

/// Executes jobs across all available cores and returns results in the
/// submission order.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered; remaining jobs still run.
pub fn sweep(jobs: Vec<SweepJob>) -> Result<Vec<SweepResult>, SimError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len());

    let (tx, rx) = channel::unbounded::<(usize, SweepJob)>();
    for (i, job) in jobs.into_iter().enumerate() {
        tx.send((i, job)).expect("queue is open");
    }
    drop(tx);

    let slots: Mutex<Vec<Option<Result<SweepResult, SimError>>>> = Mutex::new(Vec::new());
    {
        let mut guard = slots.lock();
        guard.resize_with(rx.len(), || None);
    }

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let slots = &slots;
            scope.spawn(move || {
                while let Ok((index, job)) = rx.recv() {
                    let outcome = run_app(job.app, job.scale, &job.config).map(|stats| {
                        SweepResult {
                            tag: job.tag,
                            app: job.app.name,
                            stats,
                        }
                    });
                    slots.lock()[index] = Some(outcome);
                }
            });
        }
    });

    let collected = slots.into_inner();
    let mut results = Vec::with_capacity(collected.len());
    for slot in collected {
        results.push(slot.expect("every job ran")?);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_workloads::find_app;

    #[test]
    fn run_app_produces_stats() {
        let app = find_app("gap").unwrap();
        let stats = run_app(app, Scale::TINY, &SimConfig::paper_default()).unwrap();
        assert!(stats.accesses > 0);
        assert!(stats.misses > 0);
    }

    #[test]
    fn compare_schemes_labels_results() {
        let app = find_app("gap").unwrap();
        let results = compare_schemes(
            app,
            Scale::TINY,
            &SimConfig::paper_default(),
            &[PrefetcherConfig::distance(), PrefetcherConfig::recency()],
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].0.starts_with("DP"));
        assert_eq!(results[1].0, "RP");
    }

    #[test]
    fn sweep_preserves_submission_order_and_matches_serial_runs() {
        let apps = ["gap", "facerec", "eon"];
        let jobs: Vec<SweepJob> = apps
            .iter()
            .map(|name| SweepJob {
                tag: format!("{name}/DP"),
                app: find_app(name).unwrap(),
                scale: Scale::TINY,
                config: SimConfig::paper_default(),
            })
            .collect();
        let results = sweep(jobs).unwrap();
        assert_eq!(results.len(), 3);
        for (result, name) in results.iter().zip(apps) {
            assert_eq!(result.app, name);
            let serial =
                run_app(find_app(name).unwrap(), Scale::TINY, &SimConfig::paper_default())
                    .unwrap();
            assert_eq!(result.stats, serial, "parallel result differs for {name}");
        }
    }

    #[test]
    fn empty_sweep_is_ok() {
        assert!(sweep(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn timed_run_produces_cycles() {
        let app = find_app("gap").unwrap();
        let t = run_app_timed(
            app,
            Scale::TINY,
            &SimConfig::paper_default(),
            TimingParams::paper_default(),
        )
        .unwrap();
        assert!(t.cycles > 0.0);
    }
}
