//! Experiment runners: single runs, scheme comparisons, and a parallel
//! sweep executor for the figure-scale parameter grids.
//!
//! The sweep executor is allocation-conscious: each worker thread owns
//! one [`Engine`] and one access-batch buffer for its whole lifetime and
//! recycles them from job to job (see [`Engine::try_recycle`]), so a
//! figure-scale grid of hundreds of jobs performs a handful of large
//! allocations per worker rather than a handful per job.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use tlbsim_core::PrefetcherConfig;
use tlbsim_mem::TimingParams;
use tlbsim_workloads::{Scale, StreamSpec};

use crate::config::{SimConfig, SimError};
use crate::engine::Engine;
use crate::stats::{SimStats, TimingStats};
use crate::timing_engine::TimingEngine;

/// Runs one reference stream — a registered application model or a
/// recorded trace — through the functional engine.
///
/// Generic over [`StreamSpec`], so `run_app(find_app("galgel")…)` and
/// `run_app(&TraceWorkload::open("galgel.tlbt")?…)` are the same call.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is invalid.
///
/// # Examples
///
/// ```
/// use tlbsim_sim::{run_app, SimConfig};
/// use tlbsim_workloads::{find_app, Scale};
///
/// // galgel is the paper's distance-prefetching showcase: DP at the
/// // representative configuration predicts nearly every miss.
/// let app = find_app("galgel").expect("registered");
/// let stats = run_app(app, Scale::TINY, &SimConfig::paper_default())?;
/// assert!(stats.misses > 0);
/// assert!(stats.accuracy() > 0.8);
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub fn run_app<S: StreamSpec + ?Sized>(
    app: &S,
    scale: Scale,
    config: &SimConfig,
) -> Result<SimStats, SimError> {
    let mut engine = Engine::new(config)?;
    engine.run_workload(&mut app.workload(scale));
    Ok(engine.stats().clone())
}

/// Runs one reference stream like [`run_app`], publishing cumulative
/// statistics to `observer` at a fixed checkpoint cadence.
///
/// The stream is driven through **one** engine in chunks of `every`
/// accesses (`Engine::run_workload_limit`), and after each chunk the
/// observer receives `(accesses_done, &cumulative_stats)` — the
/// engine's live counters, not a delta. Chunked driving is bit-identical
/// to a single `run_workload` call (pinned by the engine tests), so the
/// returned final statistics are **bit-identical to [`run_app`]** — the
/// contract the serving layer's incremental snapshots rest on: the last
/// checkpoint *is* the batch result.
///
/// `every == 0` disables checkpointing entirely (no observer calls); an
/// observer returning [`ControlFlow::Break`](std::ops::ControlFlow::Break)
/// stops the run at that
/// checkpoint boundary, and the partial cumulative statistics are
/// returned (the cancellation path of the serving layer).
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is invalid.
///
/// # Examples
///
/// ```
/// use std::ops::ControlFlow;
/// use tlbsim_sim::{run_app, run_app_checkpointed, SimConfig};
/// use tlbsim_workloads::{find_app, Scale};
///
/// let app = find_app("gap").expect("registered");
/// let config = SimConfig::paper_default();
/// let mut checkpoints = 0u64;
/// let stats = run_app_checkpointed(app, Scale::TINY, &config, 5000, |done, cum| {
///     checkpoints += 1;
///     assert_eq!(cum.accesses, done);
///     ControlFlow::Continue(())
/// })?;
/// assert!(checkpoints > 0);
/// // The final checkpointed result is the batch result, bit for bit.
/// assert_eq!(stats, run_app(app, Scale::TINY, &config)?);
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub fn run_app_checkpointed<S, F>(
    app: &S,
    scale: Scale,
    config: &SimConfig,
    every: u64,
    mut observer: F,
) -> Result<SimStats, SimError>
where
    S: StreamSpec + ?Sized,
    F: FnMut(u64, &SimStats) -> std::ops::ControlFlow<()>,
{
    let mut engine = Engine::new(config)?;
    let mut workload = app.workload(scale);
    if every == 0 {
        engine.run_workload(&mut workload);
        return Ok(engine.stats().clone());
    }
    let total = app.stream_len(scale);
    let mut done = 0u64;
    while done < total {
        let chunk = every.min(total - done);
        engine.run_workload_limit(&mut workload, chunk);
        done += chunk;
        if observer(done, engine.stats()).is_break() {
            break;
        }
    }
    Ok(engine.stats().clone())
}

/// Runs one reference stream through the timing engine.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is invalid.
pub fn run_app_timed<S: StreamSpec + ?Sized>(
    app: &S,
    scale: Scale,
    config: &SimConfig,
    params: TimingParams,
) -> Result<TimingStats, SimError> {
    let mut engine = TimingEngine::new(config, params)?;
    engine.run(app.workload(scale));
    Ok(*engine.stats())
}

/// Runs one reference stream under every given prefetcher, returning
/// `(label, stats)` pairs.
///
/// # Errors
///
/// Returns [`SimError`] on the first invalid configuration.
pub fn compare_schemes<S: StreamSpec + ?Sized>(
    app: &S,
    scale: Scale,
    base: &SimConfig,
    prefetchers: &[PrefetcherConfig],
) -> Result<Vec<(String, SimStats)>, SimError> {
    prefetchers
        .iter()
        .map(|p| {
            let cfg = base.clone().with_prefetcher(p.clone());
            Ok((p.label(), run_app(app, scale, &cfg)?))
        })
        .collect()
}

/// Shared handle to the stream a sweep job simulates.
///
/// `Arc::new(app)` wraps a registered `&'static AppSpec`; an
/// `Arc::new(trace_workload)` replays a recorded trace — the executor
/// treats both identically (and many jobs can share one trace's
/// mapping through clones of the same `Arc`).
pub type SweepSpec = Arc<dyn StreamSpec>;

/// One unit of work for the parallel sweep: a reference stream at a
/// scale under a configuration, identified by `tag`.
#[derive(Clone)]
pub struct SweepJob {
    /// Identifier carried into the result (e.g. `"galgel/DP,256,D"`).
    pub tag: String,
    /// Stream to simulate (application model or recorded trace).
    pub spec: SweepSpec,
    /// Run length (ignored by fixed-length trace specs).
    pub scale: Scale,
    /// Full simulation configuration.
    pub config: SimConfig,
}

impl std::fmt::Debug for SweepJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJob")
            .field("tag", &self.tag)
            .field("spec", &self.spec.name())
            .field("scale", &self.scale)
            .field("config", &self.config)
            .finish()
    }
}

/// The outcome of one sweep job.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The job's identifier.
    pub tag: String,
    /// Name of the simulated stream.
    pub app: String,
    /// Functional statistics (accuracy, miss rate, traffic).
    pub stats: SimStats,
}

/// Per-worker reusable simulation state: one engine (which owns its
/// streaming batch buffer) recycled across every job the worker
/// executes.
struct WorkerScratch {
    engine: Option<Engine>,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch { engine: None }
    }

    /// Runs one job, reusing the engine from the previous job when its
    /// configuration allows (identical results to a fresh engine —
    /// asserted by the runner tests).
    fn run(&mut self, job: &SweepJob) -> Result<SimStats, SimError> {
        let recycled = self
            .engine
            .as_mut()
            .is_some_and(|engine| engine.try_recycle(&job.config));
        let engine = if recycled {
            self.engine.as_mut().expect("recycled engine present")
        } else {
            self.engine.insert(Engine::new(&job.config)?)
        };
        Ok(engine
            .run_workload(&mut job.spec.workload(job.scale))
            .clone())
    }
}

/// Executes jobs across all available cores and returns results in the
/// submission order.
///
/// This is *job-level* parallelism — the right tool when a figure-scale
/// grid has more jobs than cores. To spread one large run across the
/// machine instead, see [`run_app_sharded`](crate::run_app_sharded).
///
/// # Errors
///
/// Returns the first [`SimError`] encountered; remaining jobs still run.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tlbsim_sim::{sweep, SimConfig, SweepJob};
/// use tlbsim_workloads::{find_app, Scale};
///
/// let jobs: Vec<SweepJob> = ["gap", "eon"]
///     .iter()
///     .map(|name| SweepJob {
///         tag: format!("{name}/DP"),
///         spec: Arc::new(find_app(name).expect("registered")),
///         scale: Scale::TINY,
///         config: SimConfig::paper_default(),
///     })
///     .collect();
/// let results = sweep(jobs)?;
/// // Results come back in submission order, whatever the scheduling.
/// assert_eq!(results[0].app, "gap");
/// assert_eq!(results[1].app, "eon");
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub fn sweep(jobs: Vec<SweepJob>) -> Result<Vec<SweepResult>, SimError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len());

    let total = jobs.len();
    let queue: Mutex<VecDeque<(usize, SweepJob)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Mutex<Vec<Option<Result<SweepResult, SimError>>>> = {
        let mut v = Vec::new();
        v.resize_with(total, || None);
        Mutex::new(v)
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let slots = &slots;
            scope.spawn(move || {
                let mut scratch = WorkerScratch::new();
                loop {
                    let Some((index, job)) = queue.lock().expect("queue lock").pop_front() else {
                        break;
                    };
                    let outcome = scratch.run(&job).map(|stats| SweepResult {
                        app: job.spec.name().to_owned(),
                        tag: job.tag,
                        stats,
                    });
                    slots.lock().expect("result lock")[index] = Some(outcome);
                }
            });
        }
    });

    let collected = slots.into_inner().expect("worker threads joined");
    let mut results = Vec::with_capacity(collected.len());
    for slot in collected {
        results.push(slot.expect("every job ran")?);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_workloads::find_app;

    #[test]
    fn run_app_produces_stats() {
        let app = find_app("gap").unwrap();
        let stats = run_app(app, Scale::TINY, &SimConfig::paper_default()).unwrap();
        assert!(stats.accesses > 0);
        assert!(stats.misses > 0);
    }

    #[test]
    fn compare_schemes_labels_results() {
        let app = find_app("gap").unwrap();
        let results = compare_schemes(
            app,
            Scale::TINY,
            &SimConfig::paper_default(),
            &[PrefetcherConfig::distance(), PrefetcherConfig::recency()],
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].0.starts_with("DP"));
        assert_eq!(results[1].0, "RP");
    }

    #[test]
    fn sweep_preserves_submission_order_and_matches_serial_runs() {
        let apps = ["gap", "facerec", "eon"];
        let jobs: Vec<SweepJob> = apps
            .iter()
            .map(|name| SweepJob {
                tag: format!("{name}/DP"),
                spec: Arc::new(find_app(name).unwrap()),
                scale: Scale::TINY,
                config: SimConfig::paper_default(),
            })
            .collect();
        let results = sweep(jobs).unwrap();
        assert_eq!(results.len(), 3);
        for (result, name) in results.iter().zip(apps) {
            assert_eq!(result.app, name);
            let serial = run_app(
                find_app(name).unwrap(),
                Scale::TINY,
                &SimConfig::paper_default(),
            )
            .unwrap();
            assert_eq!(result.stats, serial, "parallel result differs for {name}");
        }
    }

    #[test]
    fn worker_scratch_reuse_matches_fresh_engines() {
        // The engine-recycling path must be observationally identical to
        // building a fresh engine per job, including across config
        // changes that defeat recycling.
        let mut scratch = WorkerScratch::new();
        let configs = [
            SimConfig::paper_default(),
            SimConfig::paper_default(),
            SimConfig::baseline(),
            SimConfig::paper_default().with_prefetch_buffer(8),
        ];
        for (i, config) in configs.iter().enumerate() {
            let job = SweepJob {
                tag: format!("job{i}"),
                spec: Arc::new(find_app("gap").unwrap()),
                scale: Scale::TINY,
                config: config.clone(),
            };
            let reused = scratch.run(&job).unwrap();
            let fresh = run_app(find_app("gap").unwrap(), job.scale, config).unwrap();
            assert_eq!(reused, fresh, "job {i} diverged under engine reuse");
        }
    }

    #[test]
    fn empty_sweep_is_ok() {
        assert!(sweep(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn checkpointed_run_is_bit_identical_to_batch_at_odd_cadences() {
        let app = find_app("gap").unwrap();
        let config = SimConfig::paper_default();
        let batch = run_app(app, Scale::TINY, &config).unwrap();
        let total = app.stream_len(Scale::TINY);
        for every in [1777u64, 5000, total, total + 99] {
            let mut checkpoints = Vec::new();
            let finished = run_app_checkpointed(app, Scale::TINY, &config, every, |done, cum| {
                checkpoints.push((done, cum.clone()));
                std::ops::ControlFlow::Continue(())
            })
            .unwrap();
            assert_eq!(finished, batch, "every={every}: final stats drifted");
            assert_eq!(checkpoints.len() as u64, total.div_ceil(every));
            // Cumulative checkpoints are exact and monotone, and the
            // last one IS the batch result.
            for (done, cum) in &checkpoints {
                assert_eq!(cum.accesses, *done);
            }
            let (last_done, last) = checkpoints.last().unwrap();
            assert_eq!(*last_done, total);
            assert_eq!(*last, batch, "every={every}: last checkpoint != final");
        }
    }

    #[test]
    fn checkpointed_run_without_cadence_never_calls_the_observer() {
        let app = find_app("gap").unwrap();
        let config = SimConfig::paper_default();
        let mut calls = 0;
        let stats = run_app_checkpointed(app, Scale::TINY, &config, 0, |_, _| {
            calls += 1;
            std::ops::ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(calls, 0);
        assert_eq!(stats, run_app(app, Scale::TINY, &config).unwrap());
    }

    #[test]
    fn checkpoint_break_cancels_at_the_chunk_boundary() {
        let app = find_app("gap").unwrap();
        let config = SimConfig::paper_default();
        let stats = run_app_checkpointed(app, Scale::TINY, &config, 4096, |_, _| {
            std::ops::ControlFlow::Break(())
        })
        .unwrap();
        assert_eq!(
            stats.accesses, 4096,
            "run must stop at the first checkpoint"
        );
    }

    #[test]
    fn timed_run_produces_cycles() {
        let app = find_app("gap").unwrap();
        let t = run_app_timed(
            app,
            Scale::TINY,
            &SimConfig::paper_default(),
            TimingParams::paper_default(),
        )
        .unwrap();
        assert!(t.cycles > 0.0);
    }
}
