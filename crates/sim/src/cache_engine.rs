//! Prefetching into a data cache (extension).
//!
//! The paper's §4 claims distance prefetching "can possibly be used in
//! the context of caches"; this engine evaluates exactly that. The
//! prefetching mechanisms are granularity-agnostic — they see opaque
//! block numbers — so the same `TlbPrefetcher` implementations drive
//! cache-line prefetching here: the mechanism observes the cache-miss
//! stream and prefetched lines land directly in the cache
//! (next-level-backed fills, no separate buffer, the common arrangement
//! for L1 prefetching).

use tlbsim_core::{CandidateBuf, MemoryAccess, MissContext, TlbPrefetcher};
use tlbsim_mmu::{CacheAccess, DataCache, DataCacheConfig};

use crate::batch::drive_stream;
use crate::config::SimError;

/// Counters from a cache-prefetching simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// References simulated.
    pub accesses: u64,
    /// Demand misses with prefetching active.
    pub misses: u64,
    /// Prefetch fills issued.
    pub prefetches_issued: u64,
}

impl CacheStats {
    /// Demand miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A data-cache prefetching simulator.
///
/// Note that unlike the TLB engines, prefetches install straight into
/// the cache, so a bad mechanism *can* pollute it — comparing a run
/// against the no-prefetch baseline shows harm as well as benefit.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{MemoryAccess, PrefetcherConfig};
/// use tlbsim_mmu::DataCacheConfig;
/// use tlbsim_sim::CacheEngine;
///
/// let mut engine =
///     CacheEngine::new(DataCacheConfig::typical_l1d(), &PrefetcherConfig::distance())?;
/// // A strided walk: DP hides almost all line misses.
/// engine.run((0..100_000u64).map(|i| MemoryAccess::read(0x40, i / 2 * 64)));
/// assert!(engine.stats().miss_rate() < 0.01);
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub struct CacheEngine {
    cache: DataCache,
    prefetcher: Box<dyn TlbPrefetcher>,
    stats: CacheStats,
    sink: CandidateBuf,
    batch: Vec<MemoryAccess>,
}

impl CacheEngine {
    /// Builds a cache-prefetching engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid cache or prefetcher settings.
    pub fn new(
        cache: DataCacheConfig,
        prefetcher: &tlbsim_core::PrefetcherConfig,
    ) -> Result<Self, SimError> {
        Ok(CacheEngine {
            cache: DataCache::new(cache)?,
            prefetcher: prefetcher.build()?,
            stats: CacheStats::default(),
            sink: CandidateBuf::new(),
            batch: Vec::new(),
        })
    }

    /// Simulates one reference.
    pub fn access(&mut self, access: &MemoryAccess) {
        self.stats.accesses += 1;
        let pb_hit = match self.cache.access(access.vaddr) {
            CacheAccess::Hit => return,
            // Tagged protocol: the first hit to a prefetched line
            // re-enters the mechanism's "miss" stream (the cache-level
            // equivalent of a prefetch-buffer hit in the TLB adaptation)
            // so degree-1 prediction chains keep running.
            CacheAccess::PrefetchedHit => true,
            CacheAccess::Miss => {
                self.stats.misses += 1;
                false
            }
        };
        let line = self.cache.line_of(access.vaddr);
        self.sink.clear();
        self.prefetcher.on_miss(
            &MissContext {
                page: line,
                pc: access.pc,
                prefetch_buffer_hit: pb_hit,
                evicted_tlb_entry: None,
            },
            &mut self.sink,
        );
        for i in 0..self.sink.len() {
            let candidate = self.sink.pages()[i];
            if candidate == line || self.cache.contains_line(candidate) {
                continue;
            }
            self.cache.fill_line(candidate);
            self.stats.prefetches_issued += 1;
        }
    }

    /// Simulates a batch of references (the cache-hit early return
    /// inside [`access`](Self::access) keeps hits cheap; there is no
    /// additional hoisting here).
    pub fn access_batch(&mut self, batch: &[MemoryAccess]) {
        for access in batch {
            self.access(access);
        }
    }

    /// Simulates an entire stream, chunked through a reusable internal
    /// batch buffer.
    pub fn run(&mut self, stream: impl IntoIterator<Item = MemoryAccess>) -> &CacheStats {
        let mut batch = std::mem::take(&mut self.batch);
        drive_stream(stream, &mut batch, |chunk| self.access_batch(chunk));
        self.batch = batch;
        &self.stats
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The underlying cache's counters.
    pub fn cache(&self) -> &DataCache {
        &self.cache
    }
}

impl std::fmt::Debug for CacheEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEngine")
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_core::PrefetcherConfig;

    fn strided(lines: u64, refs: u64, stride: u64) -> Vec<MemoryAccess> {
        (0..lines * refs)
            .map(|i| MemoryAccess::read(0x40, (i / refs) * stride * 64))
            .collect()
    }

    fn run(prefetcher: PrefetcherConfig, stream: &[MemoryAccess]) -> CacheStats {
        let mut e = CacheEngine::new(DataCacheConfig::typical_l1d(), &prefetcher).unwrap();
        e.run(stream.iter().copied());
        *e.stats()
    }

    #[test]
    fn baseline_misses_every_cold_line() {
        let s = strided(5_000, 2, 1);
        let none = run(PrefetcherConfig::none(), &s);
        assert_eq!(none.misses, 5_000);
        assert_eq!(none.prefetches_issued, 0);
    }

    #[test]
    fn dp_hides_sequential_line_misses() {
        let s = strided(20_000, 2, 1);
        let dp = run(PrefetcherConfig::distance(), &s);
        assert!(dp.misses < 100, "DP left {} misses", dp.misses);
    }

    #[test]
    fn dp_hides_strided_line_misses_where_sp_cannot() {
        let s = strided(20_000, 2, 3);
        let dp = run(PrefetcherConfig::distance(), &s);
        let sp = run(PrefetcherConfig::sequential(), &s);
        assert!(dp.misses < 100);
        assert_eq!(sp.misses, 20_000, "stride 3 defeats next-line prefetching");
    }

    #[test]
    fn asp_works_at_line_granularity_too() {
        let s = strided(20_000, 2, 3);
        let asp = run(PrefetcherConfig::stride(), &s);
        assert!(asp.misses < 100, "ASP left {} misses", asp.misses);
    }

    #[test]
    fn distance_cycles_at_line_granularity_favour_dp() {
        // Alternating line distances (1, 17): ASP never stabilises.
        let mut stream = Vec::new();
        let mut line = 0u64;
        for i in 0..30_000 {
            stream.push(MemoryAccess::read(0x40, line * 64));
            line += if i % 2 == 0 { 1 } else { 17 };
        }
        let dp = run(PrefetcherConfig::distance(), &stream);
        let asp = run(PrefetcherConfig::stride(), &stream);
        assert!(
            dp.misses * 10 < asp.misses,
            "DP {} vs ASP {}",
            dp.misses,
            asp.misses
        );
    }
}
