//! The functional simulation engine.
//!
//! Implements the paper's evaluation loop exactly (§2, Figure 1): every
//! data reference is looked up in the TLB; on a miss the prefetch buffer
//! is checked concurrently, the translation is installed in the TLB
//! (promoting from the buffer or walking the page table), and the
//! prefetching mechanism observes the miss and requests prefetches into
//! the buffer. Prefetches complete instantly here — this engine measures
//! *prediction accuracy*; the cycle-level consequences live in
//! [`crate::TimingEngine`].
//!
//! ## The batched, allocation-free loop
//!
//! References are processed in [`access_batch`](Engine::access_batch)
//! slices: the TLB-hit fast path is a tight loop over a chunk, and the
//! miss path runs through the shared [`PrefetchCore`](crate::batch) —
//! one engine-owned `CandidateBuf`, zero heap allocations per miss once
//! the working set is warm (enforced by the `zero_alloc` integration
//! test). [`Engine::run`] chunks arbitrary iterators through a reusable
//! internal buffer; [`Engine::run_workload`] streams a workload through
//! the same buffer via `Workload::fill_batch` without ever materialising
//! the reference stream.

use std::collections::HashSet;

use tlbsim_core::{Asid, MemoryAccess, MissContext, Pc, VirtPage};
use tlbsim_mmu::Tlb;
use tlbsim_workloads::Workload;

use crate::batch::{drive_stream, PrefetchCore, ACCESS_BATCH};
use crate::config::{SimConfig, SimError};
use crate::stats::SimStats;

/// A functional TLB-prefetching simulator.
///
/// # Examples
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_sim::{Engine, SimConfig};
///
/// let mut engine = Engine::new(&SimConfig::paper_default())?;
/// // A long sequential walk: distance prefetching converges to ~100%.
/// engine.run((0..200_000u64).map(|i| MemoryAccess::read(0x40, i / 8 * 4096)));
/// assert!(engine.stats().accuracy() > 0.9);
/// # Ok::<(), tlbsim_sim::SimError>(())
/// ```
pub struct Engine {
    tlb: Tlb,
    core: PrefetchCore,
    config: SimConfig,
    stats: SimStats,
    batch: Vec<MemoryAccess>,
    /// Stream index demand-missed pages are attributed to (mix runners
    /// set this per segment; `None` — the single-stream default — skips
    /// attribution entirely).
    current_stream: Option<usize>,
    /// Per-stream sets of demand-missed pages, indexed by stream. Grown
    /// only by [`attribute_to`](Engine::attribute_to), never on the
    /// miss path; re-inserting an already-recorded page (the steady
    /// state) does not allocate.
    stream_pages: Vec<HashSet<VirtPage>>,
}

impl Engine {
    /// Builds an engine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the TLB, buffer or prefetcher
    /// configuration is invalid; a zero-entry prefetch buffer is
    /// rejected as [`SimError::ZeroPrefetchBuffer`].
    pub fn new(config: &SimConfig) -> Result<Self, SimError> {
        Ok(Engine {
            tlb: Tlb::new(config.tlb)?,
            core: PrefetchCore::new(config)?,
            config: config.clone(),
            stats: SimStats::default(),
            batch: Vec::new(),
            current_stream: None,
            stream_pages: Vec::new(),
        })
    }

    /// Attempts to reuse this engine for a fresh run under `config`.
    ///
    /// Succeeds when the configuration matches the one the engine was
    /// built with: all translation, prediction and statistics state is
    /// reset (the batch buffer keeps its allocation), making the
    /// recycled engine observationally identical to a newly built one.
    /// Returns `false` — leaving the engine untouched — on a
    /// configuration mismatch.
    pub fn try_recycle(&mut self, config: &SimConfig) -> bool {
        if self.config != *config {
            return false;
        }
        self.tlb.flush();
        self.core.reset();
        // Flush clears entries of every context but leaves the tag
        // registers; rewind them (and drop the attribution state) so a
        // recycled engine is indistinguishable from a fresh one.
        self.tlb.set_asid(Asid::DEFAULT);
        self.core.set_asid(Asid::DEFAULT);
        self.current_stream = None;
        self.stream_pages.clear();
        self.stats = SimStats::default();
        true
    }

    /// Simulates one data reference.
    pub fn access(&mut self, access: &MemoryAccess) {
        self.stats.accesses += 1;
        let page = self.config.page_size.page_of(access.vaddr);
        if self.tlb.lookup(page).is_some() {
            return;
        }
        self.miss(page, access.pc);
    }

    /// Simulates a batch of references with the TLB-hit fast path.
    pub fn access_batch(&mut self, batch: &[MemoryAccess]) {
        self.stats.accesses += batch.len() as u64;
        let page_size = self.config.page_size;
        for access in batch {
            let page = page_size.page_of(access.vaddr);
            if self.tlb.lookup(page).is_some() {
                continue;
            }
            self.miss(page, access.pc);
        }
    }

    /// The miss path: promote-or-walk, fill, notify the mechanism and
    /// install its candidates. Never allocates in steady state.
    fn miss(&mut self, page: VirtPage, pc: Pc) {
        self.stats.misses += 1;
        if let Some(stream) = self.current_stream {
            // Every page a stream references demand-misses at least once
            // while attributed (shard/segment starts are cold or the
            // page already missed for this stream earlier), so the set
            // converges to the stream's demand footprint.
            self.stream_pages[stream].insert(page);
        }

        // The prefetch buffer is probed concurrently with the TLB; a hit
        // promotes the translation into the TLB.
        let (frame, pb_hit) = self.core.translate(page);
        if pb_hit {
            self.stats.prefetch_buffer_hits += 1;
        } else {
            self.stats.demand_walks += 1;
        }
        let fill = self.tlb.fill(page, frame);

        let ctx = MissContext {
            page,
            pc,
            prefetch_buffer_hit: pb_hit,
            evicted_tlb_entry: fill.evicted,
        };
        let tlb = &self.tlb;
        let outcome =
            self.core
                .observe_and_install(&ctx, self.config.filter_prefetches, |candidate| {
                    tlb.contains(candidate)
                });
        self.stats.maintenance_ops += u64::from(outcome.maintenance_ops);
        self.stats.prefetches_issued += outcome.issued;
        self.stats.prefetches_filtered += outcome.filtered;
        self.stats.prefetches_evicted_unused += outcome.evicted_unused;
    }

    /// Simulates an entire reference stream and returns the final
    /// statistics.
    ///
    /// The stream is chunked through a reusable internal batch buffer,
    /// so arbitrarily long streams cost one buffer allocation per engine
    /// lifetime.
    pub fn run(&mut self, stream: impl IntoIterator<Item = MemoryAccess>) -> &SimStats {
        let mut batch = std::mem::take(&mut self.batch);
        drive_stream(stream, &mut batch, |chunk| self.access_batch(chunk));
        self.batch = batch;
        self.finish()
    }

    /// Streams a workload through the engine chunk-at-a-time via
    /// [`Workload::fill_batch`], without boxing an iterator per access.
    pub fn run_workload(&mut self, workload: &mut Workload) -> &SimStats {
        let mut batch = std::mem::take(&mut self.batch);
        if batch.len() < ACCESS_BATCH {
            batch.resize(ACCESS_BATCH, MemoryAccess::read(0, 0));
        }
        loop {
            let filled = workload.fill_batch(&mut batch);
            if filled == 0 {
                break;
            }
            self.access_batch(&batch[..filled]);
        }
        self.batch = batch;
        self.finish()
    }

    /// Streams at most `limit` accesses of a workload through the
    /// engine, chunk-at-a-time like [`Engine::run_workload`].
    ///
    /// This is the shard entry point: a worker that owns the time slice
    /// `[start, start + limit)` of a partitioned run positions its
    /// workload with [`Workload::skip_accesses`] and then consumes
    /// exactly its slice here. Processing is chunk-size-invariant, so
    /// driving a full stream through one `run_workload_limit(stream,
    /// len)` call is bit-identical to [`Engine::run_workload`].
    pub fn run_workload_limit(&mut self, workload: &mut Workload, limit: u64) -> &SimStats {
        let mut batch = std::mem::take(&mut self.batch);
        if batch.len() < ACCESS_BATCH {
            batch.resize(ACCESS_BATCH, MemoryAccess::read(0, 0));
        }
        let mut remaining = limit;
        while remaining > 0 {
            let want = remaining.min(ACCESS_BATCH as u64) as usize;
            let filled = workload.fill_batch(&mut batch[..want]);
            if filled == 0 {
                break;
            }
            self.access_batch(&batch[..filled]);
            remaining -= filled as u64;
        }
        self.batch = batch;
        self.finish()
    }

    /// Simulates a stream, flushing all translation and prediction state
    /// every `interval` accesses — the multiprogrammed context-switch
    /// mode (§4 lists flushing the prefetch tables as ongoing work).
    pub fn run_with_flush_interval(
        &mut self,
        stream: impl IntoIterator<Item = MemoryAccess>,
        interval: u64,
    ) -> &SimStats {
        assert!(interval > 0, "flush interval must be positive");
        let mut since_flush = 0u64;
        for access in stream {
            self.access(&access);
            since_flush += 1;
            if since_flush == interval {
                self.context_switch();
                since_flush = 0;
            }
        }
        self.finish()
    }

    /// Flushes the TLB, the prefetch buffer and the prefetcher's learned
    /// state, as a context switch would.
    pub fn context_switch(&mut self) {
        self.tlb.flush();
        self.core.flush();
    }

    /// Retags the whole machine — TLB, prefetch buffer, prediction
    /// tables and banked registers — to `asid`: the flush-free context
    /// switch. Entries of other contexts stay resident (competing for
    /// capacity) but invisible, and the shared page table keeps
    /// translating for everyone.
    ///
    /// Growing a mechanism's register bank may allocate; switches are
    /// off the per-access hot path, and re-activating a context that
    /// already ran does not allocate (pinned by the `zero_alloc` test).
    pub fn set_asid(&mut self, asid: Asid) {
        self.tlb.set_asid(asid);
        self.core.set_asid(asid);
    }

    /// Drops every TLB entry, buffered prefetch, tagged table row and
    /// banked register belonging to `asid` — what recycling an ASID slot
    /// for a new tenant does. Targets one context where
    /// [`context_switch`](Engine::context_switch) drops all of them;
    /// when the evicted context is the only one that ever ran, the two
    /// leave bit-identical machine state (the degeneration rule the
    /// flush-oracle tests pin).
    pub fn evict_asid(&mut self, asid: Asid) {
        self.tlb.evict_asid(asid);
        self.core.evict_asid(asid);
    }

    /// Directs per-stream footprint attribution: until the next call,
    /// demand-missed pages are recorded against stream `stream`. Grows
    /// the per-stream set vector on first sight of an index — switch
    /// time, not miss time.
    pub fn attribute_to(&mut self, stream: usize) {
        if self.stream_pages.len() <= stream {
            self.stream_pages.resize_with(stream + 1, HashSet::new);
        }
        self.current_stream = Some(stream);
    }

    /// Distinct pages recorded for `stream` by attribution (0 for a
    /// stream that never ran attributed).
    pub fn stream_footprint(&self, stream: usize) -> u64 {
        self.stream_pages.get(stream).map_or(0, |s| s.len() as u64)
    }

    /// Allocating snapshot of the pages attributed to `stream`, sorted —
    /// the sharded mix runner unions these across shards for exact
    /// per-stream footprints. Off the hot path.
    pub fn stream_pages_snapshot(&self, stream: usize) -> Vec<VirtPage> {
        let mut pages: Vec<VirtPage> = self
            .stream_pages
            .get(stream)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        pages.sort_unstable();
        pages
    }

    /// Refreshes derived counters and returns the statistics — called by
    /// the `run*` entry points and by external batch drivers (the sweep
    /// runner) once a stream is exhausted.
    pub fn finish(&mut self) -> &SimStats {
        self.stats.footprint_pages = self.core.page_table.len() as u64;
        &self.stats
    }

    /// Statistics so far (footprint is refreshed on [`Engine::run`] /
    /// [`Engine::finish`] completion).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Translations still sitting in the prefetch buffer — prefetches
    /// that were issued but never promoted by a reference.
    ///
    /// At the end of a shard's time slice these are the in-flight
    /// entries a sequential run might still have used later; the sharded
    /// runner reports their sum as the boundary-reconciliation counter
    /// (see `ShardedRun::boundary_resident_prefetches`).
    pub fn resident_prefetches(&self) -> u64 {
        self.core.buffer.len() as u64
    }

    /// Allocating snapshot of every page the run touched (demand or
    /// prefetch), sorted by page number — the set whose size
    /// [`SimStats::footprint_pages`] reports. Off the hot path; the
    /// sharded runner unions these across shards for the exact merged
    /// footprint.
    pub fn touched_pages_snapshot(&self) -> Vec<tlbsim_core::VirtPage> {
        self.core.page_table.pages_snapshot()
    }

    /// The mechanism under test.
    pub fn prefetcher_name(&self) -> &'static str {
        self.core.prefetcher.name()
    }

    /// The configuration this engine was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_core::PrefetcherConfig;
    use tlbsim_mmu::TlbConfig;

    fn seq_stream(pages: u64, refs_per_page: u64) -> impl Iterator<Item = MemoryAccess> {
        (0..pages * refs_per_page).map(move |i| MemoryAccess::read(0x40, i / refs_per_page * 4096))
    }

    #[test]
    fn no_prefetcher_never_hits_buffer() {
        let mut e = Engine::new(&SimConfig::baseline()).unwrap();
        e.run(seq_stream(1000, 4));
        assert_eq!(e.stats().prefetch_buffer_hits, 0);
        assert_eq!(e.stats().prefetches_issued, 0);
        assert_eq!(e.stats().misses, 1000);
        assert_eq!(e.stats().demand_walks, 1000);
    }

    #[test]
    fn miss_count_is_independent_of_prefetching() {
        // Prefetching can never increase (or decrease) raw TLB misses.
        let mut base = Engine::new(&SimConfig::baseline()).unwrap();
        base.run(seq_stream(2000, 3));
        for cfg in [
            PrefetcherConfig::sequential(),
            PrefetcherConfig::stride(),
            PrefetcherConfig::markov(),
            PrefetcherConfig::recency(),
            PrefetcherConfig::distance(),
        ] {
            let mut e = Engine::new(&SimConfig::paper_default().with_prefetcher(cfg)).unwrap();
            e.run(seq_stream(2000, 3));
            assert_eq!(e.stats().misses, base.stats().misses);
        }
    }

    #[test]
    fn sequential_prefetcher_covers_sequential_walk() {
        let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::sequential());
        let mut e = Engine::new(&cfg).unwrap();
        e.run(seq_stream(5000, 4));
        // Every miss after the first is covered by the +1 prefetch.
        assert!(e.stats().accuracy() > 0.99);
    }

    #[test]
    fn distance_prefetcher_learns_sequential_walk() {
        let mut e = Engine::new(&SimConfig::paper_default()).unwrap();
        e.run(seq_stream(5000, 4));
        assert!(e.stats().accuracy() > 0.99, "{}", e.stats());
    }

    #[test]
    fn buffer_hits_plus_walks_equal_misses() {
        let mut e = Engine::new(&SimConfig::paper_default()).unwrap();
        e.run(seq_stream(3000, 2));
        let s = e.stats();
        assert_eq!(s.prefetch_buffer_hits + s.demand_walks, s.misses);
    }

    #[test]
    fn footprint_includes_prefetched_pages() {
        let mut e = Engine::new(&SimConfig::paper_default()).unwrap();
        e.run(seq_stream(100, 2));
        assert!(e.stats().footprint_pages >= 100);
    }

    #[test]
    fn recency_counts_maintenance_traffic() {
        let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::recency());
        let mut e = Engine::new(&cfg).unwrap();
        // Working set of 200 > 128 TLB entries, revisited: evictions and
        // stack updates happen continuously.
        let stream = (0..40_000u64).map(|i| MemoryAccess::read(0x40, (i % 200) * 4096));
        e.run(stream);
        assert!(e.stats().maintenance_ops > 0);
        assert!(e.stats().memory_ops_per_miss() > 1.0);
    }

    #[test]
    fn distance_prefetcher_has_no_maintenance_traffic() {
        let mut e = Engine::new(&SimConfig::paper_default()).unwrap();
        e.run(seq_stream(2000, 2));
        assert_eq!(e.stats().maintenance_ops, 0);
    }

    #[test]
    fn context_switch_flush_costs_accuracy() {
        let stream: Vec<MemoryAccess> = seq_stream(4000, 4).collect();
        let mut plain = Engine::new(&SimConfig::paper_default()).unwrap();
        plain.run(stream.clone());
        let mut flushed = Engine::new(&SimConfig::paper_default()).unwrap();
        flushed.run_with_flush_interval(stream, 1000);
        assert!(flushed.stats().accuracy() <= plain.stats().accuracy());
        assert!(flushed.stats().misses >= plain.stats().misses);
    }

    #[test]
    fn small_tlb_misses_more() {
        let small = SimConfig::baseline().with_tlb(TlbConfig::fully_associative(16));
        let mut small_e = Engine::new(&small).unwrap();
        // Working set of 64 pages cycled repeatedly.
        let stream: Vec<MemoryAccess> = (0..20_000u64)
            .map(|i| MemoryAccess::read(0, (i % 64) * 4096))
            .collect();
        small_e.run(stream.clone());
        let mut big_e = Engine::new(&SimConfig::baseline()).unwrap();
        big_e.run(stream);
        assert!(small_e.stats().misses > big_e.stats().misses);
        // 64 pages fit in 128 entries: only cold misses for the big TLB.
        assert_eq!(big_e.stats().misses, 64);
    }

    #[test]
    fn zero_buffer_configuration_is_rejected() {
        let err = Engine::new(&SimConfig::paper_default().with_prefetch_buffer(0)).unwrap_err();
        assert!(matches!(err, SimError::ZeroPrefetchBuffer));
        assert!(err.to_string().contains("prefetch buffer"));
    }

    #[test]
    fn per_access_and_batched_paths_agree() {
        let stream: Vec<MemoryAccess> = seq_stream(700, 3)
            .chain((0..5_000u64).map(|i| MemoryAccess::read(0x44, (i % 331) * 13 * 4096)))
            .collect();
        let mut one_by_one = Engine::new(&SimConfig::paper_default()).unwrap();
        for access in &stream {
            one_by_one.access(access);
        }
        one_by_one.finish();
        let mut batched = Engine::new(&SimConfig::paper_default()).unwrap();
        batched.run(stream.iter().copied());
        assert_eq!(one_by_one.stats(), batched.stats());
    }

    #[test]
    fn run_workload_limit_full_length_matches_run_workload() {
        let app = tlbsim_workloads::find_app("gap").unwrap();
        let scale = tlbsim_workloads::Scale::TINY;
        let mut whole = Engine::new(&SimConfig::paper_default()).unwrap();
        whole.run_workload(&mut app.workload(scale));

        let mut limited = Engine::new(&SimConfig::paper_default()).unwrap();
        limited.run_workload_limit(&mut app.workload(scale), app.stream_len(scale));
        assert_eq!(whole.stats(), limited.stats());
    }

    #[test]
    fn run_workload_limit_stops_exactly_at_the_limit() {
        let app = tlbsim_workloads::find_app("gap").unwrap();
        let mut engine = Engine::new(&SimConfig::paper_default()).unwrap();
        // A limit that is not a multiple of the internal batch size.
        engine.run_workload_limit(&mut app.workload(tlbsim_workloads::Scale::TINY), 5000 + 7);
        assert_eq!(engine.stats().accesses, 5007);
    }

    #[test]
    fn segmented_limited_runs_match_one_continuous_run() {
        // Driving one engine through consecutive limited segments of the
        // same workload must equal a single run_workload call — the
        // chunk-size invariance the sharded executor relies on.
        let app = tlbsim_workloads::find_app("mcf").unwrap();
        let scale = tlbsim_workloads::Scale::TINY;
        let mut whole = Engine::new(&SimConfig::paper_default()).unwrap();
        whole.run_workload(&mut app.workload(scale));

        let mut segmented = Engine::new(&SimConfig::paper_default()).unwrap();
        let mut workload = app.workload(scale);
        loop {
            let before = segmented.stats().accesses;
            segmented.run_workload_limit(&mut workload, 1777);
            if segmented.stats().accesses == before {
                break;
            }
        }
        assert_eq!(whole.stats(), segmented.stats());
    }

    #[test]
    fn resident_prefetches_tracks_the_buffer() {
        let mut e = Engine::new(&SimConfig::paper_default()).unwrap();
        assert_eq!(e.resident_prefetches(), 0);
        e.run(seq_stream(1000, 2));
        // A sequential walk leaves the last prediction(s) unused in the
        // buffer.
        assert!(e.resident_prefetches() > 0);
        assert!(e.resident_prefetches() <= 16);
    }

    #[test]
    fn touched_pages_snapshot_is_sorted_and_sized_like_the_footprint() {
        let mut e = Engine::new(&SimConfig::paper_default()).unwrap();
        e.run(seq_stream(500, 2));
        let pages = e.touched_pages_snapshot();
        assert_eq!(pages.len() as u64, e.stats().footprint_pages);
        assert!(pages.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn recycled_engine_matches_fresh_engine() {
        let stream: Vec<MemoryAccess> = seq_stream(1500, 2).collect();
        let mut engine = Engine::new(&SimConfig::paper_default()).unwrap();
        engine.run(stream.iter().copied());
        let dirty = engine.stats().clone();

        assert!(engine.try_recycle(&SimConfig::paper_default()));
        engine.run(stream.iter().copied());
        assert_eq!(engine.stats(), &dirty, "recycled run must be bit-identical");

        assert!(
            !engine.try_recycle(&SimConfig::baseline()),
            "config mismatch must refuse recycling"
        );
    }

    #[test]
    fn asid_switch_preserves_each_contexts_machine_state() {
        let mut e = Engine::new(&SimConfig::paper_default()).unwrap();
        let lap = |e: &mut Engine, base: u64| {
            for page in 0..32u64 {
                e.access(&MemoryAccess::read(0x40, (base + page) * 4096));
            }
        };
        lap(&mut e, 0); // context 0 warms pages 0..32
        let before = e.stats().misses;
        e.set_asid(Asid::new(1));
        lap(&mut e, 1000); // context 1: all cold, its own misses
        e.set_asid(Asid::DEFAULT);
        let after_switch_back = e.stats().misses;
        lap(&mut e, 0); // context 0's entries survived the excursion
        assert_eq!(
            e.stats().misses,
            after_switch_back,
            "context 0 must hit on its preserved translations"
        );
        assert!(e.stats().misses > before, "context 1 missed cold");
    }

    #[test]
    fn evicting_the_sole_context_equals_a_context_switch() {
        let stream: Vec<MemoryAccess> = seq_stream(300, 2).collect();
        let mut flushed = Engine::new(&SimConfig::paper_default()).unwrap();
        flushed.run(stream.iter().copied());
        flushed.context_switch();
        flushed.run(stream.iter().copied());

        let mut evicted = Engine::new(&SimConfig::paper_default()).unwrap();
        evicted.run(stream.iter().copied());
        evicted.evict_asid(Asid::DEFAULT);
        evicted.run(stream.iter().copied());

        assert_eq!(flushed.stats(), evicted.stats());
    }

    #[test]
    fn attribution_records_demand_footprints_per_stream() {
        let mut e = Engine::new(&SimConfig::baseline()).unwrap();
        e.attribute_to(0);
        for page in 0..50u64 {
            e.access(&MemoryAccess::read(0, page * 4096));
        }
        e.attribute_to(1);
        for page in 500..530u64 {
            e.access(&MemoryAccess::read(0, page * 4096));
        }
        assert_eq!(e.stream_footprint(0), 50);
        assert_eq!(e.stream_footprint(1), 30);
        assert_eq!(e.stream_footprint(7), 0, "unknown streams report zero");
        let pages = e.stream_pages_snapshot(1);
        assert_eq!(pages.len(), 30);
        assert!(pages.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn recycling_resets_asid_and_attribution_state() {
        let stream: Vec<MemoryAccess> = seq_stream(400, 2).collect();
        let mut fresh = Engine::new(&SimConfig::paper_default()).unwrap();
        fresh.run(stream.iter().copied());

        let mut dirty = Engine::new(&SimConfig::paper_default()).unwrap();
        dirty.attribute_to(3);
        dirty.set_asid(Asid::new(5));
        dirty.run(stream.iter().copied());
        assert!(dirty.try_recycle(&SimConfig::paper_default()));
        dirty.run(stream.iter().copied());
        assert_eq!(dirty.stats(), fresh.stats());
        assert_eq!(dirty.stream_footprint(3), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_flush_interval_panics() {
        let mut e = Engine::new(&SimConfig::paper_default()).unwrap();
        e.run_with_flush_interval(std::iter::empty(), 0);
    }

    #[test]
    fn flushing_at_every_access_degenerates_to_a_cold_tlb() {
        // interval = 1 flushes translation *and* prediction state after
        // each reference: nothing can ever hit — not the TLB, not the
        // prefetch buffer — so the run degenerates to the all-cold
        // extreme regardless of the stream's locality.
        let stream: Vec<MemoryAccess> = seq_stream(500, 4).collect();
        let mut e = Engine::new(&SimConfig::paper_default()).unwrap();
        e.run_with_flush_interval(stream.iter().copied(), 1);
        let s = e.stats();
        assert_eq!(s.misses, s.accesses, "every access must miss");
        assert_eq!(s.prefetch_buffer_hits, 0, "the buffer never survives");
        assert_eq!(s.demand_walks, s.accesses);
        assert_eq!(s.accuracy(), 0.0);
    }

    #[test]
    fn flush_interval_of_the_stream_length_matches_a_plain_run_bit_identically() {
        let stream: Vec<MemoryAccess> = seq_stream(1200, 3).collect();
        let mut plain = Engine::new(&SimConfig::paper_default()).unwrap();
        plain.run(stream.iter().copied());
        let mut flushed = Engine::new(&SimConfig::paper_default()).unwrap();
        // The single flush lands after the final access, where it can no
        // longer affect any counter — including the footprint, which the
        // page table carries across context switches.
        flushed.run_with_flush_interval(stream.iter().copied(), stream.len() as u64);
        assert_eq!(flushed.stats(), plain.stats());
    }
}
