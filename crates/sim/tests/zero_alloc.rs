//! The zero-allocation guarantee of the steady-state miss path.
//!
//! A counting global allocator tallies every allocation made by this
//! thread. Each mechanism's engine is warmed on a miss-heavy looping
//! working set (larger than both the TLB and the prediction tables, so
//! rows are continuously evicted and re-created and the RP stack churns)
//! until all structures have reached their steady footprint — then the
//! same laps run again and the test asserts the allocation counter did
//! not move at all: **zero heap allocations per TLB miss**, for all five
//! mechanisms plus the baseline.
//!
//! This file holds exactly one `#[test]` so no concurrent test can
//! perturb the thread-local counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tlbsim_core::{MemoryAccess, PrefetcherConfig, PrefetcherKind};
use tlbsim_sim::{Engine, SimConfig};

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates directly to `System`; the only addition is a
// non-allocating thread-local counter bump.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_so_far() -> u64 {
    ALLOCATIONS.with(|count| count.get())
}

/// One lap over a working set big enough to miss in the 128-entry TLB
/// on every page and to overflow the 256-row prediction tables (so the
/// steady state includes continuous row eviction and re-creation).
fn lap_stream() -> Vec<MemoryAccess> {
    let pages = 600u64;
    (0..pages * 2)
        .map(|i| {
            // Two interleaved regions keep distances non-trivial and the
            // RP stack churning.
            let page = if i % 2 == 0 { i / 2 } else { 10_000 + i / 2 };
            MemoryAccess::read(0x400 + (i % 8) * 4, page * 4096)
        })
        .collect()
}

#[test]
fn steady_state_miss_path_never_allocates() {
    let lap = lap_stream();
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::Sequential,
        PrefetcherKind::Stride,
        PrefetcherKind::Markov,
        PrefetcherKind::Recency,
        PrefetcherKind::Distance,
    ] {
        let config = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));
        let mut engine = Engine::new(&config).expect("valid configuration");

        // Warm-up: populate the page table, TLB, prediction tables, the
        // RP stack and every container's high-water capacity.
        for _ in 0..4 {
            engine.access_batch(&lap);
        }

        let before = allocations_so_far();
        for _ in 0..4 {
            engine.access_batch(&lap);
        }
        let allocated = allocations_so_far() - before;

        let stats = engine.stats();
        assert!(
            stats.misses >= 4 * 600,
            "{kind:?}: the workload must actually stress the miss path, saw {} misses",
            stats.misses
        );
        assert_eq!(
            allocated, 0,
            "{kind:?}: steady-state loop performed {allocated} heap allocations"
        );
    }
}
