//! The zero-allocation guarantee of the steady-state miss path.
//!
//! A counting global allocator tallies every allocation made by this
//! thread. Each mechanism's engine is warmed on a miss-heavy looping
//! working set (larger than both the TLB and the prediction tables, so
//! rows are continuously evicted and re-created and the RP stack churns)
//! until all structures have reached their steady footprint — then the
//! same laps run again and the test asserts the allocation counter did
//! not move at all: **zero heap allocations per TLB miss**, for all five
//! mechanisms plus the baseline.
//!
//! A second test pins the same guarantee for the *trace-driven* path
//! end-to-end: open → `decode_batch` → engine drive performs zero
//! steady-state allocations, both at cursor level and through the full
//! `TraceWorkload` → `Workload::fill_batch` → `run_workload` stack.
//!
//! The allocation counter is thread-local, so the tests cannot perturb
//! each other even when the harness runs them concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tlbsim_core::{MemoryAccess, PrefetcherConfig, PrefetcherKind};
use tlbsim_sim::{Engine, SimConfig};

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates directly to `System`; the only addition is a
// non-allocating thread-local counter bump.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_so_far() -> u64 {
    ALLOCATIONS.with(|count| count.get())
}

/// One lap over a working set big enough to miss in the 128-entry TLB
/// on every page and to overflow the 256-row prediction tables (so the
/// steady state includes continuous row eviction and re-creation).
fn lap_stream() -> Vec<MemoryAccess> {
    let pages = 600u64;
    (0..pages * 2)
        .map(|i| {
            // Two interleaved regions keep distances non-trivial and the
            // RP stack churning.
            let page = if i % 2 == 0 { i / 2 } else { 10_000 + i / 2 };
            MemoryAccess::read(0x400 + (i % 8) * 4, page * 4096)
        })
        .collect()
}

#[test]
fn steady_state_miss_path_never_allocates() {
    let lap = lap_stream();
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::Sequential,
        PrefetcherKind::Stride,
        PrefetcherKind::Markov,
        PrefetcherKind::Recency,
        PrefetcherKind::Distance,
    ] {
        let config = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));
        let mut engine = Engine::new(&config).expect("valid configuration");

        // Warm-up: populate the page table, TLB, prediction tables, the
        // RP stack and every container's high-water capacity.
        for _ in 0..4 {
            engine.access_batch(&lap);
        }

        let before = allocations_so_far();
        for _ in 0..4 {
            engine.access_batch(&lap);
        }
        let allocated = allocations_so_far() - before;

        let stats = engine.stats();
        assert!(
            stats.misses >= 4 * 600,
            "{kind:?}: the workload must actually stress the miss path, saw {} misses",
            stats.misses
        );
        assert_eq!(
            allocated, 0,
            "{kind:?}: steady-state loop performed {allocated} heap allocations"
        );
    }
}

/// The three adaptive schemes the static grid gained: trend-vote
/// strides, a confidence-throttled distance prefetcher, and two
/// set-dueling ensembles (including a three-way duel).
fn adaptive_schemes() -> Vec<(PrefetcherConfig, &'static str)> {
    use tlbsim_core::ConfidenceConfig;

    let mut trend = PrefetcherConfig::trend_stride();
    trend.window(8);
    let mut confident = PrefetcherConfig::distance();
    confident.confidence(ConfidenceConfig::adaptive());
    vec![
        (trend, "TP,8"),
        (confident, "C+DP"),
        (
            PrefetcherConfig::ensemble_of(&[PrefetcherKind::Distance, PrefetcherKind::Stride]),
            "EP:DP+ASP",
        ),
        (
            PrefetcherConfig::ensemble_of(&[
                PrefetcherKind::Distance,
                PrefetcherKind::Stride,
                PrefetcherKind::Markov,
            ]),
            "EP:DP+ASP+MP",
        ),
    ]
}

#[test]
fn adaptive_steady_state_miss_path_never_allocates() {
    // The adaptive families carry extra live state on the miss path —
    // confidence counter rows, trend windows, duel scores — and all of
    // it must reach a steady footprint exactly like the static tables:
    // training, voting and throttling are in-place updates, never
    // allocations.
    let lap = lap_stream();
    for (scheme, label) in adaptive_schemes() {
        let config = SimConfig::paper_default().with_prefetcher(scheme);
        let mut engine = Engine::new(&config).expect("valid configuration");

        for _ in 0..4 {
            engine.access_batch(&lap);
        }

        let before = allocations_so_far();
        for _ in 0..4 {
            engine.access_batch(&lap);
        }
        let allocated = allocations_so_far() - before;

        let stats = engine.stats();
        assert!(
            stats.misses >= 4 * 600,
            "{label}: the workload must actually stress the miss path, saw {} misses",
            stats.misses
        );
        assert_eq!(
            allocated, 0,
            "{label}: steady-state loop performed {allocated} heap allocations"
        );
    }
}

#[test]
fn adaptive_asid_switching_steady_state_never_allocates() {
    // Tag-swap context switches under the adaptive families: once both
    // ASIDs' counter banks, trend rows and duel scores are parked, a
    // switch is a swap of tagged banks — no rebuild, no heap traffic.
    use tlbsim_core::Asid;

    let lap = lap_stream();
    for (scheme, label) in adaptive_schemes() {
        let config = SimConfig::paper_default().with_prefetcher(scheme);
        let mut engine = Engine::new(&config).expect("valid configuration");

        for _ in 0..4 {
            for stream in 0..2usize {
                engine.set_asid(Asid::new(stream as u16));
                engine.attribute_to(stream);
                engine.access_batch(&lap);
            }
        }

        let before = allocations_so_far();
        for _ in 0..4 {
            for stream in 0..2usize {
                engine.set_asid(Asid::new(stream as u16));
                engine.attribute_to(stream);
                engine.access_batch(&lap);
            }
        }
        let allocated = allocations_so_far() - before;

        assert!(
            engine.stats().misses >= 8 * 600,
            "{label}: the switching workload must stress the miss path, saw {} misses",
            engine.stats().misses
        );
        assert_eq!(
            allocated, 0,
            "{label}: ASID-switching steady state performed {allocated} heap allocations"
        );
    }
}

#[test]
fn asid_switching_steady_state_never_allocates() {
    // Flush-free multiprogramming in miniature: two address spaces
    // alternate on one engine via `set_asid` retagging — no flush, both
    // contexts' state stays resident and tagged. Once both spaces are
    // warm (page table, tagged TLB/buffer/table rows, per-ASID banked
    // registers, attribution slots), the switch + lap loop must stay
    // entirely off the heap: a context switch is a tag swap, not an
    // allocation.
    use tlbsim_core::Asid;

    let lap = lap_stream();
    for kind in [
        PrefetcherKind::Sequential,
        PrefetcherKind::Markov,
        PrefetcherKind::Recency,
        PrefetcherKind::Distance,
    ] {
        let config = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));
        let mut engine = Engine::new(&config).expect("valid configuration");

        // Warm-up: both ASIDs populate their tagged state and the
        // per-stream attribution table reaches its high-water width.
        for _ in 0..4 {
            for stream in 0..2usize {
                engine.set_asid(Asid::new(stream as u16));
                engine.attribute_to(stream);
                engine.access_batch(&lap);
            }
        }

        let before = allocations_so_far();
        for _ in 0..4 {
            for stream in 0..2usize {
                engine.set_asid(Asid::new(stream as u16));
                engine.attribute_to(stream);
                engine.access_batch(&lap);
            }
        }
        let allocated = allocations_so_far() - before;

        assert!(
            engine.stats().misses >= 8 * 600,
            "{kind:?}: the switching workload must stress the miss path, saw {} misses",
            engine.stats().misses
        );
        assert_eq!(
            allocated, 0,
            "{kind:?}: ASID-switching steady state performed {allocated} heap allocations"
        );
    }
}

#[test]
fn mmap_trace_replay_path_never_allocates_in_steady_state() {
    use tlbsim_trace::{BinaryTraceWriter, MmapTrace};
    use tlbsim_workloads::TraceWorkload;

    // Record the miss-heavy lap stream (4 laps) to a temp trace file —
    // setup may allocate freely; the measured window starts later.
    let lap = lap_stream();
    let path = std::env::temp_dir().join(format!("tlbsim-zero-alloc-{}.tlbt", std::process::id()));
    {
        let mut writer = BinaryTraceWriter::create(
            std::fs::File::create(&path).expect("temp trace file creates"),
        )
        .expect("trace header writes");
        for _ in 0..4 {
            for access in &lap {
                writer.write(access).expect("record writes");
            }
        }
        writer.finish().expect("trace flushes");
    }

    // --- Cursor level: open -> decode_batch -> engine drive. ---
    let trace = MmapTrace::open(&path).expect("recorded trace validates");
    let config = SimConfig::paper_default();
    let mut engine = Engine::new(&config).expect("valid configuration");
    let mut batch = vec![MemoryAccess::read(0, 0); 4096];

    // Warm-up: one full replay populates the page table, TLB,
    // prediction tables and every container's high-water capacity, and
    // faults in the whole mapping.
    let mut cursor = trace.cursor();
    loop {
        let filled = cursor.decode_batch(&mut batch).expect("validated records");
        if filled == 0 {
            break;
        }
        engine.access_batch(&batch[..filled]);
    }

    // Steady state: rewind the cursor and replay again — seeking,
    // decoding and the whole miss path must stay off the heap.
    let before = allocations_so_far();
    cursor.seek(0);
    loop {
        let filled = cursor.decode_batch(&mut batch).expect("validated records");
        if filled == 0 {
            break;
        }
        engine.access_batch(&batch[..filled]);
    }
    let allocated = allocations_so_far() - before;
    assert!(
        engine.stats().misses >= 8 * 600,
        "the replay must actually stress the miss path, saw {} misses",
        engine.stats().misses
    );
    assert_eq!(
        allocated, 0,
        "cursor-level mmap replay performed {allocated} heap allocations"
    );

    // --- Full stack: TraceWorkload -> Workload -> run_workload. ---
    // Workload construction (one Box + one String per replay) and the
    // first run_workload call (which sizes the engine's internal batch
    // buffer) happen before the measured window; the engine's tables
    // are already warm from the laps above.
    let workload_spec = TraceWorkload::open(&path).expect("recorded trace validates");
    engine.run_workload(&mut workload_spec.workload());
    let mut replay = workload_spec.workload();
    let before = allocations_so_far();
    engine.run_workload(&mut replay);
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "TraceWorkload replay performed {allocated} heap allocations"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_block_decode_never_allocates_in_steady_state() {
    use tlbsim_trace::{V2Trace, V2TraceWriter};
    use tlbsim_workloads::TraceWorkload;

    // Record the lap stream as a delta-block v2 trace. A small block
    // length keeps the restart/delta mix representative: the measured
    // replay crosses hundreds of block boundaries, so both the restart
    // decode and the varint delta chain are exercised continuously.
    let lap = lap_stream();
    let path =
        std::env::temp_dir().join(format!("tlbsim-zero-alloc-v2-{}.tlbt", std::process::id()));
    {
        let mut writer = V2TraceWriter::create_with_block_len(
            std::fs::File::create(&path).expect("temp trace file creates"),
            64,
        )
        .expect("trace header writes");
        for _ in 0..4 {
            for access in &lap {
                writer.write(access).expect("record writes");
            }
        }
        writer.finish().expect("block index and footer write");
    }

    // --- Cursor level: open -> decode_batch -> engine drive. The
    // whole-map backend is the steady-state path; the windowed
    // streaming backend remaps (and therefore allocates) by design.
    let trace = V2Trace::open(&path).expect("recorded trace validates");
    let config = SimConfig::paper_default();
    let mut engine = Engine::new(&config).expect("valid configuration");
    let mut batch = vec![MemoryAccess::read(0, 0); 4096];

    // Warm-up: one full replay populates the engine and faults in the
    // whole mapping.
    let mut cursor = trace.cursor();
    loop {
        let filled = cursor.decode_batch(&mut batch).expect("validated records");
        if filled == 0 {
            break;
        }
        engine.access_batch(&batch[..filled]);
    }

    // Steady state: the O(1) index seek, every block-boundary restart,
    // the zig-zag varint decode and the miss path must all stay off
    // the heap.
    let before = allocations_so_far();
    cursor.seek(0);
    loop {
        let filled = cursor.decode_batch(&mut batch).expect("validated records");
        if filled == 0 {
            break;
        }
        engine.access_batch(&batch[..filled]);
    }
    let allocated = allocations_so_far() - before;
    assert!(
        engine.stats().misses >= 8 * 600,
        "the replay must actually stress the miss path, saw {} misses",
        engine.stats().misses
    );
    assert_eq!(
        allocated, 0,
        "cursor-level v2 block decode performed {allocated} heap allocations"
    );

    // --- Full stack: TraceWorkload (v2 sniffed) -> run_workload. ---
    let workload_spec = TraceWorkload::open(&path).expect("recorded trace validates");
    assert_eq!(workload_spec.format_version(), 2, "v2 header sniffed");
    engine.run_workload(&mut workload_spec.workload());
    let mut replay = workload_spec.workload();
    let before = allocations_so_far();
    engine.run_workload(&mut replay);
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "v2 TraceWorkload replay performed {allocated} heap allocations"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn quarantine_decode_never_allocates_in_steady_state() {
    use tlbsim_trace::{BinaryTraceWriter, DecodePolicy, MmapTrace, HEADER_BYTES, RECORD_BYTES};
    use tlbsim_workloads::TraceWorkload;

    // Record the lap stream, then vandalise a handful of kind bytes so
    // the quarantine walk actually has records to skip — the salvage
    // path must be as allocation-free as the clean one.
    let lap = lap_stream();
    let path = std::env::temp_dir().join(format!(
        "tlbsim-zero-alloc-quarantine-{}.tlbt",
        std::process::id()
    ));
    {
        let mut writer = BinaryTraceWriter::create(
            std::fs::File::create(&path).expect("temp trace file creates"),
        )
        .expect("trace header writes");
        for _ in 0..4 {
            for access in &lap {
                writer.write(access).expect("record writes");
            }
        }
        writer.finish().expect("trace flushes");
    }
    let mut bytes = std::fs::read(&path).expect("trace reads back");
    let records = (bytes.len() - HEADER_BYTES) / RECORD_BYTES;
    for bad in (0..records).step_by(records / 16) {
        bytes[HEADER_BYTES + bad * RECORD_BYTES + 16] = 0xEE;
    }
    std::fs::write(&path, &bytes).expect("damaged trace writes");

    // --- Cursor level under quarantine. ---
    let trace =
        MmapTrace::open_with_policy(&path, DecodePolicy::lenient()).expect("header still valid");
    let config = SimConfig::paper_default();
    let mut engine = Engine::new(&config).expect("valid configuration");
    let mut batch = vec![MemoryAccess::read(0, 0); 4096];

    let mut cursor = trace.cursor();
    loop {
        let filled = cursor.decode_batch(&mut batch).expect("unbounded budget");
        if filled == 0 {
            break;
        }
        engine.access_batch(&batch[..filled]);
    }
    let skipped = cursor.health().records_bad;
    assert!(
        skipped >= 16,
        "the walk must actually skip bad records, saw {skipped}"
    );

    let before = allocations_so_far();
    cursor.seek(0);
    loop {
        let filled = cursor.decode_batch(&mut batch).expect("unbounded budget");
        if filled == 0 {
            break;
        }
        engine.access_batch(&batch[..filled]);
    }
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "quarantine cursor replay performed {allocated} heap allocations"
    );

    // --- Full stack: TraceWorkload opened under quarantine. ---
    let workload_spec = TraceWorkload::open_with_policy(&path, DecodePolicy::lenient())
        .expect("damage fits the unbounded budget");
    engine.run_workload(&mut workload_spec.workload());
    let mut replay = workload_spec.workload();
    let before = allocations_so_far();
    engine.run_workload(&mut replay);
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "quarantined TraceWorkload replay performed {allocated} heap allocations"
    );

    std::fs::remove_file(&path).ok();
}
