//! Property tests for the simulation engines over arbitrary reference
//! streams.

use proptest::prelude::*;
use tlbsim_core::{MemoryAccess, PrefetcherConfig, PrefetcherKind};
use tlbsim_mem::TimingParams;
use tlbsim_sim::{Engine, SimConfig, TimingEngine};

/// Arbitrary but reasonably local reference streams: a mix of small hot
/// regions and wide-ranging pages.
fn arb_stream() -> impl Strategy<Value = Vec<MemoryAccess>> {
    prop::collection::vec((0u64..4_000, 0u64..16), 1..2_000).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(page, pc)| MemoryAccess::read(0x400 + pc * 4, page * 4096))
            .collect()
    })
}

fn any_kind() -> impl Strategy<Value = PrefetcherKind> {
    prop_oneof![
        Just(PrefetcherKind::None),
        Just(PrefetcherKind::Sequential),
        Just(PrefetcherKind::Stride),
        Just(PrefetcherKind::Markov),
        Just(PrefetcherKind::Recency),
        Just(PrefetcherKind::Distance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The §2 guarantee: prefetching never changes the TLB miss count,
    /// for any mechanism on any stream.
    #[test]
    fn miss_count_is_prefetcher_invariant(stream in arb_stream(), kind in any_kind()) {
        let mut base = Engine::new(&SimConfig::baseline()).unwrap();
        base.run(stream.iter().copied());
        let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));
        let mut engine = Engine::new(&cfg).unwrap();
        engine.run(stream.iter().copied());
        prop_assert_eq!(engine.stats().misses, base.stats().misses);
    }

    /// Counter sanity on arbitrary streams.
    #[test]
    fn counters_are_consistent(stream in arb_stream(), kind in any_kind()) {
        let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));
        let mut engine = Engine::new(&cfg).unwrap();
        engine.run(stream.iter().copied());
        let s = engine.stats();
        prop_assert!(s.misses <= s.accesses);
        prop_assert_eq!(s.prefetch_buffer_hits + s.demand_walks, s.misses);
        prop_assert!(s.prefetch_buffer_hits <= s.prefetches_issued);
        prop_assert!(s.accuracy() >= 0.0 && s.accuracy() <= 1.0);
        prop_assert!(s.footprint_pages >= 1);
    }

    /// The timing engine never reports fewer cycles than the ideal
    /// pipeline, and the no-prefetch baseline is exactly base + stalls.
    #[test]
    fn timing_cycles_are_bounded_below(stream in arb_stream(), kind in any_kind()) {
        let params = TimingParams::paper_default();
        let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));
        let mut engine = TimingEngine::new(&cfg, params).unwrap();
        engine.run(stream.iter().copied());
        let t = engine.stats();
        prop_assert!(t.cycles >= params.base_cycles(t.accesses) - 1e-6);
        let stalls = t.stall_demand + t.stall_inflight + t.stall_maintenance;
        prop_assert!(
            (t.cycles - (params.base_cycles(t.accesses) + stalls)).abs() < 1e-3,
            "cycles {} vs base+stalls {}",
            t.cycles,
            params.base_cycles(t.accesses) + stalls
        );
    }

    /// Prefetching with the timing model can never beat the ideal of
    /// hiding every single miss.
    #[test]
    fn timing_savings_are_bounded_by_full_coverage(stream in arb_stream()) {
        let params = TimingParams::paper_default();
        let mut base = TimingEngine::new(&SimConfig::baseline(), params).unwrap();
        base.run(stream.iter().copied());
        let mut dp = TimingEngine::new(&SimConfig::paper_default(), params).unwrap();
        dp.run(stream.iter().copied());
        let floor = params.base_cycles(base.stats().accesses);
        prop_assert!(dp.stats().cycles >= floor - 1e-6);
        prop_assert!(base.stats().cycles >= dp.stats().cycles - 1e-6
            || dp.stats().cycles <= base.stats().cycles * 1.25,
            "prefetching should not blow up cycles: {} vs {}",
            dp.stats().cycles, base.stats().cycles);
    }

    /// Functional and timing engines agree on the miss stream.
    #[test]
    fn engines_agree_on_misses(stream in arb_stream(), kind in any_kind()) {
        let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));
        let mut f = Engine::new(&cfg).unwrap();
        f.run(stream.iter().copied());
        let mut t = TimingEngine::new(&cfg, TimingParams::paper_default()).unwrap();
        t.run(stream.iter().copied());
        prop_assert_eq!(f.stats().misses, t.stats().misses);
    }

    /// The batched, sink-based run loop produces byte-identical
    /// `SimStats` to the per-access path on arbitrary streams, for every
    /// mechanism.
    #[test]
    fn batched_run_matches_per_access_path(stream in arb_stream(), kind in any_kind()) {
        let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));
        let mut one_by_one = Engine::new(&cfg).unwrap();
        for access in &stream {
            one_by_one.access(access);
        }
        one_by_one.finish();
        let mut batched = Engine::new(&cfg).unwrap();
        batched.run(stream.iter().copied());
        prop_assert_eq!(one_by_one.stats(), batched.stats());
    }
}

/// The streamed `run_workload` (fill_batch + access_batch) path must be
/// byte-identical to driving the engine one access at a time, on real
/// application models — one strided (galgel) and one chase-heavy (mcf),
/// under every mechanism.
#[test]
fn workload_streaming_matches_per_access_path_on_apps() {
    use tlbsim_workloads::{find_app, Scale};

    for app_name in ["galgel", "mcf"] {
        let app = find_app(app_name).expect("registered app");
        for kind in [
            PrefetcherKind::Sequential,
            PrefetcherKind::Stride,
            PrefetcherKind::Markov,
            PrefetcherKind::Recency,
            PrefetcherKind::Distance,
        ] {
            let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));

            let mut per_access = Engine::new(&cfg).unwrap();
            for access in app.workload(Scale::TINY) {
                per_access.access(&access);
            }
            per_access.finish();

            let mut streamed = Engine::new(&cfg).unwrap();
            streamed.run_workload(&mut app.workload(Scale::TINY));

            assert_eq!(
                per_access.stats(),
                streamed.stats(),
                "{app_name}/{kind:?}: streamed stats diverged from per-access stats"
            );
        }
    }
}
