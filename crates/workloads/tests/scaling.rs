//! Scale-invariance: the per-application miss rates and the relative
//! behaviour of the models must not depend on the run-length multiplier
//! (the property that justifies simulating far fewer references than
//! the paper's 10⁹ instructions).

use tlbsim_workloads::{all_apps, find_app, Scale};

/// Page-granular miss-rate proxy computed without the simulator crate
/// (which would be a circular dev-dependency): distinct-page transitions
/// per access against a FIFO window roughly the TLB's size.
fn miss_proxy(name: &str, scale: Scale) -> f64 {
    let app = find_app(name).expect("registered");
    let mut window: std::collections::VecDeque<u64> = Default::default();
    let mut resident: std::collections::HashSet<u64> = Default::default();
    let mut misses = 0u64;
    let mut accesses = 0u64;
    for access in app.workload(scale) {
        accesses += 1;
        let page = access.vaddr.raw() >> 12;
        if !resident.contains(&page) {
            misses += 1;
            window.push_back(page);
            resident.insert(page);
            if window.len() > 128 {
                let evicted = window.pop_front().expect("non-empty");
                resident.remove(&evicted);
            }
        }
    }
    misses as f64 / accesses as f64
}

#[test]
fn miss_rates_are_scale_invariant() {
    for name in ["galgel", "mcf", "gzip", "wupwise", "gs"] {
        let tiny = miss_proxy(name, Scale::TINY);
        let small = miss_proxy(name, Scale::SMALL);
        assert!(
            (tiny - small).abs() < 0.25 * tiny.max(1e-6),
            "{name}: miss proxy drifts {tiny:.4} -> {small:.4}"
        );
    }
}

#[test]
fn stream_length_scales_linearly_for_loop_models() {
    // Loop-based models multiply laps, so length scales with the factor.
    for name in ["gap", "facerec", "adpcm-enc"] {
        let app = find_app(name).expect("registered");
        let tiny = app.workload(Scale::TINY).count() as f64;
        let small = app.workload(Scale::SMALL).count() as f64;
        let ratio = small / tiny;
        assert!(
            (1.5..=2.5).contains(&ratio),
            "{name}: length ratio {ratio} for 2x scale"
        );
    }
}

#[test]
fn footprints_stay_bounded_for_loop_models() {
    // Revisit-based models keep their footprint fixed as scale grows.
    for name in ["galgel", "crafty", "vortex"] {
        let app = find_app(name).expect("registered");
        let count = |scale: Scale| {
            let mut pages: std::collections::HashSet<u64> = Default::default();
            for access in app.workload(scale) {
                pages.insert(access.vaddr.raw() >> 12);
            }
            pages.len()
        };
        let tiny = count(Scale::TINY);
        let small = count(Scale::SMALL);
        assert_eq!(tiny, small, "{name}: footprint should not scale");
    }
}

#[test]
fn footprints_grow_for_first_touch_models() {
    for name in ["gzip", "equake", "swim"] {
        let app = find_app(name).expect("registered");
        let count = |scale: Scale| {
            let mut pages: std::collections::HashSet<u64> = Default::default();
            for access in app.workload(scale) {
                pages.insert(access.vaddr.raw() >> 12);
            }
            pages.len()
        };
        assert!(
            count(Scale::SMALL) > count(Scale::TINY) * 3 / 2,
            "{name}: first-touch footprint should scale"
        );
    }
}

#[test]
fn every_app_has_positive_miss_proxy() {
    for app in all_apps() {
        let rate = miss_proxy(app.name, Scale::TINY);
        assert!(rate > 0.0, "{}: zero miss proxy", app.name);
        assert!(rate < 0.5, "{}: implausible miss proxy {rate}", app.name);
    }
}
