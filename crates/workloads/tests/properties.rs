//! Property tests for the reference-pattern primitives.

use proptest::prelude::*;
use tlbsim_workloads::{
    Alternation, BlockChase, DistanceCycle, Interleave, LoopedScan, Mix, PointerChase, RandomWalk,
    StridedScan, Visit, VisitStream,
};

fn collect(stream: impl Iterator<Item = Visit>) -> Vec<Visit> {
    stream.collect()
}

proptest! {
    /// A strided scan visits exactly `pages` pages with the exact
    /// stride.
    #[test]
    fn strided_scan_geometry(
        base in 0u64..1_000_000,
        stride in 1i64..100,
        pages in 1u64..500,
        refs in 1u32..8,
    ) {
        let visits = collect(StridedScan::new(base, stride, pages, refs, 0x40));
        prop_assert_eq!(visits.len() as u64, pages);
        for (i, w) in visits.windows(2).enumerate() {
            prop_assert_eq!(
                w[1].page as i64 - w[0].page as i64,
                stride,
                "at index {}",
                i
            );
        }
        prop_assert!(visits.iter().all(|v| v.refs == refs));
    }

    /// A looped scan is exactly `laps` concatenated identical scans.
    #[test]
    fn looped_scan_repeats(
        pages in 1u64..200,
        laps in 1u64..6,
        refs in 1u32..4,
    ) {
        let visits = collect(LoopedScan::new(10, 1, pages, laps, refs, 0));
        prop_assert_eq!(visits.len() as u64, pages * laps);
        let lap0: Vec<u64> = visits[..pages as usize].iter().map(|v| v.page).collect();
        for lap in 1..laps as usize {
            let this: Vec<u64> = visits[lap * pages as usize..(lap + 1) * pages as usize]
                .iter()
                .map(|v| v.page)
                .collect();
            prop_assert_eq!(&this, &lap0);
        }
    }

    /// A distance cycle's inter-visit distances repeat its cycle.
    #[test]
    fn distance_cycle_distances(
        dists in prop::collection::vec(1i64..50, 1..6),
        visits in 2u64..300,
    ) {
        let stream = collect(DistanceCycle::new(1000, dists.clone(), visits, 1, 0));
        for (i, w) in stream.windows(2).enumerate() {
            let expected = dists[i % dists.len()];
            prop_assert_eq!(w[1].page as i64 - w[0].page as i64, expected);
        }
    }

    /// A pointer chase covers every page of its region exactly once per
    /// lap, in an order that is identical across laps.
    #[test]
    fn pointer_chase_coverage(pages in 1u64..300, laps in 1u64..4, seed in 0u64..1000) {
        let visits = collect(PointerChase::new(500, pages, laps, 1, 0, seed));
        prop_assert_eq!(visits.len() as u64, pages * laps);
        let lap0: Vec<u64> = visits[..pages as usize].iter().map(|v| v.page).collect();
        let mut sorted = lap0.clone();
        sorted.sort_unstable();
        let expected: Vec<u64> = (500..500 + pages).collect();
        prop_assert_eq!(sorted, expected);
        for lap in 1..laps as usize {
            let this: Vec<u64> = visits[lap * pages as usize..(lap + 1) * pages as usize]
                .iter()
                .map(|v| v.page)
                .collect();
            prop_assert_eq!(&this, &lap0);
        }
    }

    /// Block chases visit `blocks × run_len` distinct pages with
    /// sequential runs.
    #[test]
    fn block_chase_structure(blocks in 1u64..80, run in 1u64..6, seed in 0u64..100) {
        let visits = collect(BlockChase::new(0, blocks, run, 1, 1, 0, seed));
        prop_assert_eq!(visits.len() as u64, blocks * run);
        let mut pages: Vec<u64> = visits.iter().map(|v| v.page).collect();
        for chunk in visits.chunks(run as usize) {
            for w in chunk.windows(2) {
                prop_assert_eq!(w[1].page, w[0].page + 1);
            }
        }
        pages.sort_unstable();
        pages.dedup();
        prop_assert_eq!(pages.len() as u64, blocks * run);
    }

    /// Mix preserves every main visit in order.
    #[test]
    fn mix_preserves_main_stream(
        main_len in 1u64..200,
        noise_len in 0u64..100,
        period in 2u64..8,
    ) {
        let main: VisitStream = Box::new(StridedScan::new(0, 1, main_len, 1, 0x1));
        let noise: VisitStream = Box::new(StridedScan::new(10_000, 1, noise_len, 1, 0x2));
        let visits = collect(Mix::new(main, noise, period));
        let main_pages: Vec<u64> = visits
            .iter()
            .filter(|v| v.page < 10_000)
            .map(|v| v.page)
            .collect();
        let expected: Vec<u64> = (0..main_len).collect();
        prop_assert_eq!(main_pages, expected);
    }

    /// Interleave emits every visit of every stream exactly once.
    #[test]
    fn interleave_conserves_visits(
        lens in prop::collection::vec(0u64..100, 1..4),
        burst in 1u64..5,
    ) {
        let total: u64 = lens.iter().sum();
        let streams: Vec<VisitStream> = lens
            .iter()
            .enumerate()
            .map(|(i, len)| {
                Box::new(StridedScan::new(i as u64 * 100_000, 1, *len, 1, 0)) as VisitStream
            })
            .collect();
        prop_assume!(!streams.is_empty());
        let visits = collect(Interleave::new(streams, burst));
        prop_assert_eq!(visits.len() as u64, total);
    }

    /// Alternation rounds have length 3n and stay inside the two
    /// regions.
    #[test]
    fn alternation_bounds(n in 1u64..150, rounds in 1u64..4) {
        let visits = collect(Alternation::new(100, n, rounds, 1, 0));
        prop_assert_eq!(visits.len() as u64, rounds * 3 * n);
        prop_assert!(visits.iter().all(|v| (100..100 + 2 * n).contains(&v.page)));
    }

    /// Random walks are reproducible and bounded.
    #[test]
    fn random_walk_bounds(region in 1u64..500, count in 0u64..300, seed in 0u64..100) {
        let a = collect(RandomWalk::new(7, region, count, 1, 0, seed));
        let b = collect(RandomWalk::new(7, region, count, 1, 0, seed));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len() as u64, count);
        prop_assert!(a.iter().all(|v| (7..7 + region).contains(&v.page)));
    }
}
