//! Run-length scaling.
//!
//! The paper simulates one billion instructions per application after a
//! two-billion-instruction fast-forward. Replaying 10⁹ references per
//! configuration would make the full sweep take hours for no additional
//! information (accuracies converge long before), so every application
//! model is parameterised by a [`Scale`] that multiplies the number of
//! *revisits* (laps, cycle repetitions) while keeping footprints fixed —
//! miss rates and prediction accuracies are invariant to this within
//! noise, which `tests/scaling.rs` asserts.

use serde::{Deserialize, Serialize};

/// A multiplier on each application's revisit counts.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::Scale;
///
/// assert!(Scale::TINY.factor() < Scale::STANDARD.factor());
/// assert_eq!(Scale::new(3).factor(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Scale(u32);

impl Scale {
    /// Smallest useful runs, for unit tests (tens of thousands of
    /// references per application).
    pub const TINY: Scale = Scale(1);

    /// Quick exploratory runs.
    pub const SMALL: Scale = Scale(2);

    /// The default for regenerating the paper's tables and figures
    /// (hundreds of thousands of references per application).
    pub const STANDARD: Scale = Scale(6);

    /// Creates a custom scale.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn new(factor: u32) -> Self {
        assert!(factor > 0, "scale factor must be at least 1");
        Scale(factor)
    }

    /// The revisit multiplier.
    pub const fn factor(self) -> u32 {
        self.0
    }

    /// Multiplies a base count by the scale factor.
    pub const fn scaled(self, base: u64) -> u64 {
        base * self.0 as u64
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::STANDARD
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_order() {
        assert!(Scale::TINY < Scale::SMALL);
        assert!(Scale::SMALL < Scale::STANDARD);
    }

    #[test]
    fn scaled_multiplies() {
        assert_eq!(Scale::new(4).scaled(10), 40);
        assert_eq!(Scale::TINY.scaled(7), 7);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_scale_panics() {
        let _ = Scale::new(0);
    }

    #[test]
    fn display() {
        assert_eq!(Scale::STANDARD.to_string(), "x6");
    }
}
