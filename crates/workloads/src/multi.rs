//! Multiprogrammed interleaves: several streams replayed as one machine.
//!
//! The paper evaluates each application in isolation and names
//! multiprogramming — where context switches flush translation and
//! prediction state — as the open methodological question (§4). A
//! [`MultiStreamSpec`] composes any mix of registered application models
//! and recorded traces (anything implementing [`StreamSpec`]) into one
//! deterministic interleaved reference stream under a pluggable
//! [`Schedule`], the way a consolidated machine sees the union of its
//! tenants' miss streams.
//!
//! The composition is itself a [`StreamSpec`]: the interleave has a
//! name, an exact [`stream_len`](StreamSpec::stream_len), and a
//! [`workload`](StreamSpec::workload) whose `fill_batch`/`skip_accesses`
//! obey the same splittability contract as every other stream — so
//! `run_app`, `sweep` and `run_app_sharded` take a mix unchanged. The
//! context-switch-aware runners (`run_mix` / `run_mix_sharded` in
//! `tlbsim-sim`) additionally walk the interleave segment-by-segment via
//! [`MultiStreamSpec::segments`] to flush at switches and attribute
//! statistics per stream.
//!
//! Everything is arithmetic over the component stream lengths: the
//! schedule never expands an access to decide what runs next, so
//! planning a multi-million-access interleave (or seeking into the
//! middle of one) costs time proportional to the number of *segments*,
//! not accesses.

use std::sync::Arc;

use crate::gen::{AccessSource, Workload};
use crate::scale::Scale;
use crate::spec::StreamSpec;

/// Maximum number of streams one [`MultiStreamSpec`] may interleave.
///
/// The per-stream statistics breakdown (`PerStreamStats` in
/// `tlbsim-sim`) and the ASID tag space (`tlbsim_core::Asid` is 16
/// bits) both scale past this comfortably; the bound exists so a typo'd
/// stream count fails loudly instead of planning a million-segment
/// interleave. Consolidation studies at hundreds of streams are in
/// range — per-stream state is boxed, not inline.
pub const MAX_STREAMS: usize = 1024;

/// How the interleave rotates between streams.
///
/// All three schedules are deterministic functions of the spec — two
/// interleaves built from the same streams, scale and schedule are
/// bit-identical. A stream that exhausts simply drops out of the
/// rotation; the interleave ends when every stream is exhausted, so the
/// composed length is always the exact sum of the component lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule {
    /// Every stream runs `quantum` accesses per turn, in spec order.
    RoundRobin {
        /// Accesses per scheduling quantum (at least 1).
        quantum: u64,
    },
    /// Stream `i` runs `quanta[i]` accesses per turn — weighted
    /// round-robin, for tenants of different priorities.
    Weighted {
        /// Per-stream quantum, one entry per stream (each at least 1).
        quanta: Vec<u64>,
    },
    /// Quantum lengths drawn per turn from a seeded xorshift64 generator
    /// in `[min_quantum, max_quantum]` — rotation stays round-robin, but
    /// slice lengths jitter the way preemption points do on a loaded
    /// machine. Fully reproducible from `seed`.
    Random {
        /// Generator seed (any value; 0 is remapped internally).
        seed: u64,
        /// Smallest quantum the generator may draw (at least 1).
        min_quantum: u64,
        /// Largest quantum the generator may draw (`>= min_quantum`).
        max_quantum: u64,
    },
}

/// Errors composing a [`MultiStreamSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixError {
    /// No streams were given.
    NoStreams,
    /// More than [`MAX_STREAMS`] streams were given.
    TooManyStreams {
        /// Streams actually given.
        count: usize,
    },
    /// A schedule quantum was zero.
    ZeroQuantum,
    /// `Schedule::Weighted` has a quanta list whose length differs from
    /// the stream count.
    WeightedLenMismatch {
        /// Streams in the mix.
        streams: usize,
        /// Entries in the quanta list.
        quanta: usize,
    },
    /// `Schedule::Random` has `min_quantum > max_quantum`.
    BadRandomRange {
        /// The offending minimum.
        min_quantum: u64,
        /// The offending maximum.
        max_quantum: u64,
    },
}

impl std::fmt::Display for MixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MixError::NoStreams => f.write_str("a multi-stream mix needs at least one stream"),
            MixError::TooManyStreams { count } => {
                write!(
                    f,
                    "mix of {count} streams exceeds the maximum of {MAX_STREAMS}"
                )
            }
            MixError::ZeroQuantum => f.write_str("schedule quantum must be at least 1"),
            MixError::WeightedLenMismatch { streams, quanta } => write!(
                f,
                "weighted schedule lists {quanta} quanta for {streams} streams"
            ),
            MixError::BadRandomRange {
                min_quantum,
                max_quantum,
            } => write!(
                f,
                "random schedule range [{min_quantum}, {max_quantum}] is empty"
            ),
        }
    }
}

impl std::error::Error for MixError {}

/// One scheduled slice of the interleave: `len` consecutive accesses of
/// stream `stream`, starting at that stream's access `start`.
///
/// Segments are emitted in merged-stream order; concatenating every
/// segment's slice reproduces the interleaved stream exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Index into [`MultiStreamSpec::streams`].
    pub stream: usize,
    /// Position of the slice within its own stream.
    pub start: u64,
    /// Accesses in the slice (at least 1).
    pub len: u64,
}

/// A deterministic multiprogrammed interleave of up to [`MAX_STREAMS`]
/// reference streams.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tlbsim_workloads::{find_app, MultiStreamSpec, Scale, Schedule, StreamSpec};
///
/// let mix = MultiStreamSpec::new(
///     vec![
///         Arc::new(find_app("gap").expect("registered")) as Arc<dyn StreamSpec>,
///         Arc::new(find_app("mcf").expect("registered")),
///     ],
///     Schedule::RoundRobin { quantum: 1000 },
/// )
/// .expect("valid mix");
///
/// // The interleave is exactly the union of its components…
/// let expected: u64 = mix
///     .streams()
///     .iter()
///     .map(|s| s.stream_len(Scale::TINY))
///     .sum();
/// assert_eq!(mix.stream_len(Scale::TINY), expected);
/// // …and runs through the same Workload surface as any single stream.
/// assert_eq!(mix.workload(Scale::TINY).count() as u64, expected);
/// ```
pub struct MultiStreamSpec {
    name: String,
    streams: Vec<Arc<dyn StreamSpec>>,
    schedule: Schedule,
}

impl MultiStreamSpec {
    /// Composes `streams` under `schedule`.
    ///
    /// The mix's name is `mix(a+b+…)` over the component names.
    ///
    /// # Errors
    ///
    /// [`MixError`] when the stream list is empty or longer than
    /// [`MAX_STREAMS`], or the schedule is malformed (zero quantum,
    /// weighted-length mismatch, empty random range).
    pub fn new(streams: Vec<Arc<dyn StreamSpec>>, schedule: Schedule) -> Result<Self, MixError> {
        if streams.is_empty() {
            return Err(MixError::NoStreams);
        }
        if streams.len() > MAX_STREAMS {
            return Err(MixError::TooManyStreams {
                count: streams.len(),
            });
        }
        match &schedule {
            Schedule::RoundRobin { quantum } => {
                if *quantum == 0 {
                    return Err(MixError::ZeroQuantum);
                }
            }
            Schedule::Weighted { quanta } => {
                if quanta.len() != streams.len() {
                    return Err(MixError::WeightedLenMismatch {
                        streams: streams.len(),
                        quanta: quanta.len(),
                    });
                }
                if quanta.contains(&0) {
                    return Err(MixError::ZeroQuantum);
                }
            }
            Schedule::Random {
                min_quantum,
                max_quantum,
                ..
            } => {
                if *min_quantum == 0 {
                    return Err(MixError::ZeroQuantum);
                }
                if min_quantum > max_quantum {
                    return Err(MixError::BadRandomRange {
                        min_quantum: *min_quantum,
                        max_quantum: *max_quantum,
                    });
                }
            }
        }
        let name = format!(
            "mix({})",
            streams
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join("+")
        );
        Ok(MultiStreamSpec {
            name,
            streams,
            schedule,
        })
    }

    /// The component streams, in rotation order.
    pub fn streams(&self) -> &[Arc<dyn StreamSpec>] {
        &self.streams
    }

    /// The schedule driving the rotation.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Component names, in rotation order.
    pub fn stream_names(&self) -> Vec<&str> {
        self.streams.iter().map(|s| s.name()).collect()
    }

    /// The deterministic segment sequence of the interleave at `scale` —
    /// the schedule's decisions materialised as arithmetic, without
    /// expanding a single access.
    pub fn segments(&self, scale: Scale) -> Segments {
        Segments::new(
            self.streams.iter().map(|s| s.stream_len(scale)).collect(),
            self.schedule.clone(),
        )
    }
}

impl std::fmt::Debug for MultiStreamSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiStreamSpec")
            .field("name", &self.name)
            .field("schedule", &self.schedule)
            .finish()
    }
}

impl StreamSpec for MultiStreamSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn workload(&self, scale: Scale) -> Workload {
        Workload::from_source(
            self.name.clone(),
            Box::new(InterleaveSource {
                workloads: self.streams.iter().map(|s| s.workload(scale)).collect(),
                segments: self.segments(scale),
                current: None,
            }),
        )
    }

    fn stream_len(&self, scale: Scale) -> u64 {
        self.streams.iter().map(|s| s.stream_len(scale)).sum()
    }

    fn quarantined_records(&self) -> u64 {
        self.streams.iter().map(|s| s.quarantined_records()).sum()
    }
}

/// Iterator over the [`Segment`]s of an interleave (see
/// [`MultiStreamSpec::segments`]).
#[derive(Debug, Clone)]
pub struct Segments {
    remaining: Vec<u64>,
    consumed: Vec<u64>,
    schedule: Schedule,
    cursor: usize,
    rng: u64,
}

impl Segments {
    fn new(lens: Vec<u64>, schedule: Schedule) -> Self {
        let rng = match &schedule {
            // 0 would be a fixed point of xorshift; remap it.
            Schedule::Random { seed, .. } => (*seed).max(1),
            _ => 0,
        };
        Segments {
            consumed: vec![0; lens.len()],
            remaining: lens,
            schedule,
            cursor: 0,
            rng,
        }
    }

    /// Advances the xorshift64 state and returns the next draw.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

impl Iterator for Segments {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        let n = self.remaining.len();
        // Round-robin to the next stream with accesses left.
        let stream = (0..n)
            .map(|offset| (self.cursor + offset) % n)
            .find(|i| self.remaining[*i] > 0)?;
        let quantum = match &self.schedule {
            Schedule::RoundRobin { quantum } => *quantum,
            Schedule::Weighted { quanta } => quanta[stream],
            Schedule::Random {
                min_quantum,
                max_quantum,
                ..
            } => {
                let (lo, hi) = (*min_quantum, *max_quantum);
                lo + self.next_rand() % (hi - lo + 1)
            }
        };
        let len = quantum.min(self.remaining[stream]);
        let segment = Segment {
            stream,
            start: self.consumed[stream],
            len,
        };
        self.consumed[stream] += len;
        self.remaining[stream] -= len;
        self.cursor = (stream + 1) % n;
        Some(segment)
    }
}

/// The [`AccessSource`] behind an interleaved workload: one component
/// workload per stream, drained segment-by-segment in schedule order.
struct InterleaveSource {
    workloads: Vec<Workload>,
    segments: Segments,
    /// The in-progress segment: `(stream, accesses left in it)`.
    current: Option<(usize, u64)>,
}

impl InterleaveSource {
    /// The current segment, advancing the schedule when the previous one
    /// is drained. `None` when the interleave is exhausted.
    fn segment(&mut self) -> Option<(usize, u64)> {
        loop {
            match self.current {
                Some((_, 0)) | None => match self.segments.next() {
                    Some(seg) => self.current = Some((seg.stream, seg.len)),
                    None => return None,
                },
                Some(live) => return Some(live),
            }
        }
    }
}

impl AccessSource for InterleaveSource {
    fn fill(&mut self, buf: &mut [tlbsim_core::MemoryAccess]) -> usize {
        let mut filled = 0;
        while filled < buf.len() {
            let Some((stream, left)) = self.segment() else {
                break;
            };
            let want = left.min((buf.len() - filled) as u64) as usize;
            let got = self.workloads[stream].fill_batch(&mut buf[filled..filled + want]);
            debug_assert_eq!(
                got, want,
                "stream {stream} ended before its reported stream_len"
            );
            filled += got;
            self.current = Some((stream, left - got as u64));
            if got == 0 {
                break;
            }
        }
        filled
    }

    fn skip(&mut self, n: u64) -> u64 {
        let mut remaining = n;
        while remaining > 0 {
            let Some((stream, left)) = self.segment() else {
                break;
            };
            let step = left.min(remaining);
            let skipped = self.workloads[stream].skip_accesses(step);
            debug_assert_eq!(
                skipped, step,
                "stream {stream} ended before its reported stream_len"
            );
            self.current = Some((stream, left - skipped));
            remaining -= skipped;
            if skipped == 0 {
                break;
            }
        }
        n - remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::find_app;
    use tlbsim_core::MemoryAccess;

    fn mix_of(names: &[&str], schedule: Schedule) -> MultiStreamSpec {
        let streams: Vec<Arc<dyn StreamSpec>> = names
            .iter()
            .map(|n| Arc::new(find_app(n).unwrap()) as Arc<dyn StreamSpec>)
            .collect();
        MultiStreamSpec::new(streams, schedule).unwrap()
    }

    #[test]
    fn constructor_rejects_malformed_mixes() {
        assert_eq!(
            MultiStreamSpec::new(Vec::new(), Schedule::RoundRobin { quantum: 1 }).unwrap_err(),
            MixError::NoStreams
        );
        let many: Vec<Arc<dyn StreamSpec>> = (0..MAX_STREAMS + 1)
            .map(|_| Arc::new(find_app("gap").unwrap()) as Arc<dyn StreamSpec>)
            .collect();
        assert!(matches!(
            MultiStreamSpec::new(many, Schedule::RoundRobin { quantum: 1 }).unwrap_err(),
            MixError::TooManyStreams { count } if count == MAX_STREAMS + 1
        ));
        let one: Vec<Arc<dyn StreamSpec>> =
            vec![Arc::new(find_app("gap").unwrap()) as Arc<dyn StreamSpec>];
        assert_eq!(
            MultiStreamSpec::new(one.clone(), Schedule::RoundRobin { quantum: 0 }).unwrap_err(),
            MixError::ZeroQuantum
        );
        assert!(matches!(
            MultiStreamSpec::new(one.clone(), Schedule::Weighted { quanta: vec![1, 2] })
                .unwrap_err(),
            MixError::WeightedLenMismatch {
                streams: 1,
                quanta: 2
            }
        ));
        assert_eq!(
            MultiStreamSpec::new(one.clone(), Schedule::Weighted { quanta: vec![0] }).unwrap_err(),
            MixError::ZeroQuantum
        );
        assert!(matches!(
            MultiStreamSpec::new(
                one,
                Schedule::Random {
                    seed: 1,
                    min_quantum: 10,
                    max_quantum: 3
                }
            )
            .unwrap_err(),
            MixError::BadRandomRange { .. }
        ));
        for err in [
            MixError::NoStreams,
            MixError::TooManyStreams { count: 9 },
            MixError::ZeroQuantum,
            MixError::WeightedLenMismatch {
                streams: 1,
                quanta: 2,
            },
            MixError::BadRandomRange {
                min_quantum: 10,
                max_quantum: 3,
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn segments_cover_every_stream_exactly_in_rotation_order() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 1000 });
        let lens: Vec<u64> = mix
            .streams()
            .iter()
            .map(|s| s.stream_len(Scale::TINY))
            .collect();
        let mut consumed = vec![0u64; lens.len()];
        let mut merged = 0u64;
        let mut previous: Option<usize> = None;
        for seg in mix.segments(Scale::TINY) {
            assert_eq!(seg.start, consumed[seg.stream], "segments out of order");
            assert!(seg.len >= 1);
            // Two live streams under round-robin: consecutive segments
            // always switch.
            if consumed.iter().zip(&lens).filter(|(c, l)| c < l).count() > 1 {
                assert_ne!(Some(seg.stream), previous, "missed rotation");
            }
            consumed[seg.stream] += seg.len;
            merged += seg.len;
            previous = Some(seg.stream);
        }
        assert_eq!(consumed, lens, "segments must cover each stream exactly");
        assert_eq!(merged, mix.stream_len(Scale::TINY));
    }

    #[test]
    fn weighted_segments_use_per_stream_quanta() {
        let mix = mix_of(
            &["gap", "mcf"],
            Schedule::Weighted {
                quanta: vec![300, 700],
            },
        );
        let segments: Vec<Segment> = mix.segments(Scale::TINY).collect();
        assert_eq!(
            segments[0],
            Segment {
                stream: 0,
                start: 0,
                len: 300
            }
        );
        assert_eq!(
            segments[1],
            Segment {
                stream: 1,
                start: 0,
                len: 700
            }
        );
        assert_eq!(segments[2].stream, 0);
        assert_eq!(segments[2].start, 300);
    }

    #[test]
    fn random_segments_are_seed_deterministic_and_bounded() {
        let schedule = Schedule::Random {
            seed: 42,
            min_quantum: 64,
            max_quantum: 512,
        };
        let a: Vec<Segment> = mix_of(&["gap", "eon"], schedule.clone())
            .segments(Scale::TINY)
            .collect();
        let b: Vec<Segment> = mix_of(&["gap", "eon"], schedule)
            .segments(Scale::TINY)
            .collect();
        assert_eq!(a, b, "same seed must give the same schedule");
        let total: u64 = a.iter().map(|s| s.len).sum();
        let mix = mix_of(
            &["gap", "eon"],
            Schedule::Random {
                seed: 42,
                min_quantum: 64,
                max_quantum: 512,
            },
        );
        assert_eq!(total, mix.stream_len(Scale::TINY));
        // Every segment is quantum-bounded except a stream's final
        // (remainder) one.
        let mut seen_last = [false; 2];
        for seg in &a {
            assert!(seg.len <= 512);
            if seg.len < 64 {
                assert!(!seen_last[seg.stream], "short segment before the tail");
                seen_last[seg.stream] = true;
            }
        }
        let different: Vec<Segment> = mix_of(
            &["gap", "eon"],
            Schedule::Random {
                seed: 43,
                min_quantum: 64,
                max_quantum: 512,
            },
        )
        .segments(Scale::TINY)
        .collect();
        assert_ne!(a, different, "different seeds should jitter differently");
    }

    #[test]
    fn interleaved_workload_is_the_segment_order_concatenation() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 777 });
        // Expand by hand from per-stream workloads following the
        // segment plan…
        let mut by_hand: Vec<MemoryAccess> = Vec::new();
        let mut streams: Vec<Workload> = mix
            .streams()
            .iter()
            .map(|s| s.workload(Scale::TINY))
            .collect();
        for seg in mix.segments(Scale::TINY) {
            by_hand.extend(streams[seg.stream].by_ref().take(seg.len as usize));
        }
        // …and compare to the composed workload.
        let composed: Vec<MemoryAccess> = mix.workload(Scale::TINY).collect();
        assert_eq!(composed, by_hand);
    }

    #[test]
    fn one_stream_mix_is_bit_identical_to_the_stream_itself() {
        let mix = mix_of(&["gap"], Schedule::RoundRobin { quantum: 100 });
        let plain: Vec<MemoryAccess> = find_app("gap").unwrap().workload(Scale::TINY).collect();
        let mixed: Vec<MemoryAccess> = mix.workload(Scale::TINY).collect();
        assert_eq!(mixed, plain);
    }

    #[test]
    fn skip_then_continue_matches_the_full_interleave() {
        let mix = mix_of(&["gap", "eon"], Schedule::RoundRobin { quantum: 913 });
        let full: Vec<MemoryAccess> = mix.workload(Scale::TINY).collect();
        // Split points both inside and exactly on segment boundaries.
        for split in [0u64, 1, 912, 913, 914, 5000, full.len() as u64] {
            let mut w = mix.workload(Scale::TINY);
            assert_eq!(w.skip_accesses(split), split, "skip({split})");
            let tail: Vec<MemoryAccess> = w.collect();
            assert_eq!(tail, full[split as usize..], "diverged after skip({split})");
        }
        let mut w = mix.workload(Scale::TINY);
        assert_eq!(w.skip_accesses(u64::MAX), full.len() as u64);
        assert!(w.next().is_none());
    }

    #[test]
    fn fill_batch_is_chunk_size_invariant() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 500 });
        let full: Vec<MemoryAccess> = mix.workload(Scale::TINY).collect();
        for batch in [1usize, 7, 499, 500, 501, 4096] {
            let mut w = mix.workload(Scale::TINY);
            let mut buf = vec![MemoryAccess::read(0, 0); batch];
            let mut streamed = Vec::new();
            loop {
                let n = w.fill_batch(&mut buf);
                if n == 0 {
                    break;
                }
                streamed.extend_from_slice(&buf[..n]);
            }
            assert_eq!(streamed, full, "batch {batch}");
        }
    }

    #[test]
    fn mix_name_and_debug_compose_component_names() {
        let mix = mix_of(&["gap", "mcf"], Schedule::RoundRobin { quantum: 10 });
        assert_eq!(StreamSpec::name(&mix), "mix(gap+mcf)");
        assert_eq!(mix.stream_names(), vec!["gap", "mcf"]);
        assert!(format!("{mix:?}").contains("mix(gap+mcf)"));
        assert_eq!(
            mix.schedule(),
            &Schedule::RoundRobin { quantum: 10 },
            "schedule accessor"
        );
    }
}
