//! The visit/emit generator framework.
//!
//! Application models are built in two layers:
//!
//! 1. a **visit stream** — an iterator of [`Visit`]s, each naming a
//!    virtual page, how many references land on it before the pattern
//!    moves on, and the PC of the instruction loop touching it; this is
//!    where all pattern logic (strides, chases, cycles) lives;
//! 2. an **emitter** ([`Emit`]) that expands visits into concrete
//!    [`MemoryAccess`]es with intra-page offsets and a read/write mix.
//!
//! Keeping pattern logic at page granularity makes the models easy to
//! reason about — the TLB only ever sees pages — while the emitter
//! supplies the realistic byte-level stream the simulator and the trace
//! formats consume.

use tlbsim_core::{AccessKind, MemoryAccess, PageSize, Pc, VirtAddr};

/// One page visit produced by a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visit {
    /// Virtual page number visited.
    pub page: u64,
    /// References issued to the page during the visit (at least 1).
    pub refs: u32,
    /// PC of the loop body doing the touching.
    pub pc: u64,
}

impl Visit {
    /// Creates a visit.
    pub fn new(page: u64, refs: u32, pc: u64) -> Self {
        Visit {
            page,
            refs: refs.max(1),
            pc,
        }
    }
}

/// A boxed visit stream (the unit application models compose).
pub type VisitStream = Box<dyn Iterator<Item = Visit> + Send>;

/// Expands visits into memory accesses.
///
/// Within a visit the accesses walk cache-line-sized offsets inside the
/// page; every fourth access is a write, approximating the load/store mix
/// of compiled code.
#[derive(Debug)]
pub struct Emit<I> {
    visits: I,
    page_size: PageSize,
    current: Option<(Visit, u32)>,
    emitted: u64,
}

impl<I: Iterator<Item = Visit>> Emit<I> {
    /// Wraps a visit stream.
    pub fn new(visits: I, page_size: PageSize) -> Self {
        Emit {
            visits,
            page_size,
            current: None,
            emitted: 0,
        }
    }

    /// Skips the next `n` accesses without expanding them, returning how
    /// many were actually skipped (less than `n` only at end of stream).
    ///
    /// This is the seek operation behind sharded execution: a shard
    /// starting at stream position `p` skips `p` accesses at **visit**
    /// granularity — whole visits are consumed by arithmetic on their
    /// `refs` counts, never emitted — so positioning costs one pass over
    /// the prefix's visits rather than its (typically much more
    /// numerous) accesses. The emitted-access counter advances exactly
    /// as if the accesses had been drawn, so the read/write mix and
    /// intra-page offsets after the skip are bit-identical to a stream
    /// that generated the prefix.
    pub fn skip_accesses(&mut self, n: u64) -> u64 {
        let mut remaining = n;
        while remaining > 0 {
            let (visit, done) = match self.current.take() {
                Some(in_progress) => in_progress,
                None => match self.visits.next() {
                    Some(visit) => (visit, 0),
                    None => break,
                },
            };
            let left = u64::from(visit.refs - done);
            if left > remaining {
                self.current = Some((visit, done + remaining as u32));
                self.emitted += remaining;
                remaining = 0;
            } else {
                self.emitted += left;
                remaining -= left;
            }
        }
        n - remaining
    }

    /// Fills `buf` with the next accesses of the stream, returning how
    /// many were written (less than `buf.len()` only at end of stream).
    ///
    /// This is the chunk-at-a-time generation path: visits are expanded
    /// in a tight loop directly into the caller's reusable buffer, so a
    /// sweep pipeline streams whole workloads without a per-access
    /// iterator round-trip or any allocation.
    ///
    /// # Panics
    ///
    /// Panics on an empty `buf` — a zero-length chunk would be
    /// indistinguishable from end of stream under the "0 means
    /// exhausted" contract.
    pub fn fill(&mut self, buf: &mut [MemoryAccess]) -> usize {
        assert!(!buf.is_empty(), "fill requires a non-empty batch buffer");
        let line = 64u64;
        let lines_per_page = self.page_size.bytes() / line;
        let mut filled = 0;
        'refill: while filled < buf.len() {
            let (visit, mut done) = match self.current.take() {
                Some(in_progress) => in_progress,
                None => match self.visits.next() {
                    Some(visit) => (visit, 0),
                    None => break,
                },
            };
            let base = visit.page << self.page_size.bits();
            let pc = Pc::new(visit.pc);
            while done < visit.refs {
                if filled == buf.len() {
                    self.current = Some((visit, done));
                    break 'refill;
                }
                let offset = (done as u64 % lines_per_page) * line;
                let kind = if self.emitted % 4 == 3 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                self.emitted += 1;
                buf[filled] = MemoryAccess {
                    pc,
                    vaddr: VirtAddr::new(base | offset),
                    kind,
                };
                filled += 1;
                done += 1;
            }
        }
        filled
    }
}

impl<I: Iterator<Item = Visit>> Iterator for Emit<I> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<Self::Item> {
        // Single source of truth: one-element batch through `fill`, so
        // the iterator and batched paths cannot drift apart.
        let mut one = [MemoryAccess::read(0, 0)];
        (self.fill(&mut one) == 1).then(|| one[0])
    }
}

/// A pluggable access-stream source a [`Workload`] can be built over.
///
/// The synthetic generators come built in ([`Workload::from_visits`]);
/// this trait is the seam that lets *recorded* streams — the mmap trace
/// replay of `TraceWorkload` — flow through the identical streaming
/// surface (`fill_batch` / `skip_accesses`) and therefore through every
/// engine, the sweep executor and the sharded runner unchanged.
///
/// Contract (shared with the generators, asserted by the differential
/// trace tests):
///
/// * [`fill`](AccessSource::fill) writes the next accesses into the
///   caller's buffer and returns the count; `0` means exhausted; the
///   buffer is never empty;
/// * [`skip`](AccessSource::skip) advances past `n` accesses without
///   producing them and returns how many were skipped (less than `n`
///   only at end of stream); the stream continues bit-identically to
///   one that generated the prefix.
pub trait AccessSource: Send {
    /// Fills `buf` with the next accesses, returning how many were
    /// written; zero means the source is exhausted.
    fn fill(&mut self, buf: &mut [MemoryAccess]) -> usize;

    /// Fast-forwards past `n` accesses, returning how many were
    /// actually skipped.
    fn skip(&mut self, n: u64) -> u64;
}

/// The two stream shapes behind a [`Workload`]: generated visits
/// (kept as a concrete type — the hot path of every synthetic run —
/// so generator fills stay monomorphised) or a boxed custom source.
enum Stream {
    Visits(Emit<VisitStream>),
    Source(Box<dyn AccessSource>),
}

/// A complete, runnable reference stream with a name.
///
/// `Workload` is itself an `Iterator<Item = MemoryAccess>`; application
/// models hand one to the simulator or to a trace writer.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::{Visit, Workload};
///
/// let w = Workload::from_visits(
///     "two-pages",
///     Box::new([Visit::new(1, 2, 0x40), Visit::new(2, 1, 0x40)].into_iter()),
/// );
/// assert_eq!(w.count(), 3);
/// ```
pub struct Workload {
    name: String,
    stream: Stream,
}

impl Workload {
    /// Builds a workload from a visit stream with the default 4 KiB page
    /// size.
    pub fn from_visits(name: impl Into<String>, visits: VisitStream) -> Self {
        Workload {
            name: name.into(),
            stream: Stream::Visits(Emit::new(visits, PageSize::DEFAULT)),
        }
    }

    /// Builds a workload over any [`AccessSource`] (e.g. a recorded
    /// trace replayed through `TraceWorkload`).
    pub fn from_source(name: impl Into<String>, source: Box<dyn AccessSource>) -> Self {
        Workload {
            name: name.into(),
            stream: Stream::Source(source),
        }
    }

    /// The workload's name (usually the application name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fills `buf` with the next accesses of the stream, returning how
    /// many were written; zero means the workload is exhausted. `buf`
    /// must be non-empty (panics otherwise — see [`Emit::fill`]).
    ///
    /// Interleaves correctly with [`Iterator::next`] — both consume the
    /// same underlying stream — so callers can mix the two, though the
    /// batched form is the one the engines' hot loops use.
    ///
    /// # Examples
    ///
    /// ```
    /// use tlbsim_core::MemoryAccess;
    /// use tlbsim_workloads::{Visit, Workload};
    ///
    /// let mut w = Workload::from_visits(
    ///     "three-refs",
    ///     Box::new([Visit::new(1, 3, 0x40)].into_iter()),
    /// );
    /// let mut buf = vec![MemoryAccess::read(0, 0); 2];
    /// assert_eq!(w.fill_batch(&mut buf), 2);
    /// assert_eq!(w.fill_batch(&mut buf), 1);
    /// assert_eq!(w.fill_batch(&mut buf), 0);
    /// ```
    pub fn fill_batch(&mut self, buf: &mut [MemoryAccess]) -> usize {
        match &mut self.stream {
            Stream::Visits(emit) => emit.fill(buf),
            Stream::Source(source) => {
                assert!(
                    !buf.is_empty(),
                    "fill_batch requires a non-empty batch buffer"
                );
                source.fill(buf)
            }
        }
    }

    /// Fast-forwards the stream past the next `n` accesses without
    /// generating them, returning how many were actually skipped (less
    /// than `n` only when the stream ends first).
    ///
    /// Skipping happens at visit granularity (see [`Emit::skip_accesses`]): the
    /// cost is proportional to the number of *visits* in the skipped
    /// prefix, not the number of accesses, and the stream continues
    /// bit-identically to one that generated the prefix — the contract
    /// that lets a shard of a partitioned run start mid-stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use tlbsim_core::MemoryAccess;
    /// use tlbsim_workloads::{Visit, Workload};
    ///
    /// let visits = || Box::new([Visit::new(1, 3, 0x40), Visit::new(2, 2, 0x44)].into_iter());
    /// let mut skipped = Workload::from_visits("split", visits());
    /// assert_eq!(skipped.skip_accesses(2), 2);
    /// let tail: Vec<MemoryAccess> = skipped.collect();
    /// let full: Vec<MemoryAccess> = Workload::from_visits("full", visits()).collect();
    /// assert_eq!(tail, full[2..]);
    /// ```
    pub fn skip_accesses(&mut self, n: u64) -> u64 {
        match &mut self.stream {
            Stream::Visits(emit) => emit.skip_accesses(n),
            Stream::Source(source) => source.skip(n),
        }
    }
}

impl Iterator for Workload {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<Self::Item> {
        // Single source of truth: one-element batch through
        // `fill_batch`, so the iterator and batched paths cannot drift
        // apart for either stream shape.
        let mut one = [MemoryAccess::read(0, 0)];
        (self.fill_batch(&mut one) == 1).then(|| one[0])
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_expands_refs_per_visit() {
        let visits = vec![Visit::new(10, 3, 0x40), Visit::new(11, 1, 0x44)];
        let accesses: Vec<MemoryAccess> =
            Emit::new(visits.into_iter(), PageSize::DEFAULT).collect();
        assert_eq!(accesses.len(), 4);
        assert!(accesses[..3]
            .iter()
            .all(|a| PageSize::DEFAULT.page_of(a.vaddr).number() == 10));
        assert_eq!(PageSize::DEFAULT.page_of(accesses[3].vaddr).number(), 11);
        assert_eq!(accesses[3].pc.raw(), 0x44);
    }

    #[test]
    fn zero_ref_visits_are_promoted_to_one() {
        let v = Visit::new(1, 0, 0);
        assert_eq!(v.refs, 1);
    }

    #[test]
    fn offsets_stay_inside_the_page() {
        let visits = vec![Visit::new(7, 200, 0)];
        for a in Emit::new(visits.into_iter(), PageSize::DEFAULT) {
            assert_eq!(PageSize::DEFAULT.page_of(a.vaddr).number(), 7);
        }
    }

    #[test]
    fn read_write_mix_is_three_to_one() {
        let visits = vec![Visit::new(1, 100, 0)];
        let writes = Emit::new(visits.into_iter(), PageSize::DEFAULT)
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        assert_eq!(writes, 25);
    }

    #[test]
    fn workload_reports_name() {
        let w = Workload::from_visits("x", Box::new(std::iter::empty()));
        assert_eq!(w.name(), "x");
        assert_eq!(format!("{w:?}"), "Workload { name: \"x\" }");
    }

    #[test]
    fn fill_batch_equals_iterator_expansion() {
        let visits = || {
            vec![
                Visit::new(10, 3, 0x40),
                Visit::new(11, 1, 0x44),
                Visit::new(12, 7, 0x48),
                Visit::new(13, 2, 0x4c),
            ]
        };
        let via_iter: Vec<MemoryAccess> =
            Emit::new(visits().into_iter(), PageSize::DEFAULT).collect();
        // Batch sizes that do and do not divide visit boundaries.
        for batch_len in [1usize, 2, 5, 64] {
            let mut emit = Emit::new(visits().into_iter(), PageSize::DEFAULT);
            let mut buf = vec![MemoryAccess::read(0, 0); batch_len];
            let mut via_fill = Vec::new();
            loop {
                let n = emit.fill(&mut buf);
                if n == 0 {
                    break;
                }
                via_fill.extend_from_slice(&buf[..n]);
            }
            assert_eq!(via_fill, via_iter, "batch_len {batch_len}");
        }
    }

    #[test]
    fn skip_then_continue_is_bit_identical_to_the_sequential_stream() {
        let visits = || {
            vec![
                Visit::new(10, 3, 0x40),
                Visit::new(11, 1, 0x44),
                Visit::new(12, 7, 0x48),
                Visit::new(13, 2, 0x4c),
            ]
        };
        let full: Vec<MemoryAccess> = Emit::new(visits().into_iter(), PageSize::DEFAULT).collect();
        // Every split point, including 0 (no-op) and 13 (exact end):
        // offsets and the read/write mix must continue as if the prefix
        // had been generated.
        for split in 0..=full.len() as u64 {
            let mut emit = Emit::new(visits().into_iter(), PageSize::DEFAULT);
            assert_eq!(
                emit.skip_accesses(split),
                split,
                "skip consumed the wrong count"
            );
            let tail: Vec<MemoryAccess> = emit.collect();
            assert_eq!(tail, full[split as usize..], "diverged after skip({split})");
        }
    }

    #[test]
    fn skip_past_the_end_reports_the_shortfall() {
        let visits = vec![Visit::new(1, 4, 0)];
        let mut emit = Emit::new(visits.into_iter(), PageSize::DEFAULT);
        assert_eq!(emit.skip_accesses(10), 4);
        assert_eq!(emit.skip_accesses(1), 0);
        assert!(emit.next().is_none());
    }

    #[test]
    fn skip_interleaves_with_fill() {
        let visits = vec![
            Visit::new(1, 5, 0),
            Visit::new(2, 5, 0),
            Visit::new(3, 5, 0),
        ];
        let full: Vec<MemoryAccess> =
            Emit::new(visits.clone().into_iter(), PageSize::DEFAULT).collect();
        let mut emit = Emit::new(visits.into_iter(), PageSize::DEFAULT);
        let mut buf = vec![MemoryAccess::read(0, 0); 4];
        // fill 4, skip 3, fill the rest: [4..7) must be absent, the rest
        // identical to the sequential expansion.
        let n = emit.fill(&mut buf);
        assert_eq!(n, 4);
        assert_eq!(&buf[..n], &full[..4]);
        assert_eq!(emit.skip_accesses(3), 3);
        let rest: Vec<MemoryAccess> = emit.collect();
        assert_eq!(rest, full[7..]);
    }

    #[test]
    fn fill_batch_interleaves_with_next() {
        let visits = vec![Visit::new(1, 5, 0), Visit::new(2, 5, 0)];
        let expected: Vec<MemoryAccess> =
            Emit::new(visits.clone().into_iter(), PageSize::DEFAULT).collect();
        let mut emit = Emit::new(visits.into_iter(), PageSize::DEFAULT);
        let mut got = Vec::new();
        let mut buf = vec![MemoryAccess::read(0, 0); 3];
        // Batch of 3, one plain next(), then drain through the iterator:
        // both paths must consume the same underlying stream.
        let n = emit.fill(&mut buf);
        got.extend_from_slice(&buf[..n]);
        got.push(emit.next().unwrap());
        got.extend(emit.by_ref());
        assert_eq!(got, expected);
    }
}
