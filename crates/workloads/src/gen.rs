//! The visit/emit generator framework.
//!
//! Application models are built in two layers:
//!
//! 1. a **visit stream** — an iterator of [`Visit`]s, each naming a
//!    virtual page, how many references land on it before the pattern
//!    moves on, and the PC of the instruction loop touching it; this is
//!    where all pattern logic (strides, chases, cycles) lives;
//! 2. an **emitter** ([`Emit`]) that expands visits into concrete
//!    [`MemoryAccess`]es with intra-page offsets and a read/write mix.
//!
//! Keeping pattern logic at page granularity makes the models easy to
//! reason about — the TLB only ever sees pages — while the emitter
//! supplies the realistic byte-level stream the simulator and the trace
//! formats consume.

use tlbsim_core::{AccessKind, MemoryAccess, PageSize, Pc, VirtAddr};

/// One page visit produced by a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visit {
    /// Virtual page number visited.
    pub page: u64,
    /// References issued to the page during the visit (at least 1).
    pub refs: u32,
    /// PC of the loop body doing the touching.
    pub pc: u64,
}

impl Visit {
    /// Creates a visit.
    pub fn new(page: u64, refs: u32, pc: u64) -> Self {
        Visit {
            page,
            refs: refs.max(1),
            pc,
        }
    }
}

/// A boxed visit stream (the unit application models compose).
pub type VisitStream = Box<dyn Iterator<Item = Visit> + Send>;

/// Expands visits into memory accesses.
///
/// Within a visit the accesses walk cache-line-sized offsets inside the
/// page; every fourth access is a write, approximating the load/store mix
/// of compiled code.
#[derive(Debug)]
pub struct Emit<I> {
    visits: I,
    page_size: PageSize,
    current: Option<(Visit, u32)>,
    emitted: u64,
}

impl<I: Iterator<Item = Visit>> Emit<I> {
    /// Wraps a visit stream.
    pub fn new(visits: I, page_size: PageSize) -> Self {
        Emit {
            visits,
            page_size,
            current: None,
            emitted: 0,
        }
    }
}

impl<I: Iterator<Item = Visit>> Iterator for Emit<I> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((visit, done)) = self.current.take() {
                if done < visit.refs {
                    let line = 64u64;
                    let lines_per_page = self.page_size.bytes() / line;
                    let offset = (done as u64 % lines_per_page) * line;
                    let vaddr =
                        VirtAddr::new((visit.page << self.page_size.bits()) | offset);
                    let kind = if self.emitted % 4 == 3 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    self.emitted += 1;
                    self.current = Some((visit, done + 1));
                    return Some(MemoryAccess {
                        pc: Pc::new(visit.pc),
                        vaddr,
                        kind,
                    });
                }
            }
            let visit = self.visits.next()?;
            self.current = Some((visit, 0));
        }
    }
}

/// A complete, runnable reference stream with a name.
///
/// `Workload` is itself an `Iterator<Item = MemoryAccess>`; application
/// models hand one to the simulator or to a trace writer.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::{Visit, Workload};
///
/// let w = Workload::from_visits(
///     "two-pages",
///     Box::new([Visit::new(1, 2, 0x40), Visit::new(2, 1, 0x40)].into_iter()),
/// );
/// assert_eq!(w.count(), 3);
/// ```
pub struct Workload {
    name: String,
    stream: Emit<VisitStream>,
}

impl Workload {
    /// Builds a workload from a visit stream with the default 4 KiB page
    /// size.
    pub fn from_visits(name: impl Into<String>, visits: VisitStream) -> Self {
        Workload {
            name: name.into(),
            stream: Emit::new(visits, PageSize::DEFAULT),
        }
    }

    /// The workload's name (usually the application name).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Iterator for Workload {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<Self::Item> {
        self.stream.next()
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_expands_refs_per_visit() {
        let visits = vec![Visit::new(10, 3, 0x40), Visit::new(11, 1, 0x44)];
        let accesses: Vec<MemoryAccess> =
            Emit::new(visits.into_iter(), PageSize::DEFAULT).collect();
        assert_eq!(accesses.len(), 4);
        assert!(accesses[..3]
            .iter()
            .all(|a| PageSize::DEFAULT.page_of(a.vaddr).number() == 10));
        assert_eq!(PageSize::DEFAULT.page_of(accesses[3].vaddr).number(), 11);
        assert_eq!(accesses[3].pc.raw(), 0x44);
    }

    #[test]
    fn zero_ref_visits_are_promoted_to_one() {
        let v = Visit::new(1, 0, 0);
        assert_eq!(v.refs, 1);
    }

    #[test]
    fn offsets_stay_inside_the_page() {
        let visits = vec![Visit::new(7, 200, 0)];
        for a in Emit::new(visits.into_iter(), PageSize::DEFAULT) {
            assert_eq!(PageSize::DEFAULT.page_of(a.vaddr).number(), 7);
        }
    }

    #[test]
    fn read_write_mix_is_three_to_one() {
        let visits = vec![Visit::new(1, 100, 0)];
        let writes = Emit::new(visits.into_iter(), PageSize::DEFAULT)
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        assert_eq!(writes, 25);
    }

    #[test]
    fn workload_reports_name() {
        let w = Workload::from_visits("x", Box::new(std::iter::empty()));
        assert_eq!(w.name(), "x");
        assert_eq!(format!("{w:?}"), "Workload { name: \"x\" }");
    }
}
