//! Chaos injection at the workload layer.
//!
//! [`ChaosSpec`] wraps any [`StreamSpec`] and applies the stream-level
//! faults of a [`FaultPlan`] during replay:
//!
//! * [`FaultKind::WildVaddr`] rewrites the planned accesses' virtual
//!   addresses to wild out-of-range values in place — the simulator
//!   must absorb them (page arithmetic is total over `u64`), and the
//!   fault-matrix tests pin that a run completes;
//! * [`FaultKind::WorkerPanic`] panics the thread that decodes the
//!   planned access — *transiently*: all workloads built from one spec
//!   share a panic budget, and each planned panic fires only while
//!   budget remains. A budget of 1 models a glitch the sharded
//!   executor's retry absorbs; a budget equal to the worker attempt
//!   limit forces the inline-degrade path; one more makes the failure
//!   persistent and the run errors typed.
//!
//! Byte-level faults (`CorruptKind`, `TruncateTail`) and I/O faults
//! (`TransientIo`) don't exist at this layer — bake those into a trace
//! image with [`FaultPlan::apply_to_bytes`] or wrap a reader in
//! [`FaultyRead`](tlbsim_trace::FaultyRead) instead; this wrapper
//! ignores them.
//!
//! Everything is deterministic: the plan pins fault positions, and the
//! budget makes panic transience an explicit, countable resource.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tlbsim_core::MemoryAccess;
use tlbsim_trace::{FaultKind, FaultPlan};

use crate::gen::{AccessSource, Workload};
use crate::scale::Scale;
use crate::spec::StreamSpec;

/// A [`StreamSpec`] that replays another spec's stream with planned
/// faults injected (see the module docs for which [`FaultKind`]s apply
/// at this layer).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tlbsim_trace::{FaultKind, FaultPlan};
/// use tlbsim_workloads::{find_app, ChaosSpec, Scale, StreamSpec};
///
/// let app = find_app("gap").unwrap();
/// let plan = FaultPlan::new().with(100, FaultKind::WildVaddr);
/// let chaos = ChaosSpec::new(Arc::new(app), plan, 0);
/// // Length and splittability are the inner spec's, unchanged.
/// assert_eq!(chaos.stream_len(Scale::TINY), app.stream_len(Scale::TINY));
/// let wild = chaos.workload(Scale::TINY).nth(100).unwrap();
/// let clean = app.workload(Scale::TINY).nth(100).unwrap();
/// assert_ne!(wild.vaddr, clean.vaddr);
/// ```
pub struct ChaosSpec {
    name: String,
    inner: Arc<dyn StreamSpec>,
    plan: FaultPlan,
    panic_budget: Arc<AtomicU64>,
}

impl ChaosSpec {
    /// Wraps `inner`, injecting `plan`'s stream-level faults; at most
    /// `panic_budget` planned worker panics actually fire (shared
    /// across every workload the spec instantiates).
    pub fn new(inner: Arc<dyn StreamSpec>, plan: FaultPlan, panic_budget: u64) -> Self {
        ChaosSpec {
            name: format!("chaos:{}", inner.name()),
            inner,
            plan,
            panic_budget: Arc::new(AtomicU64::new(panic_budget)),
        }
    }

    /// Planned worker panics that have not fired yet.
    pub fn panics_remaining(&self) -> u64 {
        self.panic_budget.load(Ordering::SeqCst)
    }

    /// The fault plan driving the injection.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl StreamSpec for ChaosSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn workload(&self, scale: Scale) -> Workload {
        Workload::from_source(
            self.name.clone(),
            Box::new(ChaosSource {
                inner: self.inner.workload(scale),
                panic_records: self.plan.records_with(FaultKind::WorkerPanic),
                wild_records: self.plan.records_with(FaultKind::WildVaddr),
                panic_budget: Arc::clone(&self.panic_budget),
                position: 0,
            }),
        )
    }

    fn stream_len(&self, scale: Scale) -> u64 {
        self.inner.stream_len(scale)
    }

    fn quarantined_records(&self) -> u64 {
        self.inner.quarantined_records()
    }
}

/// The faulty [`AccessSource`]: forwards the inner stream, rewriting
/// wild vaddrs in place and firing budgeted panics at planned
/// positions. Fault positions count *emitted* accesses — skipping over
/// a planned fault does not fire it, which models "whichever worker
/// actually decodes record N hits the fault".
struct ChaosSource {
    inner: Workload,
    /// Sorted access positions carrying `WorkerPanic` faults.
    panic_records: Vec<u64>,
    /// Sorted access positions carrying `WildVaddr` faults.
    wild_records: Vec<u64>,
    panic_budget: Arc<AtomicU64>,
    position: u64,
}

impl ChaosSource {
    /// Indices of `records` falling inside `[start, end)`.
    fn in_window(records: &[u64], start: u64, end: u64) -> std::ops::Range<usize> {
        let lo = records.partition_point(|&r| r < start);
        let hi = records.partition_point(|&r| r < end);
        lo..hi
    }
}

impl AccessSource for ChaosSource {
    fn fill(&mut self, buf: &mut [MemoryAccess]) -> usize {
        let n = self.inner.fill_batch(buf);
        let start = self.position;
        let end = start + n as u64;
        self.position = end;
        for idx in Self::in_window(&self.panic_records, start, end) {
            let fired = self
                .panic_budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                .is_ok();
            if fired {
                panic!(
                    "chaos: injected worker panic at access {}",
                    self.panic_records[idx]
                );
            }
        }
        for idx in Self::in_window(&self.wild_records, start, end) {
            let record = self.wild_records[idx];
            buf[(record - start) as usize].vaddr = tlbsim_trace::wild_vaddr(record).into();
        }
        n
    }

    fn skip(&mut self, n: u64) -> u64 {
        let skipped = self.inner.skip_accesses(n);
        self.position += skipped;
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::find_app;

    fn gap() -> Arc<dyn StreamSpec> {
        Arc::new(find_app("gap").expect("registered app"))
    }

    #[test]
    fn chaos_with_empty_plan_is_transparent() {
        let app = gap();
        let chaos = ChaosSpec::new(Arc::clone(&app), FaultPlan::new(), 0);
        assert_eq!(chaos.name(), "chaos:gap");
        assert_eq!(chaos.stream_len(Scale::TINY), app.stream_len(Scale::TINY));
        assert_eq!(chaos.quarantined_records(), 0);
        let clean: Vec<MemoryAccess> = app.workload(Scale::TINY).take(5_000).collect();
        let wrapped: Vec<MemoryAccess> = chaos.workload(Scale::TINY).take(5_000).collect();
        assert_eq!(wrapped, clean);
    }

    #[test]
    fn wild_vaddr_rewrites_exactly_the_planned_accesses() {
        let app = gap();
        let plan = FaultPlan::new()
            .with(10, FaultKind::WildVaddr)
            .with(1000, FaultKind::WildVaddr);
        let chaos = ChaosSpec::new(Arc::clone(&app), plan, 0);
        let clean: Vec<MemoryAccess> = app.workload(Scale::TINY).take(2_000).collect();
        let faulty: Vec<MemoryAccess> = chaos.workload(Scale::TINY).take(2_000).collect();
        for (i, (c, f)) in clean.iter().zip(&faulty).enumerate() {
            if i == 10 || i == 1000 {
                assert_ne!(c.vaddr, f.vaddr, "access {i} should be rewritten");
                assert!(f.vaddr.raw() >= 0xFFFF_0000_0000_0000);
                assert_eq!(c.pc, f.pc);
                assert_eq!(c.kind, f.kind);
            } else {
                assert_eq!(c, f, "access {i} should be untouched");
            }
        }
    }

    #[test]
    fn worker_panic_fires_once_per_budget_unit() {
        let chaos = ChaosSpec::new(gap(), FaultPlan::new().with(50, FaultKind::WorkerPanic), 1);
        assert_eq!(chaos.panics_remaining(), 1);
        let attempt = || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                chaos.workload(Scale::TINY).take(100).count()
            }))
        };
        let first = attempt();
        assert!(first.is_err(), "budgeted panic must fire");
        assert_eq!(chaos.panics_remaining(), 0);
        // Budget exhausted: the retry sails through.
        assert_eq!(attempt().expect("retry must succeed"), 100);
    }

    #[test]
    fn skipping_over_a_fault_does_not_fire_it() {
        let chaos = ChaosSpec::new(gap(), FaultPlan::new().with(50, FaultKind::WorkerPanic), 1);
        let mut w = chaos.workload(Scale::TINY);
        assert_eq!(w.skip_accesses(100), 100);
        assert_eq!(w.take(100).count(), 100);
        assert_eq!(chaos.panics_remaining(), 1, "fault at 50 was never decoded");
    }
}
