//! Recorded traces as first-class workloads.
//!
//! [`TraceWorkload`] adapts an [`MmapTrace`] to the [`StreamSpec`] /
//! [`Workload`] surface, so a trace recorded from a real machine (or
//! dumped from a synthetic model with `xp record`) drives `run_app`,
//! `sweep` and `run_app_sharded` exactly like a registered application:
//! replay decodes record batches zero-copy out of the mapped file into
//! the engines' batch buffers, and sharded replay seeks each worker's
//! cursor in O(1) because records are fixed 17-byte cells.

use std::path::Path;
use std::sync::Arc;

use tlbsim_core::MemoryAccess;
use tlbsim_trace::{DecodePolicy, MmapTrace, MmapTraceCursor, TraceError, TraceHealth};

use crate::gen::{AccessSource, Workload};
use crate::scale::Scale;
use crate::spec::StreamSpec;

/// A recorded binary trace, replayable as a [`Workload`] any number of
/// times (each replay gets an independent cursor over one shared
/// mapping).
///
/// The whole file is validated at open — header once, then every
/// record's kind byte in one sequential pass (which doubles as
/// page-cache warm-up) — so replay itself cannot fail mid-stream.
///
/// A trace has a fixed length, so the [`Scale`] argument of the
/// [`StreamSpec`] methods is ignored: a replay is always the full
/// recorded stream.
///
/// # Examples
///
/// Record indexing agrees across the whole stack: skipping `n` accesses
/// into a replayed trace stands on the same record the trace crate's
/// [`window(n, …)`](tlbsim_trace::TraceStreamExt::window) adapter
/// starts at.
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_trace::{BinaryTraceReader, BinaryTraceWriter, TraceStreamExt};
/// use tlbsim_workloads::TraceWorkload;
///
/// let path = std::env::temp_dir().join(format!("tlbt-window-{}", std::process::id()));
/// let mut w = BinaryTraceWriter::create(std::fs::File::create(&path)?)?;
/// for i in 0..50u64 {
///     w.write(&MemoryAccess::read(0x400 + i, i * 4096))?;
/// }
/// w.finish()?;
///
/// // Record indexing: `window(skip, take)` over the streaming reader…
/// let windowed: Vec<MemoryAccess> = BinaryTraceReader::open(std::fs::File::open(&path)?)?
///     .map(|r| r.expect("valid record"))
///     .window(7, 5)
///     .collect();
/// // …and `skip_accesses(skip)` on a replayed workload count records
/// // identically: both start at record index 7.
/// let trace = TraceWorkload::open(&path)?;
/// let mut replay = trace.workload();
/// assert_eq!(replay.skip_accesses(7), 7);
/// let skipped: Vec<MemoryAccess> = replay.take(5).collect();
/// assert_eq!(skipped, windowed);
/// std::fs::remove_file(&path).ok();
/// # Ok::<(), tlbsim_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: Arc<str>,
    trace: MmapTrace,
    health: TraceHealth,
}

impl TraceWorkload {
    /// Opens and fully validates a trace file under the default strict
    /// policy; the workload's name is the file stem.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] surfaced by mapping or validating the file —
    /// truncated/bad headers, a torn final record, or an invalid
    /// access-kind byte anywhere in the body.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::open_with_policy(path, DecodePolicy::Strict)
    }

    /// Opens a trace file under an explicit [`DecodePolicy`].
    ///
    /// Under [`DecodePolicy::Quarantine`] a damaged body is absorbed at
    /// open: bad records are counted into [`TraceWorkload::health`] and
    /// every replay skips them, so [`TraceWorkload::stream_len`] is the
    /// count of *usable* records and the splittability contract holds
    /// unchanged. The open-time scan bounds the damage globally — a
    /// file past the policy's `max_bad` budget is rejected here, which
    /// is what lets replay itself never fail mid-simulation.
    ///
    /// # Errors
    ///
    /// As for [`TraceWorkload::open`] in strict mode;
    /// [`TraceError::QuarantineExceeded`] in quarantine mode when the
    /// damage exceeds the budget.
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        policy: DecodePolicy,
    ) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|stem| stem.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_owned());
        Self::from_trace(name, MmapTrace::open_with_policy(path, policy)?)
    }

    /// Wraps an already-mapped trace under an explicit name, running
    /// the same full-body scan as [`TraceWorkload::open`] under the
    /// trace's own decode policy.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidKind`] on the first corrupt record (strict
    /// traces) or [`TraceError::QuarantineExceeded`] past the budget
    /// (quarantine traces).
    pub fn from_trace(name: impl Into<String>, trace: MmapTrace) -> Result<Self, TraceError> {
        let health = trace.scan_health()?;
        Ok(TraceWorkload {
            name: Arc::from(name.into()),
            trace,
            health,
        })
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of *replayable* accesses (scale-independent). Equal to
    /// the file's record count for a clean trace; under quarantine,
    /// skipped records are excluded — the stream-length contract counts
    /// what a replay actually emits.
    pub fn stream_len(&self) -> u64 {
        self.health.records_ok
    }

    /// What the open-time scan found: usable records, quarantined
    /// records, and torn-tail bytes. Clean (all-ok) for any trace
    /// opened strictly.
    pub fn health(&self) -> TraceHealth {
        self.health
    }

    /// Which backend serves the bytes (`"mmap"` or the `"read"`
    /// fallback).
    pub fn backend(&self) -> &'static str {
        self.trace.backend()
    }

    /// The underlying mapped trace.
    pub fn trace(&self) -> &MmapTrace {
        &self.trace
    }

    /// A fresh replay of the whole trace.
    pub fn workload(&self) -> Workload {
        Workload::from_source(
            self.name.to_string(),
            Box::new(TraceSource {
                cursor: self.trace.cursor(),
            }),
        )
    }
}

impl StreamSpec for TraceWorkload {
    fn name(&self) -> &str {
        TraceWorkload::name(self)
    }

    fn workload(&self, _scale: Scale) -> Workload {
        TraceWorkload::workload(self)
    }

    fn stream_len(&self, _scale: Scale) -> u64 {
        TraceWorkload::stream_len(self)
    }

    fn quarantined_records(&self) -> u64 {
        self.health.records_bad
    }
}

/// The [`AccessSource`] driving a trace replay: one cursor, decoded
/// batch-wise straight out of the shared mapping.
struct TraceSource {
    cursor: MmapTraceCursor,
}

impl AccessSource for TraceSource {
    fn fill(&mut self, buf: &mut [MemoryAccess]) -> usize {
        // Every record was scanned when the TraceWorkload was built —
        // strict traces proved clean, quarantine traces proved their
        // damage fits the budget (so a replay cursor can never exceed
        // it) — so a decode error here means the bytes changed under
        // the mapping (the file was modified concurrently), not a state
        // this process can recover from mid-simulation.
        self.cursor
            .decode_batch(buf)
            .expect("trace records were scanned at open")
    }

    fn skip(&mut self, n: u64) -> u64 {
        self.cursor.skip_records(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::find_app;

    fn write_trace(tag: &str, records: &[MemoryAccess]) -> std::path::PathBuf {
        use tlbsim_trace::BinaryTraceWriter;
        let path = std::env::temp_dir().join(format!("tlbt-workload-{}-{tag}", std::process::id()));
        let mut w = BinaryTraceWriter::create(std::fs::File::create(&path).unwrap()).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        path
    }

    #[test]
    fn replay_matches_the_recorded_generator_stream() {
        let app = find_app("gap").unwrap();
        let recorded: Vec<MemoryAccess> = app.workload(Scale::TINY).take(20_000).collect();
        let path = write_trace("replay", &recorded);
        let trace = TraceWorkload::open(&path).unwrap();
        assert_eq!(trace.stream_len(), recorded.len() as u64);
        let replayed: Vec<MemoryAccess> = trace.workload().collect();
        assert_eq!(replayed, recorded);
        // Replays are repeatable: a second workload starts from 0.
        assert_eq!(trace.workload().count(), recorded.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn skip_accesses_seeks_at_record_granularity() {
        let recorded: Vec<MemoryAccess> = (0..500u64)
            .map(|i| MemoryAccess::read(0x40 + i, i * 4096))
            .collect();
        let path = write_trace("skip", &recorded);
        let trace = TraceWorkload::open(&path).unwrap();
        for split in [0u64, 1, 250, 499, 500] {
            let mut w = trace.workload();
            assert_eq!(w.skip_accesses(split), split);
            let tail: Vec<MemoryAccess> = w.collect();
            assert_eq!(tail, recorded[split as usize..], "split {split}");
        }
        let mut w = trace.workload();
        assert_eq!(w.skip_accesses(10_000), 500);
        assert!(w.next().is_none());
    }

    #[test]
    fn fill_batch_contract_matches_the_generators() {
        let recorded: Vec<MemoryAccess> = (0..100u64)
            .map(|i| MemoryAccess::read(0x40, i * 4096))
            .collect();
        let path = write_trace("fill", &recorded);
        let trace = TraceWorkload::open(&path).unwrap();
        let mut w = trace.workload();
        let mut buf = vec![MemoryAccess::read(0, 0); 64];
        assert_eq!(w.fill_batch(&mut buf), 64);
        assert_eq!(w.fill_batch(&mut buf), 36);
        assert_eq!(w.fill_batch(&mut buf), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stream_spec_surface_ignores_scale() {
        let recorded: Vec<MemoryAccess> = (0..64u64)
            .map(|i| MemoryAccess::read(0x40, i * 4096))
            .collect();
        let path = write_trace("spec", &recorded);
        let trace = TraceWorkload::open(&path).unwrap();
        let spec: &dyn StreamSpec = &trace;
        assert_eq!(spec.stream_len(Scale::TINY), 64);
        assert_eq!(spec.stream_len(Scale::STANDARD), 64);
        assert_eq!(spec.workload(Scale::STANDARD).count(), 64);
        assert!(spec.name().starts_with("tlbt-workload-"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_records_are_rejected_at_open() {
        let recorded: Vec<MemoryAccess> = (0..10u64)
            .map(|i| MemoryAccess::read(0x40, i * 4096))
            .collect();
        let path = write_trace("corrupt", &recorded);
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = tlbsim_trace::HEADER_BYTES + 6 * tlbsim_trace::RECORD_BYTES + 16;
        bytes[offset] = 42;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            TraceWorkload::open(&path),
            Err(TraceError::InvalidKind { found: 42 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quarantine_open_replays_only_the_good_records() {
        let recorded: Vec<MemoryAccess> = (0..40u64)
            .map(|i| MemoryAccess::read(0x40 + i, i * 4096))
            .collect();
        let path = write_trace("quarantine", &recorded);
        let mut bytes = std::fs::read(&path).unwrap();
        for bad in [3usize, 20] {
            bytes[tlbsim_trace::HEADER_BYTES + bad * tlbsim_trace::RECORD_BYTES + 16] = 0xEE;
        }
        std::fs::write(&path, bytes).unwrap();

        // Strict rejects; quarantine absorbs and reports.
        assert!(TraceWorkload::open(&path).is_err());
        let trace =
            TraceWorkload::open_with_policy(&path, tlbsim_trace::DecodePolicy::quarantine(5))
                .unwrap();
        assert_eq!(trace.stream_len(), 38);
        assert_eq!(trace.health().records_bad, 2);
        assert_eq!(StreamSpec::quarantined_records(&trace), 2);
        let want: Vec<MemoryAccess> = recorded
            .iter()
            .enumerate()
            .filter(|(i, _)| ![3usize, 20].contains(i))
            .map(|(_, r)| *r)
            .collect();
        let got: Vec<MemoryAccess> = trace.workload().collect();
        assert_eq!(got, want);
        // skip_accesses counts usable records, so splitting still works.
        let mut w = trace.workload();
        assert_eq!(w.skip_accesses(19), 19);
        let tail: Vec<MemoryAccess> = w.collect();
        assert_eq!(tail, want[19..]);
        // Budget too small: typed error at open, not a mid-replay panic.
        assert!(matches!(
            TraceWorkload::open_with_policy(&path, tlbsim_trace::DecodePolicy::quarantine(1)),
            Err(TraceError::QuarantineExceeded { bad: 2, max_bad: 1 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trace_is_a_valid_zero_length_stream() {
        let path = write_trace("empty", &[]);
        let trace = TraceWorkload::open(&path).unwrap();
        assert_eq!(trace.stream_len(), 0);
        assert!(trace.health().is_clean());
        assert_eq!(trace.workload().count(), 0);
        let mut w = trace.workload();
        assert_eq!(w.skip_accesses(5), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
