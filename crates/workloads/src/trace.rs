//! Recorded traces as first-class workloads.
//!
//! [`TraceWorkload`] adapts a recorded trace — v1 flat grid or v2
//! block-compressed, sniffed from the header — to the [`StreamSpec`] /
//! [`Workload`] surface, so a trace recorded from a real machine (or
//! dumped from a synthetic model with `xp record`) drives `run_app`,
//! `sweep` and `run_app_sharded` exactly like a registered application:
//! replay decodes record batches zero-copy out of the mapped file into
//! the engines' batch buffers, and sharded replay seeks each worker's
//! cursor in O(1) — on the fixed 17-byte cells of v1, or on the block
//! index of v2 (whose [`StreamSpec::seek_alignment`] steers shard cuts
//! onto block boundaries). [`TraceWorkload::open_streaming`] replays v2
//! corpora larger than RAM through a sliding mapped window.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use tlbsim_core::MemoryAccess;
use tlbsim_trace::{
    DecodePolicy, MmapTrace, MmapTraceCursor, TraceError, TraceHealth, V2Trace, V2TraceCursor,
};

use crate::gen::{AccessSource, Workload};
use crate::scale::Scale;
use crate::spec::StreamSpec;

/// A recorded binary trace, replayable as a [`Workload`] any number of
/// times (each replay gets an independent cursor over one shared
/// mapping).
///
/// The whole file is validated at open — header once, then every
/// record's kind byte in one sequential pass (which doubles as
/// page-cache warm-up) — so replay itself cannot fail mid-stream.
///
/// A trace has a fixed length, so the [`Scale`] argument of the
/// [`StreamSpec`] methods is ignored: a replay is always the full
/// recorded stream.
///
/// # Examples
///
/// Record indexing agrees across the whole stack: skipping `n` accesses
/// into a replayed trace stands on the same record the trace crate's
/// [`window(n, …)`](tlbsim_trace::TraceStreamExt::window) adapter
/// starts at.
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_trace::{BinaryTraceReader, BinaryTraceWriter, TraceStreamExt};
/// use tlbsim_workloads::TraceWorkload;
///
/// let path = std::env::temp_dir().join(format!("tlbt-window-{}", std::process::id()));
/// let mut w = BinaryTraceWriter::create(std::fs::File::create(&path)?)?;
/// for i in 0..50u64 {
///     w.write(&MemoryAccess::read(0x400 + i, i * 4096))?;
/// }
/// w.finish()?;
///
/// // Record indexing: `window(skip, take)` over the streaming reader…
/// let windowed: Vec<MemoryAccess> = BinaryTraceReader::open(std::fs::File::open(&path)?)?
///     .map(|r| r.expect("valid record"))
///     .window(7, 5)
///     .collect();
/// // …and `skip_accesses(skip)` on a replayed workload count records
/// // identically: both start at record index 7.
/// let trace = TraceWorkload::open(&path)?;
/// let mut replay = trace.workload();
/// assert_eq!(replay.skip_accesses(7), 7);
/// let skipped: Vec<MemoryAccess> = replay.take(5).collect();
/// assert_eq!(skipped, windowed);
/// std::fs::remove_file(&path).ok();
/// # Ok::<(), tlbsim_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: Arc<str>,
    trace: AnyTrace,
    health: TraceHealth,
}

/// The format-dispatched handle behind a [`TraceWorkload`]: v1 flat
/// grid, v2 whole-file mapping, or v2 streamed through a window.
#[derive(Debug, Clone)]
enum AnyTrace {
    V1(MmapTrace),
    V2(V2Trace),
    /// Each replay re-opens its own streaming cursor over the file; the
    /// layout facts were validated (and the body fully scanned) at
    /// workload-open time.
    V2Streaming {
        path: PathBuf,
        policy: DecodePolicy,
        window_blocks: u64,
        block_len: u64,
    },
}

impl TraceWorkload {
    /// Opens and fully validates a trace file under the default strict
    /// policy; the workload's name is the file stem. The format version
    /// (v1 flat grid or v2 block-compressed) is sniffed from the
    /// header.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] surfaced by mapping or validating the file —
    /// truncated/bad headers, a torn final record or index, or an
    /// invalid access-kind byte anywhere in the body.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::open_with_policy(path, DecodePolicy::Strict)
    }

    /// Opens a v2 trace for **streaming** replay: each replay cursor
    /// maps a sliding window of `window_blocks` blocks instead of the
    /// whole file, so corpora larger than RAM run in bounded memory.
    /// The body is still scanned once at open (through the same
    /// window), so replay itself cannot fail mid-simulation and the
    /// health report is complete.
    ///
    /// A v1 file falls back to the whole-file mapping — the v1 grid has
    /// no block index to window over; the kernel pages the mapping as
    /// needed.
    ///
    /// # Errors
    ///
    /// As for [`TraceWorkload::open_with_policy`].
    pub fn open_streaming(
        path: impl AsRef<Path>,
        policy: DecodePolicy,
        window_blocks: u64,
    ) -> Result<Self, TraceError> {
        let path = path.as_ref();
        match V2TraceCursor::open_streaming(path, policy, window_blocks) {
            Ok(mut cursor) => {
                let block_len = cursor.block_len();
                let health = scan_streaming(&mut cursor)?;
                Ok(TraceWorkload {
                    name: stem_name(path),
                    trace: AnyTrace::V2Streaming {
                        path: path.to_path_buf(),
                        policy,
                        window_blocks,
                        block_len,
                    },
                    health,
                })
            }
            Err(TraceError::UnsupportedVersion { found: 1 }) => {
                Self::open_with_policy(path, policy)
            }
            Err(e) => Err(e),
        }
    }

    /// Opens a trace file under an explicit [`DecodePolicy`].
    ///
    /// Under [`DecodePolicy::Quarantine`] a damaged body is absorbed at
    /// open: bad records are counted into [`TraceWorkload::health`] and
    /// every replay skips them, so [`TraceWorkload::stream_len`] is the
    /// count of *usable* records and the splittability contract holds
    /// unchanged. The open-time scan bounds the damage globally — a
    /// file past the policy's `max_bad` budget is rejected here, which
    /// is what lets replay itself never fail mid-simulation.
    ///
    /// # Errors
    ///
    /// As for [`TraceWorkload::open`] in strict mode;
    /// [`TraceError::QuarantineExceeded`] in quarantine mode when the
    /// damage exceeds the budget.
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        policy: DecodePolicy,
    ) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let name = stem_name(path);
        match MmapTrace::open_with_policy(path, policy) {
            Ok(trace) => {
                let health = trace.scan_health()?;
                Ok(TraceWorkload {
                    name,
                    trace: AnyTrace::V1(trace),
                    health,
                })
            }
            Err(TraceError::UnsupportedVersion { found: 2 }) => {
                let trace = V2Trace::open_with_policy(path, policy)?;
                let health = trace.scan_health()?;
                Ok(TraceWorkload {
                    name,
                    trace: AnyTrace::V2(trace),
                    health,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Wraps an already-mapped trace under an explicit name, running
    /// the same full-body scan as [`TraceWorkload::open`] under the
    /// trace's own decode policy.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidKind`] on the first corrupt record (strict
    /// traces) or [`TraceError::QuarantineExceeded`] past the budget
    /// (quarantine traces).
    pub fn from_trace(name: impl Into<String>, trace: MmapTrace) -> Result<Self, TraceError> {
        let health = trace.scan_health()?;
        Ok(TraceWorkload {
            name: Arc::from(name.into()),
            trace: AnyTrace::V1(trace),
            health,
        })
    }

    /// Wraps an already-validated v2 trace under an explicit name,
    /// running the same full-body scan under the trace's own decode
    /// policy.
    ///
    /// # Errors
    ///
    /// The first block's typed damage error (strict traces) or
    /// [`TraceError::QuarantineExceeded`] past the budget (quarantine
    /// traces).
    pub fn from_v2_trace(name: impl Into<String>, trace: V2Trace) -> Result<Self, TraceError> {
        let health = trace.scan_health()?;
        Ok(TraceWorkload {
            name: Arc::from(name.into()),
            trace: AnyTrace::V2(trace),
            health,
        })
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of *replayable* accesses (scale-independent). Equal to
    /// the file's record count for a clean trace; under quarantine,
    /// skipped records are excluded — the stream-length contract counts
    /// what a replay actually emits.
    pub fn stream_len(&self) -> u64 {
        self.health.records_ok
    }

    /// What the open-time scan found: usable records, quarantined
    /// records, and torn-tail bytes. Clean (all-ok) for any trace
    /// opened strictly.
    pub fn health(&self) -> TraceHealth {
        self.health
    }

    /// Which backend serves the bytes (`"mmap"` or the `"read"`
    /// fallback). A streaming workload reports `"mmap-window"`.
    pub fn backend(&self) -> &'static str {
        match &self.trace {
            AnyTrace::V1(t) => t.backend(),
            AnyTrace::V2(t) => t.backend(),
            AnyTrace::V2Streaming { .. } => "mmap-window",
        }
    }

    /// The trace's format version (1 = flat grid, 2 = block-compressed).
    pub fn format_version(&self) -> u16 {
        match &self.trace {
            AnyTrace::V1(_) => 1,
            AnyTrace::V2(_) | AnyTrace::V2Streaming { .. } => 2,
        }
    }

    /// A fresh replay of the whole trace.
    pub fn workload(&self) -> Workload {
        let cursor = match &self.trace {
            AnyTrace::V1(t) => AnyCursor::V1(t.cursor()),
            AnyTrace::V2(t) => AnyCursor::V2(t.cursor()),
            AnyTrace::V2Streaming {
                path,
                policy,
                window_blocks,
                ..
            } => AnyCursor::V2(
                V2TraceCursor::open_streaming(path, *policy, *window_blocks)
                    .expect("streaming trace was validated at open"),
            ),
        };
        Workload::from_source(self.name.to_string(), Box::new(TraceSource { cursor }))
    }
}

/// The file stem as a workload name.
fn stem_name(path: &Path) -> Arc<str> {
    Arc::from(
        path.file_stem()
            .map(|stem| stem.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_owned()),
    )
}

/// Drains a streaming cursor once for its complete health report —
/// the open-time scan that lets replay itself never fail.
fn scan_streaming(cursor: &mut V2TraceCursor) -> Result<TraceHealth, TraceError> {
    let mut buf = [MemoryAccess::read(0, 0); 512];
    while cursor.decode_batch(&mut buf)? != 0 {}
    Ok(cursor.health())
}

impl StreamSpec for TraceWorkload {
    fn name(&self) -> &str {
        TraceWorkload::name(self)
    }

    fn workload(&self, _scale: Scale) -> Workload {
        TraceWorkload::workload(self)
    }

    fn stream_len(&self, _scale: Scale) -> u64 {
        TraceWorkload::stream_len(self)
    }

    fn quarantined_records(&self) -> u64 {
        self.health.records_bad
    }

    fn seek_alignment(&self) -> u64 {
        match &self.trace {
            AnyTrace::V1(_) => 1,
            AnyTrace::V2(t) => t.block_len().max(1),
            AnyTrace::V2Streaming { block_len, .. } => (*block_len).max(1),
        }
    }
}

/// The [`AccessSource`] driving a trace replay: one format-dispatched
/// cursor, decoded batch-wise straight out of the mapping (or window).
struct TraceSource {
    cursor: AnyCursor,
}

/// A v1 or v2 cursor behind one batch-decode surface.
enum AnyCursor {
    V1(MmapTraceCursor),
    V2(V2TraceCursor),
}

impl AccessSource for TraceSource {
    fn fill(&mut self, buf: &mut [MemoryAccess]) -> usize {
        // Every record was scanned when the TraceWorkload was built —
        // strict traces proved clean, quarantine traces proved their
        // damage fits the budget (so a replay cursor can never exceed
        // it) — so a decode error here means the bytes changed under
        // the mapping (the file was modified concurrently), not a state
        // this process can recover from mid-simulation.
        match &mut self.cursor {
            AnyCursor::V1(c) => c
                .decode_batch(buf)
                .expect("trace records were scanned at open"),
            AnyCursor::V2(c) => c
                .decode_batch(buf)
                .expect("trace records were scanned at open"),
        }
    }

    fn skip(&mut self, n: u64) -> u64 {
        match &mut self.cursor {
            AnyCursor::V1(c) => c.skip_records(n),
            AnyCursor::V2(c) => c.skip_records(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::find_app;

    fn write_trace(tag: &str, records: &[MemoryAccess]) -> std::path::PathBuf {
        use tlbsim_trace::BinaryTraceWriter;
        let path = std::env::temp_dir().join(format!("tlbt-workload-{}-{tag}", std::process::id()));
        let mut w = BinaryTraceWriter::create(std::fs::File::create(&path).unwrap()).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        path
    }

    #[test]
    fn replay_matches_the_recorded_generator_stream() {
        let app = find_app("gap").unwrap();
        let recorded: Vec<MemoryAccess> = app.workload(Scale::TINY).take(20_000).collect();
        let path = write_trace("replay", &recorded);
        let trace = TraceWorkload::open(&path).unwrap();
        assert_eq!(trace.stream_len(), recorded.len() as u64);
        let replayed: Vec<MemoryAccess> = trace.workload().collect();
        assert_eq!(replayed, recorded);
        // Replays are repeatable: a second workload starts from 0.
        assert_eq!(trace.workload().count(), recorded.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn skip_accesses_seeks_at_record_granularity() {
        let recorded: Vec<MemoryAccess> = (0..500u64)
            .map(|i| MemoryAccess::read(0x40 + i, i * 4096))
            .collect();
        let path = write_trace("skip", &recorded);
        let trace = TraceWorkload::open(&path).unwrap();
        for split in [0u64, 1, 250, 499, 500] {
            let mut w = trace.workload();
            assert_eq!(w.skip_accesses(split), split);
            let tail: Vec<MemoryAccess> = w.collect();
            assert_eq!(tail, recorded[split as usize..], "split {split}");
        }
        let mut w = trace.workload();
        assert_eq!(w.skip_accesses(10_000), 500);
        assert!(w.next().is_none());
    }

    #[test]
    fn fill_batch_contract_matches_the_generators() {
        let recorded: Vec<MemoryAccess> = (0..100u64)
            .map(|i| MemoryAccess::read(0x40, i * 4096))
            .collect();
        let path = write_trace("fill", &recorded);
        let trace = TraceWorkload::open(&path).unwrap();
        let mut w = trace.workload();
        let mut buf = vec![MemoryAccess::read(0, 0); 64];
        assert_eq!(w.fill_batch(&mut buf), 64);
        assert_eq!(w.fill_batch(&mut buf), 36);
        assert_eq!(w.fill_batch(&mut buf), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stream_spec_surface_ignores_scale() {
        let recorded: Vec<MemoryAccess> = (0..64u64)
            .map(|i| MemoryAccess::read(0x40, i * 4096))
            .collect();
        let path = write_trace("spec", &recorded);
        let trace = TraceWorkload::open(&path).unwrap();
        let spec: &dyn StreamSpec = &trace;
        assert_eq!(spec.stream_len(Scale::TINY), 64);
        assert_eq!(spec.stream_len(Scale::STANDARD), 64);
        assert_eq!(spec.workload(Scale::STANDARD).count(), 64);
        assert!(spec.name().starts_with("tlbt-workload-"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_records_are_rejected_at_open() {
        let recorded: Vec<MemoryAccess> = (0..10u64)
            .map(|i| MemoryAccess::read(0x40, i * 4096))
            .collect();
        let path = write_trace("corrupt", &recorded);
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = tlbsim_trace::HEADER_BYTES + 6 * tlbsim_trace::RECORD_BYTES + 16;
        bytes[offset] = 42;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            TraceWorkload::open(&path),
            Err(TraceError::InvalidKind { found: 42 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quarantine_open_replays_only_the_good_records() {
        let recorded: Vec<MemoryAccess> = (0..40u64)
            .map(|i| MemoryAccess::read(0x40 + i, i * 4096))
            .collect();
        let path = write_trace("quarantine", &recorded);
        let mut bytes = std::fs::read(&path).unwrap();
        for bad in [3usize, 20] {
            bytes[tlbsim_trace::HEADER_BYTES + bad * tlbsim_trace::RECORD_BYTES + 16] = 0xEE;
        }
        std::fs::write(&path, bytes).unwrap();

        // Strict rejects; quarantine absorbs and reports.
        assert!(TraceWorkload::open(&path).is_err());
        let trace =
            TraceWorkload::open_with_policy(&path, tlbsim_trace::DecodePolicy::quarantine(5))
                .unwrap();
        assert_eq!(trace.stream_len(), 38);
        assert_eq!(trace.health().records_bad, 2);
        assert_eq!(StreamSpec::quarantined_records(&trace), 2);
        let want: Vec<MemoryAccess> = recorded
            .iter()
            .enumerate()
            .filter(|(i, _)| ![3usize, 20].contains(i))
            .map(|(_, r)| *r)
            .collect();
        let got: Vec<MemoryAccess> = trace.workload().collect();
        assert_eq!(got, want);
        // skip_accesses counts usable records, so splitting still works.
        let mut w = trace.workload();
        assert_eq!(w.skip_accesses(19), 19);
        let tail: Vec<MemoryAccess> = w.collect();
        assert_eq!(tail, want[19..]);
        // Budget too small: typed error at open, not a mid-replay panic.
        assert!(matches!(
            TraceWorkload::open_with_policy(&path, tlbsim_trace::DecodePolicy::quarantine(1)),
            Err(TraceError::QuarantineExceeded { bad: 2, max_bad: 1 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    fn write_v2_trace(tag: &str, records: &[MemoryAccess], block_len: u32) -> std::path::PathBuf {
        use tlbsim_trace::V2TraceWriter;
        let path =
            std::env::temp_dir().join(format!("tlbt2-workload-{}-{tag}", std::process::id()));
        let mut w =
            V2TraceWriter::create_with_block_len(std::fs::File::create(&path).unwrap(), block_len)
                .unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        path
    }

    #[test]
    fn v2_traces_are_sniffed_and_replay_identically() {
        let recorded: Vec<MemoryAccess> = (0..700u64)
            .map(|i| MemoryAccess::read(0x40 + i, i * 4096))
            .collect();
        let path = write_v2_trace("sniff", &recorded, 64);
        let trace = TraceWorkload::open(&path).unwrap();
        assert_eq!(trace.format_version(), 2);
        assert_eq!(trace.stream_len(), 700);
        assert_eq!(trace.seek_alignment(), 64);
        assert!(trace.health().is_clean());
        let replayed: Vec<MemoryAccess> = trace.workload().collect();
        assert_eq!(replayed, recorded);
        // Mid-block skip still agrees with the recorded stream.
        let mut w = trace.workload();
        assert_eq!(w.skip_accesses(97), 97);
        let tail: Vec<MemoryAccess> = w.collect();
        assert_eq!(tail, recorded[97..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_open_replays_like_whole_file() {
        let recorded: Vec<MemoryAccess> = (0..1000u64)
            .map(|i| MemoryAccess::read(0x40 + i, i * 64))
            .collect();
        let path = write_v2_trace("stream", &recorded, 32);
        let trace = TraceWorkload::open_streaming(&path, DecodePolicy::Strict, 3).unwrap();
        assert_eq!(trace.backend(), "mmap-window");
        assert_eq!(trace.format_version(), 2);
        assert_eq!(trace.seek_alignment(), 32);
        let replayed: Vec<MemoryAccess> = trace.workload().collect();
        assert_eq!(replayed, recorded);
        // v1 input falls back to the whole-file mapping transparently.
        let v1_path = write_trace("stream-v1", &recorded);
        let v1 = TraceWorkload::open_streaming(&v1_path, DecodePolicy::Strict, 3).unwrap();
        assert_eq!(v1.format_version(), 1);
        assert_eq!(v1.seek_alignment(), 1);
        let replayed: Vec<MemoryAccess> = v1.workload().collect();
        assert_eq!(replayed, recorded);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&v1_path).unwrap();
    }

    #[test]
    fn quarantined_v2_trace_drops_whole_blocks() {
        use tlbsim_trace::{FaultKind, FaultPlan};
        let recorded: Vec<MemoryAccess> = (0..128u64)
            .map(|i| MemoryAccess::read(0x40 + i, i * 4096))
            .collect();
        let path = write_v2_trace("quarantine", &recorded, 16);
        let mut bytes = std::fs::read(&path).unwrap();
        FaultPlan::new()
            .with(40, FaultKind::CorruptKind)
            .apply_to_bytes(&mut bytes);
        std::fs::write(&path, bytes).unwrap();
        assert!(TraceWorkload::open(&path).is_err());
        // Block 2 (records 32..48) is quarantined whole.
        let trace =
            TraceWorkload::open_with_policy(&path, tlbsim_trace::DecodePolicy::quarantine(16))
                .unwrap();
        assert_eq!(trace.stream_len(), 112);
        assert_eq!(trace.health().records_bad, 16);
        assert_eq!(trace.health().blocks_bad, 1);
        let want: Vec<MemoryAccess> = recorded[..32]
            .iter()
            .chain(&recorded[48..])
            .copied()
            .collect();
        let got: Vec<MemoryAccess> = trace.workload().collect();
        assert_eq!(got, want);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trace_is_a_valid_zero_length_stream() {
        let path = write_trace("empty", &[]);
        let trace = TraceWorkload::open(&path).unwrap();
        assert_eq!(trace.stream_len(), 0);
        assert!(trace.health().is_clean());
        assert_eq!(trace.workload().count(), 0);
        let mut w = trace.workload();
        assert_eq!(w.skip_accesses(5), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
