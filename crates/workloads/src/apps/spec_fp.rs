//! SPEC CPU2000 floating-point application models (14 applications).

use crate::apps::{AppSpec, Suite};
use crate::class::ReferenceClass;
use crate::gen::VisitStream;
use crate::primitives::{
    BlockChase, DistanceCycle, LoopedScan, PointerChase, RotatePc, StridedScan,
};
use crate::scale::Scale;

const HEAP: u64 = 0x20_0000;

fn b(x: impl Iterator<Item = crate::gen::Visit> + Send + 'static) -> VisitStream {
    Box::new(x)
}

/// wupwise: blocked BLAS-style kernels walk fresh lattice planes with a
/// short repeating distance cycle (two unit steps then a row jump) —
/// class (d), where "DP does much better than the others" (§3.2).
fn wupwise(s: Scale) -> VisitStream {
    b(DistanceCycle::new(
        HEAP,
        vec![1, 1, 6],
        s.scaled(1000),
        200,
        0x50010,
    ))
}

/// swim: shallow-water stencils sweep columns of a row-major grid: three
/// unit steps then a 497-page row advance. The changing stride defeats
/// ASP's steady state most of the time; DP holds both transitions.
fn swim(s: Scale) -> VisitStream {
    b(DistanceCycle::new(
        HEAP,
        vec![1, 1, 497],
        s.scaled(1000),
        200,
        0x50020,
    ))
}

/// mgrid: multigrid restriction/prolongation hops between grid levels
/// with a repeating (+7, +7, +13) inter-plane cycle — class (d).
fn mgrid(s: Scale) -> VisitStream {
    b(DistanceCycle::new(
        HEAP + 100,
        vec![7, 7, 13],
        s.scaled(1000),
        200,
        0x50030,
    ))
}

/// applu: SSOR sweeps with a (+2, +2, +9) pencil-advance cycle — class
/// (d), DP-dominant.
fn applu(s: Scale) -> VisitStream {
    b(DistanceCycle::new(
        HEAP,
        vec![2, 2, 9],
        s.scaled(1000),
        200,
        0x50040,
    ))
}

/// mesa: rasterisation repeatedly scans a ~1400-page frame/texture set.
/// All schemes predict; MP "performs poorly with small r" because the
/// footprint exceeds even a 1024-row table (§3.2).
fn mesa(s: Scale) -> VisitStream {
    b(LoopedScan::new(HEAP, 1, 1400, s.scaled(2), 60, 0x50050))
}

/// galgel: Galerkin FEM matrices rescanned sequentially; the highest
/// SPEC miss rate (0.228). Strides and history both predict; MP's table
/// is far too small for the 2600-page footprint.
fn galgel(s: Scale) -> VisitStream {
    b(LoopedScan::new(HEAP, 1, 2600, s.scaled(5), 4, 0x50060))
}

/// art: neural-network weight matrices rescanned sequentially with a
/// 1500-page footprint — same story as galgel at a lower miss rate.
fn art(s: Scale) -> VisitStream {
    b(LoopedScan::new(HEAP, 1, 1500, s.scaled(3), 40, 0x50070))
}

/// equake: sparse earthquake meshes stream through fresh memory with a
/// constant 3-page stride — class (a) with a non-unit stride, so ASP and
/// DP predict the cold misses and sequential prefetching does not.
fn equake(s: Scale) -> VisitStream {
    b(StridedScan::new(HEAP, 3, s.scaled(800), 170, 0x50080))
}

/// facerec: gallery images rescanned sequentially; the 200-page
/// footprint fits every table, so "nearly all mechanisms" do well
/// (§3.2).
fn facerec(s: Scale) -> VisitStream {
    b(LoopedScan::new(HEAP, 1, 200, s.scaled(12), 60, 0x50090))
}

/// ammp: molecular dynamics re-walks 5-page molecule clusters in fixed
/// neighbour-list order; heavy per-cluster compute gives the paper's
/// 0.0113 miss rate with bursty cluster entries. RP leads on accuracy,
/// "DP comes very close" (§3.2), and Table 3 shows DP winning on cycles.
fn ammp(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(HEAP, 130, 5, s.scaled(4), 1, 0x500a0, 0x8e15).burst_profile(306, 30)),
        0x500a0,
        3,
    ))
}

/// lucas: FFT butterflies touch 2-page operand pairs in fixed
/// bit-reversed order (miss rate ~0.016); pure history territory — the
/// short runs leave DP little distance structure (Table 3 group).
fn lucas(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(HEAP, 310, 2, s.scaled(5), 1, 0x500b0, 0x9f3d).burst_profile(109, 16)),
        0x500b0,
        3,
    ))
}

/// fma3d: crash-simulation elements visited in an order reshuffled every
/// timestep — class (e): "the irregularity makes it very difficult for
/// any mechanism to do well" (§3.2).
fn fma3d(s: Scale) -> VisitStream {
    b(PointerChase::new(HEAP, 3000, s.scaled(2), 40, 0x500c0, 0xa651).reshuffled_each_lap(0xb762))
}

/// sixtrack: particle tracking re-walks 4-page lattice element groups in
/// fixed ring order; RP best, DP close behind via within-group strides.
fn sixtrack(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(
            HEAP,
            110,
            4,
            s.scaled(8),
            55,
            0x500d0,
            0xc873,
        )),
        0x500d0,
        3,
    ))
}

/// apsi: pollution-model pencils re-walked in fixed order (miss rate
/// ~0.018); RP leads, DP close, MP needs a large table.
fn apsi(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(HEAP, 250, 3, s.scaled(5), 1, 0x500e0, 0xd985).burst_profile(163, 2)),
        0x500e0,
        3,
    ))
}

/// The registered SPEC CPU2000 floating-point models, in the paper's
/// Figure 7 order.
pub static APPS: [AppSpec; 14] = [
    AppSpec {
        name: "wupwise",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fresh lattice walk with a (1,1,6) distance cycle; DP much better than \
                      ASP/MP/RP (class (d)).",
        build: wupwise,
    },
    AppSpec {
        name: "swim",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Column sweeps of a row-major grid, distance cycle (1,1,497); DP \
                      dominant, ASP partial.",
        build: swim,
    },
    AppSpec {
        name: "mgrid",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Multigrid level hops with a (7,7,13) distance cycle; DP dominant.",
        build: mgrid,
    },
    AppSpec {
        name: "applu",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "SSOR pencil advance with a (2,2,9) distance cycle; DP dominant.",
        build: applu,
    },
    AppSpec {
        name: "mesa",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::StridedRepeated,
        description: "Sequential rescans of a 1400-page frame set; all schemes good except \
                      MP at small r.",
        build: mesa,
    },
    AppSpec {
        name: "galgel",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::StridedRepeated,
        description: "Sequential rescans of 2600 pages at the highest SPEC miss rate (0.228); \
                      MP's on-chip table is far too small.",
        build: galgel,
    },
    AppSpec {
        name: "art",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::StridedRepeated,
        description: "Sequential rescans of 1500 pages of network weights; like galgel.",
        build: art,
    },
    AppSpec {
        name: "equake",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::StridedOnce,
        description: "Fresh stride-3 mesh streaming; ASP and DP capture cold misses, history \
                      schemes cannot.",
        build: equake,
    },
    AppSpec {
        name: "facerec",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::StridedRepeated,
        description: "Sequential gallery rescans over 200 pages; every mechanism predicts \
                      well.",
        build: facerec,
    },
    AppSpec {
        name: "ammp",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fixed-order 5-page molecule clusters, miss rate ~0.0113, bursty; RP \
                      best on accuracy, DP close and ahead on cycles (Table 3).",
        build: ammp,
    },
    AppSpec {
        name: "lucas",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Bit-reversed 2-page operand pairs, miss rate ~0.016; history-only \
                      structure (Table 3 group).",
        build: lucas,
    },
    AppSpec {
        name: "fma3d",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::Irregular,
        description: "Per-lap reshuffled element visits: no mechanism predicts (class (e)).",
        build: fma3d,
    },
    AppSpec {
        name: "sixtrack",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fixed ring order over 4-page element groups; RP best, DP close.",
        build: sixtrack,
    },
    AppSpec {
        name: "apsi",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fixed-order pencil walk, miss rate ~0.018; RP best, DP close (Figure 9 \
                      group).",
        build: apsi,
    },
];
