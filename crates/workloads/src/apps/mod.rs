//! The 56 synthetic application models.
//!
//! One model per application evaluated in the paper (§3.1): all 26 SPEC
//! CPU2000 applications, 20 MediaBench applications, 5 Etch traces and 5
//! Pointer-Intensive benchmarks. Each model composes the primitives of
//! [`crate::primitives`] so that its page-level miss-stream *shape*
//! matches the behaviour the paper's §3.2 prose attributes to the real
//! application — which prefetchers succeed on it and roughly how well.
//! The real binaries and their inputs are unavailable here (and the
//! paper's observations are entirely properties of the reference
//! stream), so these parameterised models are the substitution documented
//! in the repository `README.md`.

mod etch;
mod mediabench;
mod pointer;
mod spec_fp;
mod spec_int;

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::class::ReferenceClass;
use crate::gen::{VisitStream, Workload};
use crate::scale::Scale;
use crate::spec::StreamSpec;

/// The benchmark suite an application belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2000 (26 applications).
    SpecCpu2000,
    /// MediaBench (20 applications).
    MediaBench,
    /// The Etch desktop-application traces (5 applications).
    Etch,
    /// The Pointer-Intensive benchmark suite (5 applications).
    PointerIntensive,
}

impl Suite {
    /// All suites in the paper's presentation order.
    pub const ALL: [Suite; 4] = [
        Suite::SpecCpu2000,
        Suite::MediaBench,
        Suite::Etch,
        Suite::PointerIntensive,
    ];
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::SpecCpu2000 => f.write_str("SPEC CPU2000"),
            Suite::MediaBench => f.write_str("MediaBench"),
            Suite::Etch => f.write_str("Etch"),
            Suite::PointerIntensive => f.write_str("Pointer-Intensive"),
        }
    }
}

/// A registered application model.
pub struct AppSpec {
    /// Application name as used in the paper's figures.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Dominant reference-behaviour class (§1 taxonomy).
    pub class: ReferenceClass,
    /// What the model reproduces, citing the paper's observation.
    pub description: &'static str,
    pub(crate) build: fn(Scale) -> VisitStream,
}

impl AppSpec {
    /// Instantiates the application's reference stream at `scale`.
    pub fn workload(&self, scale: Scale) -> Workload {
        Workload::from_visits(self.name, (self.build)(scale))
    }

    /// The exact number of memory accesses the application emits at
    /// `scale`, computed by summing per-visit reference counts over a
    /// fresh visit stream — one pass over the visits, no access
    /// expansion.
    ///
    /// This is what lets a sharded run partition the access stream into
    /// contiguous ranges up front: combined with
    /// [`Workload::skip_accesses`], shard *N* of *K* can position itself
    /// at `N · len / K` without replaying the prefix access-by-access.
    ///
    /// # Examples
    ///
    /// ```
    /// use tlbsim_workloads::{find_app, Scale};
    ///
    /// let app = find_app("galgel").expect("registered");
    /// let len = app.stream_len(Scale::TINY);
    /// assert_eq!(len, app.workload(Scale::TINY).count() as u64);
    /// ```
    pub fn stream_len(&self, scale: Scale) -> u64 {
        (self.build)(scale).map(|visit| u64::from(visit.refs)).sum()
    }
}

/// Registered applications are one kind of [`StreamSpec`]; recorded
/// traces ([`crate::TraceWorkload`]) are the other. The simulator's
/// runners accept either.
impl StreamSpec for AppSpec {
    fn name(&self) -> &str {
        self.name
    }

    fn workload(&self, scale: Scale) -> Workload {
        AppSpec::workload(self, scale)
    }

    fn stream_len(&self, scale: Scale) -> u64 {
        AppSpec::stream_len(self, scale)
    }
}

impl fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppSpec")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("class", &self.class)
            .finish()
    }
}

impl fmt::Display for AppSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.suite)
    }
}

/// Returns every registered application, suites in paper order.
pub fn all_apps() -> Vec<&'static AppSpec> {
    let mut v: Vec<&'static AppSpec> = Vec::with_capacity(56);
    v.extend(spec_int::APPS.iter());
    v.extend(spec_fp::APPS.iter());
    v.extend(mediabench::APPS.iter());
    v.extend(etch::APPS.iter());
    v.extend(pointer::APPS.iter());
    v
}

/// Returns the applications of one suite, in paper order.
pub fn suite_apps(suite: Suite) -> Vec<&'static AppSpec> {
    all_apps()
        .into_iter()
        .filter(|a| a.suite == suite)
        .collect()
}

/// Finds an application by its paper name.
pub fn find_app(name: &str) -> Option<&'static AppSpec> {
    all_apps().into_iter().find(|a| a.name == name)
}

/// The eight applications with the highest TLB miss rates (§3.2), used
/// by the Figure 9 sensitivity analysis, with the miss rates the paper
/// quotes for a 128-entry fully-associative TLB.
pub fn high_miss_apps() -> [(&'static AppSpec, f64); 8] {
    [
        (find_app("vpr").expect("registered"), 0.016),
        (find_app("mcf").expect("registered"), 0.090),
        (find_app("twolf").expect("registered"), 0.013),
        (find_app("galgel").expect("registered"), 0.228),
        (find_app("ammp").expect("registered"), 0.0113),
        (find_app("lucas").expect("registered"), 0.016),
        (find_app("apsi").expect("registered"), 0.018),
        (find_app("adpcm-enc").expect("registered"), 0.192),
    ]
}

/// The five applications of the paper's Table 3 timing comparison (the
/// high-miss applications where RP's accuracy beats DP's), with the
/// paper's normalized-cycle results as `(rp, dp)`.
pub fn table3_apps() -> [(&'static AppSpec, f64, f64); 5] {
    [
        (find_app("ammp").expect("registered"), 0.97, 0.86),
        (find_app("mcf").expect("registered"), 1.09, 0.95),
        (find_app("vpr").expect("registered"), 0.99, 0.98),
        (find_app("twolf").expect("registered"), 0.98, 0.98),
        (find_app("lucas").expect("registered"), 1.00, 0.99),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_56_apps() {
        assert_eq!(all_apps().len(), 56);
    }

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(suite_apps(Suite::SpecCpu2000).len(), 26);
        assert_eq!(suite_apps(Suite::MediaBench).len(), 20);
        assert_eq!(suite_apps(Suite::Etch).len(), 5);
        assert_eq!(suite_apps(Suite::PointerIntensive).len(), 5);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_apps().iter().map(|a| a.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn find_app_by_name() {
        assert!(find_app("galgel").is_some());
        assert!(find_app("nonexistent").is_none());
    }

    #[test]
    fn every_app_produces_references_at_tiny_scale() {
        for app in all_apps() {
            let n = app.workload(Scale::TINY).take(1000).count();
            assert!(n > 0, "{} produced an empty stream", app.name);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for name in ["mcf", "fma3d", "eon", "gsm-enc"] {
            let app = find_app(name).unwrap();
            let a: Vec<_> = app.workload(Scale::TINY).take(5000).collect();
            let b: Vec<_> = app.workload(Scale::TINY).take(5000).collect();
            assert_eq!(a, b, "{name} is not deterministic");
        }
    }

    #[test]
    fn stream_len_matches_actual_emission() {
        for name in ["gap", "mcf", "galgel", "adpcm-enc", "eon"] {
            let app = find_app(name).unwrap();
            assert_eq!(
                app.stream_len(Scale::TINY),
                app.workload(Scale::TINY).count() as u64,
                "{name} stream_len drifted from the emitted stream"
            );
        }
    }

    #[test]
    fn skipping_into_an_app_stream_matches_the_sequential_tail() {
        let app = find_app("mcf").unwrap();
        let full: Vec<_> = app.workload(Scale::TINY).collect();
        for split in [0u64, 1, 997, full.len() as u64 / 2, full.len() as u64] {
            let mut workload = app.workload(Scale::TINY);
            assert_eq!(workload.skip_accesses(split), split);
            let tail: Vec<_> = workload.collect();
            assert_eq!(
                tail,
                full[split as usize..],
                "mcf diverged at split {split}"
            );
        }
    }

    #[test]
    fn scale_grows_stream_length() {
        let app = find_app("gap").unwrap();
        let tiny = app.workload(Scale::TINY).count();
        let small = app.workload(Scale::SMALL).count();
        assert!(small > tiny);
    }

    #[test]
    fn high_miss_and_table3_apps_resolve() {
        assert_eq!(high_miss_apps().len(), 8);
        assert_eq!(table3_apps().len(), 5);
    }

    #[test]
    fn descriptions_are_present() {
        for app in all_apps() {
            assert!(
                app.description.len() > 20,
                "{} lacks a meaningful description",
                app.name
            );
        }
    }
}
