//! MediaBench application models (20 applications).
//!
//! MediaBench codes are "characteristic of those in embedded and media
//! processing systems" (§3.1): smaller working sets, heavy streaming, and
//! — per §3.2 — several applications (gsm, jpeg) where DP is the only
//! mechanism with any noticeable predictions.

use crate::apps::{AppSpec, Suite};
use crate::class::ReferenceClass;
use crate::gen::VisitStream;
use crate::primitives::{
    BlockChase, DistanceCycle, HotSet, LoopedScan, Mix, RandomWalk, RotatePc, StridedScan,
};
use crate::scale::Scale;

const HEAP: u64 = 0x30_0000;
const NOISE: u64 = 0x70_0000;
const HOT: u64 = 0x06_0000;

fn b(x: impl Iterator<Item = crate::gen::Visit> + Send + 'static) -> VisitStream {
    Box::new(x)
}

/// adpcm-enc: the audio sample buffer streams sequentially and is
/// re-encoded lap after lap — the second-highest miss rate in the study
/// (0.192). RP, ASP and DP all excel; MP "performs very poorly" because
/// the 3000-page footprint swamps its table (§3.2).
fn adpcm_enc(s: Scale) -> VisitStream {
    b(LoopedScan::new(HEAP, 1, 3000, s.scaled(4), 5, 0x60010))
}

/// adpcm-dec: decode direction of the same streaming pattern.
fn adpcm_dec(s: Scale) -> VisitStream {
    b(LoopedScan::new(HEAP, 1, 2800, s.scaled(4), 5, 0x60020))
}

/// epic: wavelet pyramid built over fresh image planes with a constant
/// 2-page stride — first-touch class (a), ASP/DP territory (§3.2).
fn epic(s: Scale) -> VisitStream {
    b(StridedScan::new(HEAP, 2, s.scaled(700), 160, 0x60030))
}

/// unepic: the inverse transform, smaller output planes.
fn unepic(s: Scale) -> VisitStream {
    b(StridedScan::new(HEAP, 2, s.scaled(500), 160, 0x60040))
}

/// gsm-enc: codebook search hops with a repeated-value distance cycle
/// (fan-out 3 exceeds DP's two slots) plus scatter noise: "DP is the
/// only mechanism which makes any noticeable predictions (even if the
/// accuracy does not exceed 20%)" (§3.2).
fn gsm_enc(s: Scale) -> VisitStream {
    let cycle = DistanceCycle::new(
        HEAP + 50,
        vec![9, 4, 9, 17, 9, -6],
        s.scaled(1000),
        95,
        0x60050,
    );
    let noise = RandomWalk::new(NOISE, 4000, s.scaled(340), 95, 0x60054, 0xe001);
    b(Mix::new(b(cycle), b(noise), 4))
}

/// gsm-dec: same structure, decode tables.
fn gsm_dec(s: Scale) -> VisitStream {
    let cycle = DistanceCycle::new(
        HEAP + 80,
        vec![7, 3, 7, -2, 7, 15],
        s.scaled(950),
        95,
        0x60060,
    );
    let noise = RandomWalk::new(NOISE, 4000, s.scaled(320), 95, 0x60064, 0xe112);
    b(Mix::new(b(cycle), b(noise), 4))
}

/// rasta: speech front-end mixing fixed-order filter-bank walks with
/// scatter; RP moderate, DP close behind.
fn rasta(s: Scale) -> VisitStream {
    let walk = RotatePc::new(
        b(BlockChase::new(
            HEAP,
            120,
            3,
            s.scaled(9),
            45,
            0x60070,
            0xf223,
        )),
        0x60070,
        3,
    );
    let noise = RandomWalk::new(NOISE, 2000, s.scaled(700), 45, 0x60074, 0xf334);
    b(Mix::new(b(walk), b(noise), 5))
}

/// gs: ghostscript page rendering revisits glyph/raster bands in fixed
/// order; the paper lists gs among the applications where RP gives "the
/// best, or close to the best performance" (§3.2).
fn gs(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(
            HEAP,
            130,
            2,
            s.scaled(12),
            30,
            0x60080,
            0x1445,
        )),
        0x60080,
        3,
    ))
}

/// g721-enc: tiny resident codec state — "so few TLB misses that a
/// significant history does not build up" (§3.2).
fn g721_enc(s: Scale) -> VisitStream {
    b(HotSet::new(HEAP, 40, s.scaled(6_000), 25, 0x60090, 0x1556))
}

/// g721-dec: same, decode direction.
fn g721_dec(s: Scale) -> VisitStream {
    b(HotSet::new(HEAP, 36, s.scaled(5_500), 25, 0x600a0, 0x1667))
}

/// mipmap (osdemo-mesa): mip-level downsampling strides through fresh
/// texture levels (stride 4); ASP/DP capture the first-touch pattern
/// (§3.2 lists mipmap in the ASP-friendly group).
fn mipmap(s: Scale) -> VisitStream {
    b(StridedScan::new(HEAP, 4, s.scaled(750), 160, 0x600b0))
}

/// jpeg-enc: DCT macroblock sweeps with a repeated-value distance cycle
/// plus table noise; only DP predicts, below 20% (§3.2).
fn jpeg_enc(s: Scale) -> VisitStream {
    let cycle = DistanceCycle::new(
        HEAP + 20,
        vec![6, 5, 6, 23, 6, -8],
        s.scaled(900),
        95,
        0x600c0,
    );
    let noise = RandomWalk::new(NOISE, 3000, s.scaled(300), 95, 0x600c4, 0x1778);
    b(Mix::new(b(cycle), b(noise), 4))
}

/// jpeg-dec: inverse transform, same structure.
fn jpeg_dec(s: Scale) -> VisitStream {
    let cycle = DistanceCycle::new(
        HEAP + 40,
        vec![5, 4, 5, 21, 5, -7],
        s.scaled(850),
        95,
        0x600d0,
    );
    let noise = RandomWalk::new(NOISE, 3000, s.scaled(280), 95, 0x600d4, 0x1889);
    b(Mix::new(b(cycle), b(noise), 4))
}

/// texgen (texgen-mesa): texture-coordinate generation rescans a large
/// texture with stride 3; RP and ASP both do well, MP cannot hold the
/// footprint (§3.2 pairs texgen with adpcm in this respect).
fn texgen(s: Scale) -> VisitStream {
    b(LoopedScan::new(HEAP, 3, 2600, s.scaled(2), 40, 0x600e0))
}

/// mpeg-enc: motion estimation walks macroblock rows with a
/// (1,1,1,1,30) row-advance cycle — DP-dominant class (d).
fn mpeg_enc(s: Scale) -> VisitStream {
    b(DistanceCycle::new(
        HEAP,
        vec![1, 1, 1, 1, 30],
        s.scaled(1000),
        150,
        0x600f0,
    ))
}

/// mpeg-dec: block reconstruction alternates (1, 31) between reference
/// and output frames — a pure two-distance cycle where "DP does much
/// better than the others" (§3.2).
fn mpeg_dec(s: Scale) -> VisitStream {
    b(DistanceCycle::new(
        HEAP,
        vec![1, 31],
        s.scaled(1000),
        150,
        0x60100,
    ))
}

/// pgp-enc: RSA/IDEA encryption streams the message buffer once —
/// first-touch sequential, ASP/DP-friendly (§3.2).
fn pgp_enc(s: Scale) -> VisitStream {
    b(StridedScan::new(HEAP, 1, s.scaled(800), 160, 0x60110))
}

/// pgp-dec: mostly-resident decryption state; the paper groups pgp-dec
/// with the applications where no mechanism makes significant
/// predictions because misses are so few (§3.2).
fn pgp_dec(s: Scale) -> VisitStream {
    b(HotSet::new(HEAP, 50, s.scaled(5_500), 22, 0x60120, 0x199a))
}

/// pegwit-enc: elliptic-curve encryption streaming a fresh message
/// buffer over a resident curve table.
fn pegwit_enc(s: Scale) -> VisitStream {
    let fresh = StridedScan::new(HEAP, 1, s.scaled(500), 140, 0x60130);
    let table = HotSet::new(HOT, 20, s.scaled(125), 60, 0x60134, 0x1aab);
    b(Mix::new(b(fresh), b(table), 5))
}

/// pegwit-dec: same structure, smaller buffer.
fn pegwit_dec(s: Scale) -> VisitStream {
    let fresh = StridedScan::new(HEAP, 1, s.scaled(450), 140, 0x60140);
    let table = HotSet::new(HOT, 20, s.scaled(110), 60, 0x60144, 0x1bbc);
    b(Mix::new(b(fresh), b(table), 5))
}

/// The registered MediaBench models, in the paper's Figure 8 order.
pub static APPS: [AppSpec; 20] = [
    AppSpec {
        name: "adpcm-enc",
        suite: Suite::MediaBench,
        class: ReferenceClass::StridedRepeated,
        description: "Sequential sample-buffer rescans at miss rate ~0.192; RP/ASP/DP all \
                      excel, MP's table is swamped.",
        build: adpcm_enc,
    },
    AppSpec {
        name: "adpcm-dec",
        suite: Suite::MediaBench,
        class: ReferenceClass::StridedRepeated,
        description: "Decode direction of adpcm-enc's streaming rescan pattern.",
        build: adpcm_dec,
    },
    AppSpec {
        name: "epic",
        suite: Suite::MediaBench,
        class: ReferenceClass::StridedOnce,
        description: "Fresh stride-2 wavelet planes; first-touch misses favour ASP and DP.",
        build: epic,
    },
    AppSpec {
        name: "unepic",
        suite: Suite::MediaBench,
        class: ReferenceClass::StridedOnce,
        description: "Inverse wavelet transform, smaller fresh planes, stride 2.",
        build: unepic,
    },
    AppSpec {
        name: "gsm-enc",
        suite: Suite::MediaBench,
        class: ReferenceClass::RepeatingIrregular,
        description: "High-fanout distance cycle plus scatter noise: DP is the only mechanism \
                      with noticeable (sub-20%) accuracy.",
        build: gsm_enc,
    },
    AppSpec {
        name: "gsm-dec",
        suite: Suite::MediaBench,
        class: ReferenceClass::RepeatingIrregular,
        description: "Decode-side high-fanout distance cycle; DP-only, below 20%.",
        build: gsm_dec,
    },
    AppSpec {
        name: "rasta",
        suite: Suite::MediaBench,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fixed-order filter-bank walk with scatter; RP moderate, DP close.",
        build: rasta,
    },
    AppSpec {
        name: "gs",
        suite: Suite::MediaBench,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fixed-order glyph/raster band revisits; RP best or close to best.",
        build: gs,
    },
    AppSpec {
        name: "g721-enc",
        suite: Suite::MediaBench,
        class: ReferenceClass::Irregular,
        description: "Tiny resident codec state: too few misses for any history or pattern.",
        build: g721_enc,
    },
    AppSpec {
        name: "g721-dec",
        suite: Suite::MediaBench,
        class: ReferenceClass::Irregular,
        description: "Decode twin of g721-enc: too few misses to predict.",
        build: g721_dec,
    },
    AppSpec {
        name: "mipmap-mesa",
        suite: Suite::MediaBench,
        class: ReferenceClass::StridedOnce,
        description: "Fresh stride-4 texture levels; ASP and DP capture first-touch misses.",
        build: mipmap,
    },
    AppSpec {
        name: "jpeg-enc",
        suite: Suite::MediaBench,
        class: ReferenceClass::RepeatingIrregular,
        description: "Macroblock distance cycle with fan-out beyond s=2 plus noise; DP-only, \
                      below 20%.",
        build: jpeg_enc,
    },
    AppSpec {
        name: "jpeg-dec",
        suite: Suite::MediaBench,
        class: ReferenceClass::RepeatingIrregular,
        description: "Inverse-DCT twin of jpeg-enc; DP-only, below 20%.",
        build: jpeg_dec,
    },
    AppSpec {
        name: "texgen-mesa",
        suite: Suite::MediaBench,
        class: ReferenceClass::StridedRepeated,
        description: "Stride-3 texture rescans over 2600 pages; RP and ASP do well, MP \
                      cannot hold the footprint.",
        build: texgen,
    },
    AppSpec {
        name: "mpeg-enc",
        suite: Suite::MediaBench,
        class: ReferenceClass::RepeatingIrregular,
        description: "Macroblock rows with a (1,1,1,1,30) cycle; DP dominant, ASP partial.",
        build: mpeg_enc,
    },
    AppSpec {
        name: "mpeg-dec",
        suite: Suite::MediaBench,
        class: ReferenceClass::RepeatingIrregular,
        description: "Pure (1,31) two-distance cycle between frames; DP much better than all \
                      others.",
        build: mpeg_dec,
    },
    AppSpec {
        name: "pgp-enc",
        suite: Suite::MediaBench,
        class: ReferenceClass::StridedOnce,
        description: "Sequential first-touch message buffer; ASP/DP capture cold misses.",
        build: pgp_enc,
    },
    AppSpec {
        name: "pgp-dec",
        suite: Suite::MediaBench,
        class: ReferenceClass::Irregular,
        description: "Resident decryption state: too few misses for any mechanism.",
        build: pgp_dec,
    },
    AppSpec {
        name: "pegwitenc",
        suite: Suite::MediaBench,
        class: ReferenceClass::StridedOnce,
        description: "Fresh message streaming over a resident curve table; stride-friendly.",
        build: pegwit_enc,
    },
    AppSpec {
        name: "pegwitdec",
        suite: Suite::MediaBench,
        class: ReferenceClass::StridedOnce,
        description: "Decode twin of pegwitenc with a smaller buffer.",
        build: pegwit_dec,
    },
];
