//! Etch desktop-application trace models (5 applications).
//!
//! The Etch traces are "characteristic of desktop/PC applications"
//! (§3.1): window-system and interpreter codes with mixed phases. §3.2
//! singles out mpegply, msvc and perl4 among the applications where "DP
//! does much better than the others", with msvc in the DP-only group.

use crate::apps::{AppSpec, Suite};
use crate::class::ReferenceClass;
use crate::gen::VisitStream;
use crate::primitives::{BlockChase, DistanceCycle, HotSet, Mix, RandomWalk, RotatePc};
use crate::scale::Scale;

const HEAP: u64 = 0x40_0000;
const NOISE: u64 = 0x78_0000;
const HOT: u64 = 0x08_0000;

fn b(x: impl Iterator<Item = crate::gen::Visit> + Send + 'static) -> VisitStream {
    Box::new(x)
}

/// bcc: compiler driver re-walking 4-page object-node runs in fixed
/// order, like gcc: RP strong, DP close via within-run distances.
fn bcc(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(
            HEAP,
            170,
            4,
            s.scaled(8),
            32,
            0x70010,
            0x2001,
        )),
        0x70010,
        3,
    ))
}

/// mpegply: video playback advances through frame buffers with a
/// (1,1,63) row cycle — class (d), DP-dominant (§3.2).
fn mpegply(s: Scale) -> VisitStream {
    b(DistanceCycle::new(
        HEAP,
        vec![1, 1, 63],
        s.scaled(1000),
        150,
        0x70020,
    ))
}

/// msvc: the IDE's symbol/edit structures hop with a high-fanout
/// repeated-value cycle plus scatter: DP is the only mechanism with
/// noticeable accuracy, below 20% (§3.2).
fn msvc(s: Scale) -> VisitStream {
    let cycle = DistanceCycle::new(
        HEAP + 30,
        vec![4, 3, 4, 13, 4, -6],
        s.scaled(950),
        95,
        0x70030,
    );
    let noise = RandomWalk::new(NOISE, 3500, s.scaled(330), 95, 0x70034, 0x2112);
    b(Mix::new(b(cycle), b(noise), 4))
}

/// perl4: the interpreter streams fresh string arenas with a (1,17)
/// hash-probe cycle over a resident opcode table — DP-dominant (§3.2).
fn perl4(s: Scale) -> VisitStream {
    let cycle = DistanceCycle::new(HEAP, vec![1, 17], s.scaled(900), 140, 0x70040);
    let table = HotSet::new(HOT, 20, s.scaled(180), 55, 0x70044, 0x2223);
    b(Mix::new(b(cycle), b(table), 6))
}

/// winword: document editing mixes short fixed-order structure walks
/// with unpredictable UI scatter; everything lands mid-to-low, RP
/// moderate.
fn winword(s: Scale) -> VisitStream {
    let walk = RotatePc::new(
        b(BlockChase::new(
            HEAP,
            150,
            2,
            s.scaled(8),
            32,
            0x70050,
            0x2334,
        )),
        0x70050,
        3,
    );
    let noise = RandomWalk::new(NOISE, 2500, s.scaled(900), 40, 0x70054, 0x2445);
    b(Mix::new(b(walk), b(noise), 3))
}

/// The registered Etch models, in the paper's Figure 8 order.
pub static APPS: [AppSpec; 5] = [
    AppSpec {
        name: "bcc",
        suite: Suite::Etch,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fixed-order 4-page object runs (gcc-like); RP strong, DP close.",
        build: bcc,
    },
    AppSpec {
        name: "mpegply",
        suite: Suite::Etch,
        class: ReferenceClass::RepeatingIrregular,
        description: "Frame-buffer advance with a (1,1,63) cycle; DP much better than the \
                      others.",
        build: mpegply,
    },
    AppSpec {
        name: "msvc",
        suite: Suite::Etch,
        class: ReferenceClass::RepeatingIrregular,
        description: "High-fanout symbol-table cycle plus UI scatter; DP-only, below 20%.",
        build: msvc,
    },
    AppSpec {
        name: "perl4",
        suite: Suite::Etch,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fresh string arenas with a (1,17) probe cycle; DP much better than the \
                      others.",
        build: perl4,
    },
    AppSpec {
        name: "winword",
        suite: Suite::Etch,
        class: ReferenceClass::Irregular,
        description: "Short structure walks drowned in UI scatter; every mechanism mediocre.",
        build: winword,
    },
];
