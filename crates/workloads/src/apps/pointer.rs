//! Pointer-Intensive benchmark suite models (5 applications).
//!
//! The suite "helps us evaluate the mechanisms for non-array based
//! reference behavior, which can be more irregular" (§3.1). Per §3.2,
//! anagram and yacr2 sit in the first-touch/strided group, bc and ks
//! have "so few TLB misses" that nothing matters (with DP the only
//! mechanism showing any predictions), and ft exercises fixed-order
//! pointer chasing.

use crate::apps::{AppSpec, Suite};
use crate::class::ReferenceClass;
use crate::gen::VisitStream;
use crate::primitives::{
    phases, BlockChase, DistanceCycle, HotSet, Mix, RandomWalk, RotatePc, StridedScan,
};
use crate::scale::Scale;

const HEAP: u64 = 0x50_0000;
const NOISE: u64 = 0x7c_0000;
const HOT: u64 = 0x0a_0000;

fn b(x: impl Iterator<Item = crate::gen::Visit> + Send + 'static) -> VisitStream {
    Box::new(x)
}

/// anagram: streams a fresh word list once over a resident dictionary —
/// cold misses "become prominent" and ASP/DP capture them (§3.2).
fn anagram(s: Scale) -> VisitStream {
    let words = StridedScan::new(HEAP, 1, s.scaled(550), 120, 0x80010);
    let dict = HotSet::new(HOT, 20, s.scaled(140), 55, 0x80014, 0x3001);
    b(Mix::new(b(words), b(dict), 4))
}

/// bc: the calculator's state is resident (few misses, §3.2); a brief
/// high-fanout expression-tree phase leaves DP the only mechanism with
/// any predictions at all.
fn bc(s: Scale) -> VisitStream {
    let resident = HotSet::new(HEAP, 80, s.scaled(6_000), 20, 0x80020, 0x3112);
    let trees = Mix::new(
        b(DistanceCycle::new(
            HEAP + 200,
            vec![3, 2, 3, 10, 3, -4],
            s.scaled(260),
            4,
            0x80024,
        )),
        b(RandomWalk::new(
            NOISE,
            1500,
            s.scaled(90),
            4,
            0x80028,
            0x3223,
        )),
        4,
    );
    phases(vec![b(resident), b(trees)])
}

/// ft: the Fibonacci-heap/graph benchmark re-walks 2-page node pairs in
/// fixed order — history (RP) territory with modest DP coverage.
fn ft(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(
            HEAP,
            240,
            2,
            s.scaled(9),
            35,
            0x80030,
            0x3334,
        )),
        0x80030,
        3,
    ))
}

/// ks: the Kernighan-Schweikert partitioner keeps its netlist resident
/// (few misses, §3.2); a short noisy gain-update cycle gives DP its
/// sub-20% edge.
fn ks(s: Scale) -> VisitStream {
    let resident = HotSet::new(HEAP, 64, s.scaled(5_000), 18, 0x80040, 0x3445);
    let updates = Mix::new(
        b(DistanceCycle::new(
            HEAP + 150,
            vec![4, 2, 4, 9, 4, -5],
            s.scaled(400),
            4,
            0x80044,
        )),
        b(RandomWalk::new(
            NOISE,
            1200,
            s.scaled(80),
            4,
            0x80048,
            0x3556,
        )),
        4,
    );
    phases(vec![b(resident), b(updates)])
}

/// yacr2: channel routing sweeps fresh track arrays with stride 2;
/// first-touch strided misses favour ASP and DP (§3.2).
fn yacr2(s: Scale) -> VisitStream {
    b(StridedScan::new(HEAP, 2, s.scaled(500), 140, 0x80050))
}

/// The registered Pointer-Intensive models, in the paper's Figure 8
/// order.
pub static APPS: [AppSpec; 5] = [
    AppSpec {
        name: "anagram",
        suite: Suite::PointerIntensive,
        class: ReferenceClass::StridedOnce,
        description: "Fresh word-list streaming over a resident dictionary; cold strided \
                      misses favour ASP/DP.",
        build: anagram,
    },
    AppSpec {
        name: "bc",
        suite: Suite::PointerIntensive,
        class: ReferenceClass::Irregular,
        description: "Resident calculator state with a brief noisy tree phase; few misses, \
                      DP-only predictions.",
        build: bc,
    },
    AppSpec {
        name: "ft",
        suite: Suite::PointerIntensive,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fixed-order 2-page node pairs; RP leads, DP moderate.",
        build: ft,
    },
    AppSpec {
        name: "ks",
        suite: Suite::PointerIntensive,
        class: ReferenceClass::Irregular,
        description: "Resident netlist with a short noisy update cycle; few misses, DP-only \
                      predictions.",
        build: ks,
    },
    AppSpec {
        name: "yacr2",
        suite: Suite::PointerIntensive,
        class: ReferenceClass::StridedOnce,
        description: "Fresh stride-2 track arrays; first-touch misses favour ASP/DP.",
        build: yacr2,
    },
];
