//! SPEC CPU2000 integer application models (12 applications).
//!
//! Parameter choices are derived from the paper's §3.2 prose: which
//! mechanisms succeed on each application, the quoted miss rates for the
//! high-miss applications, and the qualitative pattern descriptions
//! (strided vs. history-repeating vs. alternating vs. few-miss).

use crate::apps::{AppSpec, Suite};
use crate::class::ReferenceClass;
use crate::gen::VisitStream;
use crate::primitives::{
    Alternation, BlockChase, HotSet, LoopedScan, Mix, PointerChase, RotatePc, StridedScan,
};
use crate::scale::Scale;

/// Page bases keeping each logical region disjoint.
const HEAP: u64 = 0x10_0000;
const HOT: u64 = 0x04_0000;

fn b(x: impl Iterator<Item = crate::gen::Visit> + Send + 'static) -> VisitStream {
    Box::new(x)
}

/// gzip: sliding-window compression streams through fresh buffers once —
/// class (a). "Cold misses … regularity helps ASP capture many of the
/// first time reference predictions" (§3.2); history schemes have no
/// repetition to learn. A small resident table region adds TLB hits.
fn gzip(s: Scale) -> VisitStream {
    b(StridedScan::new(HEAP, 1, s.scaled(900), 160, 0x40010))
}

/// vpr: placement/routing walks netlist nodes in a fixed irregular order
/// with short sequential runs — history repeats (RP best, §3.2 Table 3
/// group), strides don't stabilise. Miss rate ≈ 0.016 via block heads
/// holding most of the work; the bursty block tail exposes RP's pointer
/// traffic in the timing experiment.
fn vpr(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(HEAP, 100, 3, s.scaled(12), 1, 0x40100, 0x1bd7).burst_profile(120, 32)),
        0x40100,
        3,
    ))
}

/// gcc: compiler IR passes re-walk allocation-ordered node runs (~4
/// pages) in fixed pass order. RP gives "the best, or close to the best"
/// accuracy; DP "comes very close" via the dominant within-run +1
/// distances; MP needs r above the ~600-page footprint.
fn gcc(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(
            HEAP,
            150,
            4,
            s.scaled(6),
            50,
            0x40200,
            0x2fb3,
        )),
        0x40200,
        3,
    ))
}

/// mcf: network-simplex pointer chasing over a ~4200-page arc array in a
/// fixed traversal order; the paper quotes the second-highest SPEC miss
/// rate (0.090) and RP's accuracy beats DP's (Table 3). Short 3-page
/// runs keep some +1 distances for DP; the jump distances overflow a
/// 256-row distance table, capping DP below RP.
fn mcf(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(HEAP, 1400, 3, s.scaled(5), 1, 0x40300, 0x3e11).burst_profile(21, 6)),
        0x40300,
        3,
    ))
}

/// crafty: chess hash/board structures revisited in fixed
/// pseudo-random order — "accesses are not strided enough for ASP, but
/// historical indications … for RP and MP" (§3.2). The 150-page
/// footprint fits even a 256-row Markov table.
fn crafty(s: Scale) -> VisitStream {
    b(PointerChase::new(
        HEAP,
        150,
        s.scaled(28),
        45,
        0x40400,
        0x4c29,
    ))
}

/// parser: dictionary pages are each followed alternately by their
/// sequential neighbour and by a linkage-table partner — the §3.2
/// alternation "1,2,3,4, 1,5,2,6,3,7,4,8, …" where MP's two slots beat
/// RP's single stack position and DP stays close.
fn parser(s: Scale) -> VisitStream {
    b(Alternation::new(HEAP, 110, s.scaled(10), 45, 0x40500))
}

/// perlbmk: interpreter workload dominated by first-touch string/AST
/// buffers (class (a), ASP/DP-friendly per §3.2) over a resident opcode
/// table.
fn perlbmk(s: Scale) -> VisitStream {
    let fresh = StridedScan::new(HEAP, 1, s.scaled(800), 150, 0x40600);
    let optable = HotSet::new(HOT, 20, s.scaled(800) / 6, 60, 0x40610, 0x5a77);
    b(Mix::new(b(fresh), b(optable), 6))
}

/// eon: ray tracer with a resident scene — "so few TLB misses that a
/// significant history does not build up" (§3.2); only an unpredictable
/// cold fill of 60 pages ever misses.
fn eon(s: Scale) -> VisitStream {
    b(HotSet::new(HEAP, 60, s.scaled(7_000), 20, 0x40700, 0x6d01))
}

/// gap: group-theory vectors rescanned sequentially; 180-page footprint
/// lets *every* mechanism predict ("nearly all mechanisms give quite
/// good prediction accuracies", §3.2) including MP at r = 256.
fn gap(s: Scale) -> VisitStream {
    b(LoopedScan::new(HEAP, 1, 180, s.scaled(10), 70, 0x40800))
}

/// vortex: OO database traversals alternate each object between its
/// sequential successor and an index partner; like parser this favours
/// MP over RP (§3.2), with the 440-page footprint needing r ≥ 512.
fn vortex(s: Scale) -> VisitStream {
    b(Alternation::new(HEAP, 220, s.scaled(5), 55, 0x40900))
}

/// bzip2: block-sorting compressor alternating resident-block re-scans
/// (class (b)) with fresh input streaming (class (a)).
fn bzip2(s: Scale) -> VisitStream {
    let mut phases: Vec<VisitStream> = Vec::new();
    for i in 0..s.scaled(2) {
        phases.push(b(LoopedScan::new(HEAP, 1, 700, 2, 40, 0x40a00)));
        phases.push(b(StridedScan::new(
            HEAP + 0x8_0000 + i * 1200,
            1,
            1200,
            40,
            0x40a10,
        )));
    }
    crate::primitives::phases(phases)
}

/// twolf: standard-cell placement re-walks a 270-page cell list in fixed
/// irregular order with heavy per-cell computation (miss rate ≈ 0.013,
/// §3.2); history schemes lead, DP trails slightly.
fn twolf(s: Scale) -> VisitStream {
    b(RotatePc::new(
        b(BlockChase::new(HEAP, 90, 3, s.scaled(12), 1, 0x40b00, 0x7321).burst_profile(165, 32)),
        0x40b00,
        3,
    ))
}

/// The registered SPEC CPU2000 integer models, in the paper's Figure 7
/// order.
pub static APPS: [AppSpec; 12] = [
    AppSpec {
        name: "gzip",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::StridedOnce,
        description: "Sequential first-touch compression windows; cold misses dominate, so \
                      stride-based schemes (and DP) predict while history-based schemes cannot.",
        build: gzip,
    },
    AppSpec {
        name: "vpr",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fixed-order netlist walk with short sequential runs and bursty block \
                      tails; RP leads on accuracy (Table 3 group), miss rate ~0.016.",
        build: vpr,
    },
    AppSpec {
        name: "gcc",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "IR passes re-walk 4-page node runs in fixed order; RP best, DP very \
                      close via within-run distances, MP needs a large table.",
        build: gcc,
    },
    AppSpec {
        name: "mcf",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Network-simplex pointer chase over ~4200 pages, miss rate ~0.090; RP's \
                      accuracy beats DP's but its pointer traffic costs cycles (Table 3).",
        build: mcf,
    },
    AppSpec {
        name: "crafty",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Small fixed-order hash/board chase: not strided enough for ASP, ideal \
                      for RP and (at the 150-page footprint) MP.",
        build: crafty,
    },
    AppSpec {
        name: "parser",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "The paper's alternation pattern: each page has two recurring successors, \
                      so MP (s=2) beats RP; DP stays close.",
        build: parser,
    },
    AppSpec {
        name: "perlbmk",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::StridedOnce,
        description: "First-touch interpreter buffers over a hot opcode table; ASP and DP \
                      capture the cold strided misses.",
        build: perlbmk,
    },
    AppSpec {
        name: "eon",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::Irregular,
        description: "Resident ray-tracing scene: almost no TLB misses, so no mechanism can \
                      (or needs to) predict.",
        build: eon,
    },
    AppSpec {
        name: "gap",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::StridedRepeated,
        description: "Repeated sequential scans of a 180-page vector set; every mechanism \
                      including small-table MP predicts well.",
        build: gap,
    },
    AppSpec {
        name: "vortex",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Database object alternation (like parser) over a 440-page footprint; \
                      MP beats RP, larger tables required.",
        build: vortex,
    },
    AppSpec {
        name: "bzip",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::StridedChanging,
        description: "Alternating resident block re-sorts and fresh input streaming; stride \
                      and distance schemes track both phases.",
        build: bzip2,
    },
    AppSpec {
        name: "twolf",
        suite: Suite::SpecCpu2000,
        class: ReferenceClass::RepeatingIrregular,
        description: "Fixed-order cell-list walk, miss rate ~0.013, bursty block tails; \
                      RP leads narrowly on accuracy (Table 3 group).",
        build: twolf,
    },
];
