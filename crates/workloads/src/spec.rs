//! The [`StreamSpec`] abstraction: anything that can instantiate a
//! named, splittable reference stream.
//!
//! The simulator's run entry points (`run_app`, `sweep`,
//! `run_app_sharded`) used to be tied to the 56 registered [`AppSpec`]
//! models. Recorded traces are just as much a "runnable stream at a
//! scale" — the paper's own methodology is trace-driven — so the
//! runners are generic over this trait instead: an [`AppSpec`] builds
//! its generator, a `TraceWorkload` opens a fresh mmap cursor, and both
//! shard identically because both report an exact [`stream_len`] and
//! hand out independently positionable [`Workload`]s.
//!
//! [`AppSpec`]: crate::AppSpec
//! [`stream_len`]: StreamSpec::stream_len

use crate::gen::Workload;
use crate::scale::Scale;

/// A named source of reference streams, instantiable any number of
/// times at a given [`Scale`].
///
/// Implementations must be deterministic: two workloads from the same
/// spec at the same scale yield bit-identical access streams, and
/// [`stream_len`](StreamSpec::stream_len) reports the exact access
/// count of such a stream — the contract the sharded executor's static
/// partitioning rests on.
///
/// `Send + Sync` are supertraits because the sweep and shard executors
/// instantiate workloads from worker threads.
pub trait StreamSpec: Send + Sync {
    /// The stream's name (application or trace identifier).
    fn name(&self) -> &str;

    /// Instantiates a fresh stream at `scale`, positioned at access 0.
    fn workload(&self, scale: Scale) -> Workload;

    /// The exact number of accesses [`workload`](StreamSpec::workload)
    /// will emit at `scale`, computed without expanding the stream.
    fn stream_len(&self, scale: Scale) -> u64;

    /// Records the spec's input lost to quarantine decode (see
    /// `tlbsim_trace::DecodePolicy`): 0 for synthetic models and
    /// cleanly-decoded traces; a damaged trace opened under quarantine
    /// reports what was skipped, and a mix sums its members. Runners
    /// surface the value in their run-health reports, so lossy input is
    /// visible at the top of the stack, never silent.
    fn quarantined_records(&self) -> u64 {
        0
    }

    /// Preferred alignment (in accesses) for shard-boundary positions.
    /// Always ≥ 1; the default of 1 means any position seeks equally
    /// fast. Block-compressed traces report their records-per-block so
    /// the sharded executor lands cuts on block boundaries, where a
    /// seek costs zero delta decoding. Purely advisory: any position is
    /// *correct* to seek to — misaligned cuts only pay a bounded
    /// decode-forward inside one block.
    fn seek_alignment(&self) -> u64 {
        1
    }
}

impl<S: StreamSpec + ?Sized> StreamSpec for &S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn workload(&self, scale: Scale) -> Workload {
        (**self).workload(scale)
    }

    fn stream_len(&self, scale: Scale) -> u64 {
        (**self).stream_len(scale)
    }

    fn quarantined_records(&self) -> u64 {
        (**self).quarantined_records()
    }

    fn seek_alignment(&self) -> u64 {
        (**self).seek_alignment()
    }
}

impl<S: StreamSpec + ?Sized> StreamSpec for std::sync::Arc<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn workload(&self, scale: Scale) -> Workload {
        (**self).workload(scale)
    }

    fn stream_len(&self, scale: Scale) -> u64 {
        (**self).stream_len(scale)
    }

    fn quarantined_records(&self) -> u64 {
        (**self).quarantined_records()
    }

    fn seek_alignment(&self) -> u64 {
        (**self).seek_alignment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::find_app;

    fn assert_spec<S: StreamSpec>(spec: &S) -> (String, u64) {
        (spec.name().to_owned(), spec.stream_len(Scale::TINY))
    }

    #[test]
    fn app_specs_and_their_references_are_stream_specs() {
        let app = find_app("gap").unwrap();
        let direct = assert_spec(app);
        let arced = assert_spec(&std::sync::Arc::new(app));
        assert_eq!(direct, arced);
        let as_dyn: &dyn StreamSpec = app;
        assert_eq!(as_dyn.name(), "gap");
        assert_eq!(
            as_dyn.workload(Scale::TINY).count() as u64,
            as_dyn.stream_len(Scale::TINY)
        );
    }
}
