//! Combinators over visit streams.
//!
//! Real applications rarely follow one pure pattern; these combinators
//! compose primitives: [`Mix`] interleaves a noise stream into a main
//! stream at a fixed period (capping every mechanism's accuracy),
//! [`Interleave`] round-robins several streams (concurrent array
//! walks), and [`phases`] chains patterns sequentially (program phases).

use crate::gen::{Visit, VisitStream};

/// Interleaves `noise` into `main`: every `period`-th visit comes from
/// the noise stream (period 4 = 25% noise). Ends when `main` ends; a
/// finished noise stream is simply skipped.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::{Mix, StridedScan, Visit};
///
/// let main = Box::new(StridedScan::new(0, 1, 6, 1, 0x40));
/// let noise = Box::new(StridedScan::new(1000, 1, 6, 1, 0x44));
/// let pages: Vec<u64> = Mix::new(main, noise, 3).map(|v| v.page).collect();
/// assert_eq!(pages, vec![0, 1, 1000, 2, 3, 1001, 4, 5, 1002]);
/// ```
pub struct Mix {
    main: VisitStream,
    noise: VisitStream,
    period: u64,
    count: u64,
}

impl Mix {
    /// Creates a mix emitting one noise visit after every `period - 1`
    /// main visits.
    ///
    /// # Panics
    ///
    /// Panics if `period` is less than 2 (all-noise is not a mix).
    pub fn new(main: VisitStream, noise: VisitStream, period: u64) -> Self {
        assert!(period >= 2, "mix period must be at least 2");
        Mix {
            main,
            noise,
            period,
            count: 0,
        }
    }
}

impl Iterator for Mix {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        self.count += 1;
        if self.count.is_multiple_of(self.period) {
            if let Some(v) = self.noise.next() {
                return Some(v);
            }
        }
        self.main.next()
    }
}

impl std::fmt::Debug for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mix").field("period", &self.period).finish()
    }
}

/// Round-robins several visit streams with a per-stream burst length,
/// modelling loops that walk multiple arrays concurrently. Finished
/// streams drop out; iteration ends when all are exhausted.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::{Interleave, StridedScan};
///
/// let a = Box::new(StridedScan::new(0, 1, 4, 1, 0x40));
/// let b = Box::new(StridedScan::new(100, 1, 4, 1, 0x44));
/// let pages: Vec<u64> = Interleave::new(vec![a, b], 1).map(|v| v.page).collect();
/// assert_eq!(pages, vec![0, 100, 1, 101, 2, 102, 3, 103]);
/// ```
pub struct Interleave {
    streams: Vec<Option<VisitStream>>,
    burst: u64,
    current: usize,
    in_burst: u64,
}

impl Interleave {
    /// Creates a round-robin interleave emitting `burst` visits from each
    /// stream in turn.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or `burst` is zero.
    pub fn new(streams: Vec<VisitStream>, burst: u64) -> Self {
        assert!(!streams.is_empty(), "interleave needs at least one stream");
        assert!(burst > 0, "interleave burst must be at least 1");
        Interleave {
            streams: streams.into_iter().map(Some).collect(),
            burst,
            current: 0,
            in_burst: 0,
        }
    }
}

impl Iterator for Interleave {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        let n = self.streams.len();
        for _ in 0..n {
            if let Some(stream) = &mut self.streams[self.current] {
                if let Some(v) = stream.next() {
                    self.in_burst += 1;
                    if self.in_burst == self.burst {
                        self.in_burst = 0;
                        self.current = (self.current + 1) % n;
                    }
                    return Some(v);
                }
                self.streams[self.current] = None;
            }
            self.in_burst = 0;
            self.current = (self.current + 1) % n;
        }
        None
    }
}

impl std::fmt::Debug for Interleave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interleave")
            .field("streams", &self.streams.len())
            .field("burst", &self.burst)
            .finish()
    }
}

/// Rotates visits across several PCs, modelling a loop body with more
/// than one load instruction.
///
/// A fixed traversal driven by `k` loads means each individual PC
/// observes only every `k`-th miss, so its per-PC stride is the sum of
/// `k` consecutive distances — rarely stable. This cripples PC-indexed
/// stride prediction (ASP) on irregular walks without affecting the
/// PC-agnostic mechanisms, which is how real pointer code behaves.
/// Note that on a *constant-stride* scan rotation is harmless to ASP:
/// each PC still sees a constant (scaled) stride.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::{RotatePc, StridedScan};
///
/// let scan = Box::new(StridedScan::new(0, 1, 4, 1, 0));
/// let pcs: Vec<u64> = RotatePc::new(scan, 0x40, 2).map(|v| v.pc).collect();
/// assert_eq!(pcs, vec![0x40, 0x44, 0x40, 0x44]);
/// ```
pub struct RotatePc {
    inner: VisitStream,
    base: u64,
    count: u64,
    index: u64,
}

impl RotatePc {
    /// Rotates the stream's visits across `count` word-spaced PCs
    /// starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(inner: VisitStream, base: u64, count: u64) -> Self {
        assert!(count > 0, "pc rotation needs at least one pc");
        RotatePc {
            inner,
            base,
            count,
            index: 0,
        }
    }
}

impl Iterator for RotatePc {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        let mut visit = self.inner.next()?;
        visit.pc = self.base + 4 * (self.index % self.count);
        self.index += 1;
        Some(visit)
    }
}

impl std::fmt::Debug for RotatePc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RotatePc")
            .field("count", &self.count)
            .finish()
    }
}

/// Chains visit streams end to end — sequential program phases.
pub fn phases(streams: Vec<VisitStream>) -> VisitStream {
    let mut iter: VisitStream = Box::new(std::iter::empty());
    for s in streams {
        iter = Box::new(iter.chain(s));
    }
    iter
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::strided::StridedScan;

    fn scan(base: u64, n: u64, pc: u64) -> VisitStream {
        Box::new(StridedScan::new(base, 1, n, 1, pc))
    }

    #[test]
    fn mix_ends_with_main() {
        let pages: Vec<u64> = Mix::new(scan(0, 4, 0), scan(100, 100, 1), 2)
            .map(|v| v.page)
            .collect();
        // main, noise, main, noise, main, noise, main, noise -> main runs out after 4.
        assert_eq!(pages.iter().filter(|p| **p < 100).count(), 4);
    }

    #[test]
    fn mix_survives_noise_exhaustion() {
        let pages: Vec<u64> = Mix::new(scan(0, 6, 0), scan(100, 1, 1), 2)
            .map(|v| v.page)
            .collect();
        assert_eq!(pages.len(), 7);
        assert_eq!(pages.iter().filter(|p| **p >= 100).count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn mix_period_one_panics() {
        let _ = Mix::new(scan(0, 1, 0), scan(1, 1, 0), 1);
    }

    #[test]
    fn interleave_bursts() {
        let pages: Vec<u64> = Interleave::new(vec![scan(0, 4, 0), scan(100, 4, 1)], 2)
            .map(|v| v.page)
            .collect();
        assert_eq!(pages, vec![0, 1, 100, 101, 2, 3, 102, 103]);
    }

    #[test]
    fn interleave_drains_uneven_streams() {
        let pages: Vec<u64> = Interleave::new(vec![scan(0, 2, 0), scan(100, 5, 1)], 1)
            .map(|v| v.page)
            .collect();
        assert_eq!(pages.len(), 7);
        assert_eq!(pages[4..], [102, 103, 104]);
    }

    #[test]
    fn rotate_pc_cycles_and_preserves_pages() {
        let pages: Vec<u64> = RotatePc::new(scan(5, 6, 0), 0x100, 3)
            .map(|v| v.page)
            .collect();
        assert_eq!(pages, vec![5, 6, 7, 8, 9, 10]);
        let pcs: Vec<u64> = RotatePc::new(scan(0, 6, 0), 0x100, 3)
            .map(|v| v.pc)
            .collect();
        assert_eq!(pcs, vec![0x100, 0x104, 0x108, 0x100, 0x104, 0x108]);
    }

    #[test]
    #[should_panic(expected = "at least one pc")]
    fn rotate_pc_zero_panics() {
        let _ = RotatePc::new(scan(0, 1, 0), 0, 0);
    }

    #[test]
    fn phases_chain_in_order() {
        let pages: Vec<u64> = phases(vec![scan(0, 2, 0), scan(10, 2, 0)])
            .map(|v| v.page)
            .collect();
        assert_eq!(pages, vec![0, 1, 10, 11]);
    }

    #[test]
    fn phases_of_nothing_is_empty() {
        assert_eq!(phases(vec![]).count(), 0);
    }
}
