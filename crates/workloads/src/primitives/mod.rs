//! Reference-pattern primitives.
//!
//! Each primitive is an iterator of [`Visit`](crate::Visit)s reproducing
//! one of the paper's reference-behaviour classes; application models in
//! [`crate::apps`] compose them.

pub mod alternation;
pub mod chase;
pub mod cycle;
pub mod mix;
pub mod random;
pub mod strided;

pub use alternation::Alternation;
pub use chase::{BlockChase, PointerChase};
pub use cycle::DistanceCycle;
pub use mix::{phases, Interleave, Mix, RotatePc};
pub use random::{HotSet, RandomWalk};
pub use strided::{LoopedScan, StridedScan};
