//! Pointer-chase patterns — history-friendly irregular behaviour.
//!
//! A [`PointerChase`] visits the pages of a region in a fixed pseudo-random
//! permutation, lap after lap — the page-level picture of walking a linked
//! structure whose layout does not change. Address-history mechanisms (RP,
//! and MP when the footprint fits its table) excel here after the first
//! lap, while stride predictors see noise. [`BlockChase`] visits *runs* of
//! sequential pages in permuted order, which is what compiled pointer code
//! over multi-page nodes (or region-allocated graphs) produces; the run
//! length is the knob that moves an application between "history only"
//! (run 1) and "distance prefetching nearly matches history" (run 4+),
//! matching the §3.2 spectrum from crafty/mcf to gcc/ammp.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::gen::Visit;

fn permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut order: Vec<u64> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order
}

/// Visits a region's pages in a fixed (or per-lap reshuffled) random
/// order.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::PointerChase;
///
/// let lap1: Vec<u64> = PointerChase::new(1000, 16, 1, 4, 0x40, 7).map(|v| v.page).collect();
/// let lap2: Vec<u64> = PointerChase::new(1000, 16, 1, 4, 0x40, 7).map(|v| v.page).collect();
/// assert_eq!(lap1, lap2); // same seed, same order
/// ```
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    order: Vec<u64>,
    laps: u64,
    refs: u32,
    pc: u64,
    reshuffle: Option<SmallRng>,
    lap: u64,
    pos: usize,
}

impl PointerChase {
    /// Creates a chase over `pages` pages starting at page `base`,
    /// repeated for `laps` laps in an order fixed by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(base: u64, pages: u64, laps: u64, refs: u32, pc: u64, seed: u64) -> Self {
        assert!(pages > 0, "pointer chase needs at least one page");
        PointerChase {
            base,
            order: permutation(pages, seed),
            laps,
            refs,
            pc,
            reshuffle: None,
            lap: 0,
            pos: 0,
        }
    }

    /// Reshuffles the visit order every lap, destroying the repeating
    /// history — class (e), the fma3d-style pattern nothing predicts.
    pub fn reshuffled_each_lap(mut self, seed: u64) -> Self {
        self.reshuffle = Some(SmallRng::seed_from_u64(seed));
        self
    }

    /// The number of distinct pages visited.
    pub fn footprint(&self) -> u64 {
        self.order.len() as u64
    }
}

impl Iterator for PointerChase {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        if self.lap == self.laps {
            return None;
        }
        let page = self.base + self.order[self.pos];
        self.pos += 1;
        if self.pos == self.order.len() {
            self.pos = 0;
            self.lap += 1;
            if let Some(rng) = &mut self.reshuffle {
                if self.lap < self.laps {
                    self.order.shuffle(rng);
                }
            }
        }
        Some(Visit::new(page, self.refs, self.pc))
    }
}

/// Visits runs of `run_len` consecutive pages in a permuted block order,
/// lap after lap.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::BlockChase;
///
/// let chase = BlockChase::new(0, 8, 4, 1, 2, 0x40, 3);
/// assert_eq!(chase.footprint(), 32);
/// assert_eq!(chase.count(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct BlockChase {
    base: u64,
    block_order: Vec<u64>,
    run_len: u64,
    laps: u64,
    refs_first: u32,
    refs_rest: u32,
    pc: u64,
    lap: u64,
    block_pos: usize,
    in_block: u64,
}

impl BlockChase {
    /// Creates a chase over `blocks` blocks of `run_len` consecutive
    /// pages each, in an order fixed by `seed`, repeated `laps` times.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` or `run_len` is zero.
    pub fn new(
        base: u64,
        blocks: u64,
        run_len: u64,
        laps: u64,
        refs: u32,
        pc: u64,
        seed: u64,
    ) -> Self {
        assert!(
            blocks > 0 && run_len > 0,
            "block chase needs a non-empty geometry"
        );
        BlockChase {
            base,
            block_order: permutation(blocks, seed),
            run_len,
            laps,
            refs_first: refs,
            refs_rest: refs,
            pc,
            lap: 0,
            block_pos: 0,
            in_block: 0,
        }
    }

    /// Concentrates work on the first page of each block: `first` refs on
    /// the block head and `rest` on the remaining pages.
    ///
    /// This makes the *miss stream bursty* — the remaining pages of a
    /// block miss back-to-back right after the block head — without
    /// changing which pages are visited. Burstiness is what exposes
    /// recency prefetching's memory-traffic cost in the Table 3 timing
    /// experiment: within a burst the LRU-stack pointer updates of one
    /// miss are still in flight when the next miss arrives.
    pub fn burst_profile(mut self, first: u32, rest: u32) -> Self {
        self.refs_first = first.max(1);
        self.refs_rest = rest.max(1);
        self
    }

    /// The number of distinct pages visited.
    pub fn footprint(&self) -> u64 {
        self.block_order.len() as u64 * self.run_len
    }

    /// Average references per page visit.
    pub fn mean_refs_per_visit(&self) -> f64 {
        (self.refs_first as u64 + self.refs_rest as u64 * (self.run_len - 1)) as f64
            / self.run_len as f64
    }
}

impl Iterator for BlockChase {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        if self.lap == self.laps {
            return None;
        }
        let block = self.block_order[self.block_pos];
        let page = self.base + block * self.run_len + self.in_block;
        let refs = if self.in_block == 0 {
            self.refs_first
        } else {
            self.refs_rest
        };
        self.in_block += 1;
        if self.in_block == self.run_len {
            self.in_block = 0;
            self.block_pos += 1;
            if self.block_pos == self.block_order.len() {
                self.block_pos = 0;
                self.lap += 1;
            }
        }
        Some(Visit::new(page, refs, self.pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn chase_covers_region_each_lap() {
        let pages: Vec<u64> = PointerChase::new(100, 32, 2, 1, 0, 9)
            .map(|v| v.page)
            .collect();
        assert_eq!(pages.len(), 64);
        let lap1: HashSet<u64> = pages[..32].iter().copied().collect();
        assert_eq!(lap1.len(), 32);
        assert!(lap1.iter().all(|p| (100..132).contains(p)));
        // Fixed order: lap 2 repeats lap 1.
        assert_eq!(&pages[..32], &pages[32..]);
    }

    #[test]
    fn chase_order_is_not_sequential() {
        let pages: Vec<u64> = PointerChase::new(0, 64, 1, 1, 0, 1)
            .map(|v| v.page)
            .collect();
        let sequential: Vec<u64> = (0..64).collect();
        assert_ne!(pages, sequential);
    }

    #[test]
    fn reshuffled_chase_changes_order_between_laps() {
        let pages: Vec<u64> = PointerChase::new(0, 64, 2, 1, 0, 1)
            .reshuffled_each_lap(2)
            .map(|v| v.page)
            .collect();
        assert_ne!(&pages[..64], &pages[64..]);
        // Both laps still cover the region.
        let lap2: HashSet<u64> = pages[64..].iter().copied().collect();
        assert_eq!(lap2.len(), 64);
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a: Vec<u64> = PointerChase::new(0, 64, 1, 1, 0, 1)
            .map(|v| v.page)
            .collect();
        let b: Vec<u64> = PointerChase::new(0, 64, 1, 1, 0, 2)
            .map(|v| v.page)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn block_chase_runs_are_sequential() {
        let pages: Vec<u64> = BlockChase::new(0, 4, 4, 1, 1, 0, 5)
            .map(|v| v.page)
            .collect();
        assert_eq!(pages.len(), 16);
        for run in pages.chunks(4) {
            for w in run.windows(2) {
                assert_eq!(w[1], w[0] + 1, "within-run pages must be consecutive");
            }
        }
        let distinct: HashSet<u64> = pages.iter().copied().collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn block_chase_repeats_identically() {
        let pages: Vec<u64> = BlockChase::new(0, 4, 3, 2, 1, 0, 5)
            .map(|v| v.page)
            .collect();
        assert_eq!(&pages[..12], &pages[12..]);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn empty_chase_panics() {
        let _ = PointerChase::new(0, 0, 1, 1, 0, 0);
    }

    #[test]
    fn burst_profile_varies_refs_within_block() {
        let visits: Vec<Visit> = BlockChase::new(0, 2, 3, 1, 1, 0, 5)
            .burst_profile(100, 2)
            .collect();
        assert_eq!(visits.len(), 6);
        for block in visits.chunks(3) {
            assert_eq!(block[0].refs, 100);
            assert_eq!(block[1].refs, 2);
            assert_eq!(block[2].refs, 2);
        }
    }

    #[test]
    fn mean_refs_accounts_for_burst_profile() {
        let c = BlockChase::new(0, 4, 4, 1, 1, 0, 5).burst_profile(10, 2);
        assert!((c.mean_refs_per_visit() - 4.0).abs() < 1e-12);
    }
}
