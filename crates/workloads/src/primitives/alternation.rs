//! The history-alternation pattern of §3.2.
//!
//! The paper explains MP beating RP on parser and vortex with the
//! sequence "1, 2, 3, 4, 1, 5, 2, 6, 3, 7, 4, 8, 1, 2, 3, 4, …": each
//! base page is followed *alternately* by its sequential successor and by
//! a partner page from a second region. A Markov row with `s = 2` slots
//! retains both successors; recency prefetching's single stack position
//! cannot, and a PC-indexed stride predictor never sees a stable stride.

use crate::gen::Visit;

/// Generates the alternation pattern over a base region of `n` pages and
/// a partner region of `n` pages.
///
/// Each round emits two blocks: the base region in order
/// (`base..base+n`), then the base region interleaved with the partner
/// region (`base, partner, base+1, partner+1, …`).
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::Alternation;
///
/// let pages: Vec<u64> = Alternation::new(1, 4, 1, 1, 0x40).map(|v| v.page).collect();
/// // The paper's example string: 1,2,3,4 then 1,5,2,6,3,7,4,8.
/// assert_eq!(pages, vec![1, 2, 3, 4, 1, 5, 2, 6, 3, 7, 4, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Alternation {
    base: u64,
    n: u64,
    rounds: u64,
    refs: u32,
    pc: u64,
    round: u64,
    phase: u8,
    pos: u64,
}

impl Alternation {
    /// Creates `rounds` rounds of the two-block pattern.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(base: u64, n: u64, rounds: u64, refs: u32, pc: u64) -> Self {
        assert!(n > 0, "alternation needs a non-empty region");
        Alternation {
            base,
            n,
            rounds,
            refs,
            pc,
            round: 0,
            phase: 0,
            pos: 0,
        }
    }

    /// Total distinct pages touched (base + partner regions).
    pub fn footprint(&self) -> u64 {
        self.n * 2
    }
}

impl Iterator for Alternation {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        if self.round == self.rounds {
            return None;
        }
        let (page, advance) = match self.phase {
            // Block A: base region in order.
            0 => (self.base + self.pos, 1),
            // Block B: interleave base with partner.
            _ => {
                let pair = self.pos / 2;
                if self.pos.is_multiple_of(2) {
                    (self.base + pair, 1)
                } else {
                    (self.base + self.n + pair, 1)
                }
            }
        };
        self.pos += advance;
        let block_len = if self.phase == 0 { self.n } else { self.n * 2 };
        if self.pos == block_len {
            self.pos = 0;
            if self.phase == 0 {
                self.phase = 1;
            } else {
                self.phase = 0;
                self.round += 1;
            }
        }
        Some(Visit::new(page, self.refs, self.pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_example() {
        let pages: Vec<u64> = Alternation::new(1, 4, 2, 1, 0).map(|v| v.page).collect();
        assert_eq!(
            pages,
            vec![1, 2, 3, 4, 1, 5, 2, 6, 3, 7, 4, 8, 1, 2, 3, 4, 1, 5, 2, 6, 3, 7, 4, 8]
        );
    }

    #[test]
    fn each_base_page_has_two_distinct_successors() {
        let pages: Vec<u64> = Alternation::new(0, 8, 3, 1, 0).map(|v| v.page).collect();
        // Collect successors of page 2 across the stream.
        let succ: std::collections::HashSet<u64> = pages
            .windows(2)
            .filter(|w| w[0] == 2)
            .map(|w| w[1])
            .collect();
        assert_eq!(succ.len(), 2); // 3 (block A) and 10 (block B)
        assert!(succ.contains(&3) && succ.contains(&10));
    }

    #[test]
    fn footprint_counts_both_regions() {
        assert_eq!(Alternation::new(0, 16, 1, 1, 0).footprint(), 32);
    }

    #[test]
    fn round_length_is_3n() {
        assert_eq!(Alternation::new(0, 10, 4, 1, 0).count(), 4 * 30);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_region_panics() {
        let _ = Alternation::new(0, 0, 1, 1, 0);
    }
}
