//! Irregular and resident patterns — behaviour class (e) and the
//! low-miss-rate applications.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::gen::Visit;

/// Uniformly random page visits over a region — class (e), where no
/// mechanism can predict anything (the fma3d behaviour).
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::RandomWalk;
///
/// let a: Vec<u64> = RandomWalk::new(0, 100, 50, 1, 0x40, 7).map(|v| v.page).collect();
/// let b: Vec<u64> = RandomWalk::new(0, 100, 50, 1, 0x40, 7).map(|v| v.page).collect();
/// assert_eq!(a, b); // deterministic per seed
/// ```
#[derive(Debug, Clone)]
pub struct RandomWalk {
    base: u64,
    region: u64,
    remaining: u64,
    refs: u32,
    pc: u64,
    rng: SmallRng,
}

impl RandomWalk {
    /// Creates `visits` uniform visits over `region` pages at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is zero.
    pub fn new(base: u64, region: u64, visits: u64, refs: u32, pc: u64, seed: u64) -> Self {
        assert!(region > 0, "random walk needs a non-empty region");
        RandomWalk {
            base,
            region,
            remaining: visits,
            refs,
            pc,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Iterator for RandomWalk {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let page = self.base + self.rng.gen_range(0..self.region);
        Some(Visit::new(page, self.refs, self.pc))
    }
}

/// A small resident working set: the region is cold-filled once in a
/// seeded random order, then revisited uniformly at random.
///
/// With a region smaller than the TLB this produces almost no misses
/// after the cold fill — the eon/g721/pgp-dec behaviour where "TLB
/// prefetching is not as important anyway" (§3.2), and where no scheme
/// can look good because the cold fill order is unpredictable.
#[derive(Debug, Clone)]
pub struct HotSet {
    cold: Vec<u64>,
    cold_pos: usize,
    base: u64,
    region: u64,
    hot_remaining: u64,
    refs: u32,
    pc: u64,
    rng: SmallRng,
}

impl HotSet {
    /// Creates a hot set of `region` pages at `base` revisited by
    /// `hot_visits` random visits after the cold fill.
    ///
    /// # Panics
    ///
    /// Panics if `region` is zero.
    pub fn new(base: u64, region: u64, hot_visits: u64, refs: u32, pc: u64, seed: u64) -> Self {
        assert!(region > 0, "hot set needs a non-empty region");
        let mut cold: Vec<u64> = (0..region).collect();
        use rand::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(seed);
        cold.shuffle(&mut rng);
        HotSet {
            cold,
            cold_pos: 0,
            base,
            region,
            hot_remaining: hot_visits,
            refs,
            pc,
            rng,
        }
    }

    /// The number of distinct pages (cold-fill region size).
    pub fn footprint(&self) -> u64 {
        self.region
    }
}

impl Iterator for HotSet {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        if self.cold_pos < self.cold.len() {
            let page = self.base + self.cold[self.cold_pos];
            self.cold_pos += 1;
            return Some(Visit::new(page, self.refs, self.pc));
        }
        if self.hot_remaining == 0 {
            return None;
        }
        self.hot_remaining -= 1;
        let page = self.base + self.rng.gen_range(0..self.region);
        Some(Visit::new(page, self.refs, self.pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn random_walk_stays_in_region() {
        for v in RandomWalk::new(1000, 50, 500, 1, 0, 3) {
            assert!((1000..1050).contains(&v.page));
        }
    }

    #[test]
    fn random_walk_count_is_exact() {
        assert_eq!(RandomWalk::new(0, 10, 123, 1, 0, 3).count(), 123);
    }

    #[test]
    fn random_walk_is_not_constant() {
        let pages: HashSet<u64> = RandomWalk::new(0, 100, 200, 1, 0, 3)
            .map(|v| v.page)
            .collect();
        assert!(pages.len() > 50);
    }

    #[test]
    fn hot_set_cold_fills_every_page_once() {
        let visits: Vec<u64> = HotSet::new(0, 64, 10, 1, 0, 3).map(|v| v.page).collect();
        let cold: HashSet<u64> = visits[..64].iter().copied().collect();
        assert_eq!(cold.len(), 64);
        assert_eq!(visits.len(), 74);
    }

    #[test]
    fn hot_set_cold_fill_is_shuffled() {
        let visits: Vec<u64> = HotSet::new(0, 64, 0, 1, 0, 3).map(|v| v.page).collect();
        let sequential: Vec<u64> = (0..64).collect();
        assert_ne!(visits, sequential);
    }

    #[test]
    fn hot_visits_stay_in_region() {
        for v in HotSet::new(500, 32, 100, 1, 0, 9) {
            assert!((500..532).contains(&v.page));
        }
    }
}
