//! Strided and looping scan patterns — behaviour classes (a) and (b).

use crate::gen::Visit;

/// A single strided pass over a region: pages `base, base+stride,
/// base+2·stride, …` — class (a) when run once over fresh memory.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::StridedScan;
///
/// let pages: Vec<u64> = StridedScan::new(100, 3, 4, 1, 0x40)
///     .map(|v| v.page)
///     .collect();
/// assert_eq!(pages, vec![100, 103, 106, 109]);
/// ```
#[derive(Debug, Clone)]
pub struct StridedScan {
    base: i64,
    stride: i64,
    pages: u64,
    refs: u32,
    pc: u64,
    index: u64,
}

impl StridedScan {
    /// Creates a scan of `pages` page visits starting at `base` with the
    /// given page `stride`, issuing `refs` references per page from `pc`.
    ///
    /// # Panics
    ///
    /// Panics if the scan would leave the non-negative page range.
    pub fn new(base: u64, stride: i64, pages: u64, refs: u32, pc: u64) -> Self {
        let last = base as i64 + stride * pages.saturating_sub(1) as i64;
        assert!(
            last >= 0 && base <= i64::MAX as u64,
            "strided scan leaves the page range (base {base}, stride {stride}, pages {pages})"
        );
        StridedScan {
            base: base as i64,
            stride,
            pages,
            refs,
            pc,
            index: 0,
        }
    }
}

impl Iterator for StridedScan {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        if self.index == self.pages {
            return None;
        }
        let page = self.base + self.stride * self.index as i64;
        self.index += 1;
        Some(Visit::new(page as u64, self.refs, self.pc))
    }
}

/// Repeated strided passes over the *same* region — class (b): regular
/// accesses to data touched several times, the pattern where both
/// stride- and history-based prefetchers succeed.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::LoopedScan;
///
/// let pages: Vec<u64> = LoopedScan::new(0, 1, 3, 2, 1, 0x40)
///     .map(|v| v.page)
///     .collect();
/// assert_eq!(pages, vec![0, 1, 2, 0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct LoopedScan {
    base: u64,
    stride: i64,
    pages: u64,
    laps: u64,
    refs: u32,
    pc: u64,
    current: Option<StridedScan>,
    lap: u64,
}

impl LoopedScan {
    /// Creates `laps` consecutive strided passes over the same region.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`StridedScan::new`].
    pub fn new(base: u64, stride: i64, pages: u64, laps: u64, refs: u32, pc: u64) -> Self {
        // Validate eagerly so a bad geometry fails at construction.
        let _ = StridedScan::new(base, stride, pages, refs, pc);
        LoopedScan {
            base,
            stride,
            pages,
            laps,
            refs,
            pc,
            current: None,
            lap: 0,
        }
    }

    /// The number of distinct pages the pattern touches.
    pub fn footprint(&self) -> u64 {
        self.pages
    }
}

impl Iterator for LoopedScan {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        loop {
            if let Some(scan) = &mut self.current {
                if let Some(v) = scan.next() {
                    return Some(v);
                }
                self.current = None;
            }
            if self.lap == self.laps {
                return None;
            }
            self.lap += 1;
            self.current = Some(StridedScan::new(
                self.base,
                self.stride,
                self.pages,
                self.refs,
                self.pc,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_scan_visits_expected_pages() {
        let v: Vec<u64> = StridedScan::new(10, -2, 3, 1, 0).map(|v| v.page).collect();
        assert_eq!(v, vec![10, 8, 6]);
    }

    #[test]
    fn refs_and_pc_are_propagated() {
        let v: Vec<Visit> = StridedScan::new(0, 1, 2, 5, 0x77).collect();
        assert!(v.iter().all(|v| v.refs == 5 && v.pc == 0x77));
    }

    #[test]
    #[should_panic(expected = "leaves the page range")]
    fn underflowing_scan_panics() {
        let _ = StridedScan::new(1, -1, 5, 1, 0);
    }

    #[test]
    fn looped_scan_repeats_exactly() {
        let total = LoopedScan::new(5, 2, 4, 3, 1, 0).count();
        assert_eq!(total, 12);
    }

    #[test]
    fn looped_scan_zero_laps_is_empty() {
        assert_eq!(LoopedScan::new(0, 1, 4, 0, 1, 0).count(), 0);
    }

    #[test]
    fn footprint_is_page_count() {
        assert_eq!(LoopedScan::new(0, 3, 7, 2, 1, 0).footprint(), 7);
    }
}
