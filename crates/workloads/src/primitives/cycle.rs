//! Distance-cycle patterns — behaviour classes (c) and (d).
//!
//! A [`DistanceCycle`] walks fresh memory with a repeating *sequence of
//! distances*. The stride is never constant, so per-PC stride predictors
//! (ASP) cannot reach their steady state, and the pages are fresh, so
//! per-address history (MP, RP) has nothing to predict from — but the
//! distance transitions repeat exactly, which is the structure distance
//! prefetching was designed to exploit (§2.5). Cycles with repeated
//! values (e.g. `[9, 4, 9, 17, 9, -6]`) give individual distance rows a
//! successor fan-out larger than `s`, bounding even DP's accuracy — the
//! knob used to model the "DP is the only mechanism with noticeable
//! predictions, though below 20%" applications.

use crate::gen::Visit;

/// Walks fresh pages with a repeating cycle of distances.
///
/// # Examples
///
/// ```
/// use tlbsim_workloads::DistanceCycle;
///
/// let pages: Vec<u64> = DistanceCycle::new(100, vec![1, 1, 6], 6, 1, 0x40)
///     .map(|v| v.page)
///     .collect();
/// assert_eq!(pages, vec![100, 101, 102, 108, 109, 110]);
/// ```
#[derive(Debug, Clone)]
pub struct DistanceCycle {
    page: i64,
    dists: Vec<i64>,
    visits: u64,
    refs: u32,
    pc: u64,
    step: u64,
}

impl DistanceCycle {
    /// Creates a walk of `visits` page visits from `base`, advancing by
    /// `dists[i % len]` after the `i`-th visit.
    ///
    /// # Panics
    ///
    /// Panics if `dists` is empty or if the walk can leave the
    /// non-negative page range within one cycle of its minimum prefix
    /// sum.
    pub fn new(base: u64, dists: Vec<i64>, visits: u64, refs: u32, pc: u64) -> Self {
        assert!(
            !dists.is_empty(),
            "distance cycle needs at least one distance"
        );
        let mut prefix = 0i64;
        let mut min_prefix = 0i64;
        for d in &dists {
            prefix += d;
            min_prefix = min_prefix.min(prefix);
        }
        assert!(
            base as i64 + min_prefix >= 0,
            "distance cycle can underflow the page range"
        );
        DistanceCycle {
            page: base as i64,
            dists,
            visits,
            refs,
            pc,
            step: 0,
        }
    }

    /// Net page movement per full cycle (zero means the cycle revisits).
    pub fn net_per_cycle(&self) -> i64 {
        self.dists.iter().sum()
    }
}

impl Iterator for DistanceCycle {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        if self.step == self.visits {
            return None;
        }
        let page = self.page;
        debug_assert!(page >= 0, "cycle walked below page zero");
        let d = self.dists[(self.step % self.dists.len() as u64) as usize];
        self.page += d;
        self.step += 1;
        Some(Visit::new(page as u64, self.refs, self.pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_repeats_distances() {
        let pages: Vec<u64> = DistanceCycle::new(0, vec![2, 3], 5, 1, 0)
            .map(|v| v.page)
            .collect();
        assert_eq!(pages, vec![0, 2, 5, 7, 10]);
    }

    #[test]
    fn negative_distances_allowed_when_bounded() {
        let pages: Vec<u64> = DistanceCycle::new(10, vec![5, -3], 5, 1, 0)
            .map(|v| v.page)
            .collect();
        assert_eq!(pages, vec![10, 15, 12, 17, 14]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflowing_cycle_panics() {
        let _ = DistanceCycle::new(1, vec![-5, 10], 10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_cycle_panics() {
        let _ = DistanceCycle::new(0, vec![], 10, 1, 0);
    }

    #[test]
    fn net_per_cycle_reported() {
        let c = DistanceCycle::new(0, vec![1, 1, 6], 1, 1, 0);
        assert_eq!(c.net_per_cycle(), 8);
    }

    #[test]
    fn distance_transitions_repeat() {
        // The defining property: the multiset of (d_i -> d_{i+1})
        // transitions has exactly cycle-length distinct pairs.
        let pages: Vec<i64> = DistanceCycle::new(0, vec![1, 1, 6], 300, 1, 0)
            .map(|v| v.page as i64)
            .collect();
        let dists: Vec<i64> = pages.windows(2).map(|w| w[1] - w[0]).collect();
        let mut pairs: Vec<(i64, i64)> = dists.windows(2).map(|w| (w[0], w[1])).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 3); // (1,1), (1,6), (6,1)
    }
}
