//! The paper's taxonomy of reference behaviour (§1).
//!
//! Every synthetic application model declares which class it reproduces,
//! and the suite-level tests check that the prefetchers' relative
//! performance on it matches the class's prediction.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The five reference-behaviour classes of §1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReferenceClass {
    /// (a) Regular/strided accesses to data touched only once.
    /// Stride-based schemes (ASP, and DP which also captures first-time
    /// references) win; history-based schemes have nothing to learn.
    StridedOnce,
    /// (b) Regular/strided accesses to data touched several times.
    /// Both stride- and history-based schemes do well.
    StridedRepeated,
    /// (c) Strided accesses whose stride changes over time.
    /// Adaptive stride schemes track it; history schemes lag.
    StridedChanging,
    /// (d) No constant stride, but the irregularity itself repeats.
    /// History-of-distances (DP) wins; per-address history needs much
    /// more space; per-PC strides never stabilise.
    RepeatingIrregular,
    /// (e) No regularity and no repeating history: nothing works.
    Irregular,
}

impl ReferenceClass {
    /// All classes, in the paper's (a)–(e) order.
    pub const ALL: [ReferenceClass; 5] = [
        ReferenceClass::StridedOnce,
        ReferenceClass::StridedRepeated,
        ReferenceClass::StridedChanging,
        ReferenceClass::RepeatingIrregular,
        ReferenceClass::Irregular,
    ];

    /// The paper's single-letter label.
    pub fn letter(self) -> char {
        match self {
            ReferenceClass::StridedOnce => 'a',
            ReferenceClass::StridedRepeated => 'b',
            ReferenceClass::StridedChanging => 'c',
            ReferenceClass::RepeatingIrregular => 'd',
            ReferenceClass::Irregular => 'e',
        }
    }
}

impl fmt::Display for ReferenceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_are_distinct_and_ordered() {
        let letters: Vec<char> = ReferenceClass::ALL.iter().map(|c| c.letter()).collect();
        assert_eq!(letters, vec!['a', 'b', 'c', 'd', 'e']);
    }

    #[test]
    fn display_uses_parenthesised_letter() {
        assert_eq!(ReferenceClass::RepeatingIrregular.to_string(), "(d)");
    }
}
