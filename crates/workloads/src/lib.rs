//! # tlbsim-workloads — the 56-application synthetic suite
//!
//! The paper evaluates TLB prefetching on 56 applications across four
//! benchmark suites. Those binaries (and the SimpleScalar/Shade tracing
//! infrastructure) are not reproducible here, but every conclusion in
//! the paper is a property of the page-level *reference stream*, so this
//! crate rebuilds each application as a parameterised synthetic model
//! whose miss-stream shape matches the behaviour §3.2 attributes to it.
//!
//! Two layers:
//!
//! * [`primitives`] — reference-pattern generators keyed to the paper's
//!   behaviour classes (§1): [`StridedScan`]/[`LoopedScan`] (classes a/b),
//!   [`DistanceCycle`] (classes c/d), [`PointerChase`]/[`BlockChase`] and
//!   [`Alternation`] (history-repeating irregularity), [`RandomWalk`] and
//!   [`HotSet`] (class e / low-miss), plus [`Mix`]/[`Interleave`]/
//!   [`phases`] combinators;
//! * [`apps`] — the 56 registered [`AppSpec`] models composed from those
//!   primitives, with per-application rationale in the module docs.
//!
//! ## Streaming and splitting
//!
//! A [`Workload`] is consumed either as a plain iterator or — on the
//! simulator's hot path — chunk-at-a-time through
//! [`Workload::fill_batch`]. Streams are also *splittable*:
//! [`AppSpec::stream_len`] reports the exact access count of a run by
//! visit arithmetic alone, and [`Workload::skip_accesses`] seeks to any
//! mid-stream position at visit granularity without expanding the
//! prefix — the pair of operations that lets `tlbsim-sim`'s sharded
//! executor hand contiguous time slices of one run to parallel workers.
//!
//! The same streaming surface is source-agnostic: [`StreamSpec`]
//! abstracts "a named, splittable reference stream", implemented by the
//! registered [`AppSpec`] models *and* by [`TraceWorkload`], which
//! replays a recorded binary trace zero-copy from a memory-mapped file.
//! Everything downstream — the engines, the sweep executor, the sharded
//! runner — accepts either interchangeably. [`MultiStreamSpec`] closes
//! the loop: any mix of models and traces composes into one
//! deterministic *multiprogrammed* interleave under a pluggable
//! [`Schedule`], and the composition is itself a [`StreamSpec`].
//!
//! ## Quick start
//!
//! ```
//! use tlbsim_workloads::{find_app, Scale};
//!
//! let galgel = find_app("galgel").expect("registered");
//! let n = galgel.workload(Scale::TINY).count();
//! assert!(n > 10_000);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chaos;
mod class;
mod gen;
mod multi;
mod scale;
mod spec;
mod trace;

pub mod apps;
pub mod primitives;

pub use apps::{all_apps, find_app, high_miss_apps, suite_apps, table3_apps, AppSpec, Suite};
pub use chaos::ChaosSpec;
pub use class::ReferenceClass;
pub use gen::{AccessSource, Emit, Visit, VisitStream, Workload};
pub use multi::{MixError, MultiStreamSpec, Schedule, Segment, Segments, MAX_STREAMS};
pub use primitives::{
    phases, Alternation, BlockChase, DistanceCycle, HotSet, Interleave, LoopedScan, Mix,
    PointerChase, RandomWalk, RotatePc, StridedScan,
};
pub use scale::Scale;
pub use spec::StreamSpec;
pub use trace::TraceWorkload;
