//! Byte-level primitives of the TLBT **v2** block format: zig-zag
//! varints, restart/delta record coding, block validation, and the
//! trailing index/footer layout.
//!
//! A v2 trace shares v1's 8-byte header (version field = 2) and then
//! packs records into fixed-count **blocks**:
//!
//! ```text
//! block   := restart delta*
//! restart := pc u64 LE, vaddr u64 LE, kind u8          (17 bytes)
//! delta   := kind u8,
//!            varint(zigzag(pc_i    - pc_{i-1})),
//!            varint(zigzag(vaddr_i - vaddr_{i-1}))
//! ```
//!
//! The restart record *is* the block's first record, stored absolutely
//! in the same 17-byte cell layout as a v1 record; every later record
//! is a signed delta against its immediate predecessor. After the last
//! block comes the **block index** (one fixed 16-byte entry per block:
//! absolute byte offset, first record number) and a fixed 32-byte
//! **footer** that locates the index — so `skip`/`seek` resolve any
//! record number to a block in O(1) and decode at most one block of
//! deltas, and shard cuts land on block boundaries without scanning.
//!
//! The normative specification is `docs/TRACE_FORMAT.md`; this module
//! holds the pure byte-level helpers shared by the v2 writer, the
//! whole-file cursor and the windowed streaming cursor in
//! [`crate::v2`].

use tlbsim_core::{AccessKind, MemoryAccess};

/// Format version stamped in the header of block-compressed traces.
pub const V2_VERSION: u16 = 2;
/// Size of a block's restart record — the block's first record stored
/// absolutely, in the same cell layout as a v1 record.
pub const RESTART_BYTES: usize = 17;
/// Size of one block-index entry: `byte_offset: u64`, `first_record:
/// u64`, both little-endian.
pub const INDEX_ENTRY_BYTES: usize = 16;
/// Size of the fixed footer closing every v2 trace.
pub const FOOTER_BYTES: usize = 32;
/// Magic bytes ending the footer (and therefore the file).
pub const FOOTER_MAGIC: [u8; 4] = *b"TBIX";
/// Records per block when the writer is not told otherwise. Large
/// enough to amortise restarts and keep the index tiny, small enough
/// that block-granular quarantine loses little and a streaming window
/// of a few blocks stays cache-friendly.
pub const DEFAULT_BLOCK_LEN: u32 = 4096;

/// Maps a signed delta onto the unsigned varint domain so small
/// negative strides stay short (−1 → 1, 1 → 2, −2 → 3, …).
#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit =
/// continuation; at most 10 bytes for a full u64).
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one varint at `*pos`, advancing it. `None` if the varint runs
/// off the end of `bytes` or past the 10-byte maximum.
#[inline]
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Encodes `access` as a 17-byte restart record (absolute fields).
pub(crate) fn encode_restart(out: &mut Vec<u8>, access: &MemoryAccess) {
    out.extend_from_slice(&access.pc.raw().to_le_bytes());
    out.extend_from_slice(&access.vaddr.raw().to_le_bytes());
    out.push(kind_byte(access.kind));
}

/// Encodes `access` as a delta record against the previous record's
/// pc/vaddr.
pub(crate) fn encode_delta(
    out: &mut Vec<u8>,
    prev_pc: u64,
    prev_vaddr: u64,
    access: &MemoryAccess,
) {
    out.push(kind_byte(access.kind));
    put_varint(out, zigzag(access.pc.raw().wrapping_sub(prev_pc) as i64));
    put_varint(
        out,
        zigzag(access.vaddr.raw().wrapping_sub(prev_vaddr) as i64),
    );
}

#[inline]
fn kind_byte(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    }
}

/// What went wrong decoding inside one block. The cursor maps these to
/// typed [`TraceError`](crate::TraceError)s carrying the block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockFault {
    /// The block's extent ends inside the 17-byte restart record.
    Restart,
    /// A delta record ends early, a varint overruns, or (checked at
    /// block completion) spare bytes trail the last record.
    Payload,
    /// A restart or delta carries an invalid access-kind byte.
    BadKind(u8),
}

/// Incremental decode position inside one block. Plain numbers only, so
/// a cursor can persist it across `decode_batch` calls without holding
/// a borrow of the block bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodeState {
    /// Which block the state describes (`u64::MAX` = none).
    pub block: u64,
    /// Whether a quarantine cursor has already validated this block.
    pub checked: bool,
    /// Records decoded from the block so far.
    pub emitted: u64,
    /// Byte position of the next record within the block.
    pub pos: usize,
    /// Previous record's pc (delta base).
    pub prev_pc: u64,
    /// Previous record's vaddr (delta base).
    pub prev_vaddr: u64,
}

impl DecodeState {
    /// No block entered yet.
    pub(crate) fn none() -> Self {
        DecodeState {
            block: u64::MAX,
            checked: false,
            emitted: 0,
            pos: 0,
            prev_pc: 0,
            prev_vaddr: 0,
        }
    }

    /// Positioned at the start of `block`.
    pub(crate) fn at(block: u64) -> Self {
        DecodeState {
            block,
            ..DecodeState::none()
        }
    }
}

/// Decodes the next record of the block whose bytes are `bytes`,
/// advancing `state`. The first call per block decodes the restart;
/// later calls decode deltas. The caller bounds the record count — this
/// function never checks it.
#[inline]
pub(crate) fn next_record(
    bytes: &[u8],
    state: &mut DecodeState,
) -> Result<MemoryAccess, BlockFault> {
    if state.emitted == 0 {
        if bytes.len() < RESTART_BYTES {
            return Err(BlockFault::Restart);
        }
        let pc = u64::from_le_bytes(bytes[0..8].try_into().expect("8-byte slice"));
        let vaddr = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        let kind = decode_kind(bytes[16])?;
        state.pos = RESTART_BYTES;
        state.emitted = 1;
        state.prev_pc = pc;
        state.prev_vaddr = vaddr;
        return Ok(MemoryAccess {
            pc: pc.into(),
            vaddr: vaddr.into(),
            kind,
        });
    }
    let mut pos = state.pos;
    let kind = decode_kind(*bytes.get(pos).ok_or(BlockFault::Payload)?)?;
    pos += 1;
    let dpc = read_varint(bytes, &mut pos).ok_or(BlockFault::Payload)?;
    let dvaddr = read_varint(bytes, &mut pos).ok_or(BlockFault::Payload)?;
    let pc = state.prev_pc.wrapping_add(unzigzag(dpc) as u64);
    let vaddr = state.prev_vaddr.wrapping_add(unzigzag(dvaddr) as u64);
    state.pos = pos;
    state.emitted += 1;
    state.prev_pc = pc;
    state.prev_vaddr = vaddr;
    Ok(MemoryAccess {
        pc: pc.into(),
        vaddr: vaddr.into(),
        kind,
    })
}

#[inline]
fn decode_kind(byte: u8) -> Result<AccessKind, BlockFault> {
    match byte {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        found => Err(BlockFault::BadKind(found)),
    }
}

/// Walks a whole block without emitting, checking that exactly
/// `records` records decode and the payload has no spare bytes. This is
/// the quarantine cursor's validate-before-emit pass; it allocates
/// nothing.
pub(crate) fn validate(bytes: &[u8], records: u64) -> Result<(), BlockFault> {
    let mut state = DecodeState::at(0);
    for _ in 0..records {
        next_record(bytes, &mut state)?;
    }
    if state.pos != bytes.len() {
        return Err(BlockFault::Payload);
    }
    Ok(())
}

/// The fixed 32-byte footer closing every v2 trace:
///
/// ```text
/// index_offset  : u64 LE   absolute byte offset of the block index
/// total_records : u64 LE
/// block_len     : u32 LE   records per block (last block may be short)
/// block_count   : u32 LE
/// reserved      : u32 LE   zero
/// magic         : 4 bytes  "TBIX"
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Footer {
    /// Absolute byte offset of the block index.
    pub index_offset: u64,
    /// Records in the trace.
    pub total_records: u64,
    /// Records per block (the final block may hold fewer).
    pub block_len: u32,
    /// Number of blocks (and index entries).
    pub block_count: u32,
}

impl Footer {
    /// Serialises the footer.
    pub(crate) fn encode(&self) -> [u8; FOOTER_BYTES] {
        let mut out = [0u8; FOOTER_BYTES];
        out[0..8].copy_from_slice(&self.index_offset.to_le_bytes());
        out[8..16].copy_from_slice(&self.total_records.to_le_bytes());
        out[16..20].copy_from_slice(&self.block_len.to_le_bytes());
        out[20..24].copy_from_slice(&self.block_count.to_le_bytes());
        // bytes 24..28 reserved (zero)
        out[28..32].copy_from_slice(&FOOTER_MAGIC);
        out
    }

    /// Parses the footer from the last [`FOOTER_BYTES`] of a file.
    /// `None` if `tail` is not exactly footer-sized or the magic is
    /// absent.
    pub(crate) fn parse(tail: &[u8]) -> Option<Footer> {
        if tail.len() != FOOTER_BYTES || tail[28..32] != FOOTER_MAGIC {
            return None;
        }
        Some(Footer {
            index_offset: u64::from_le_bytes(tail[0..8].try_into().expect("8-byte slice")),
            total_records: u64::from_le_bytes(tail[8..16].try_into().expect("8-byte slice")),
            block_len: u32::from_le_bytes(tail[16..20].try_into().expect("4-byte slice")),
            block_count: u32::from_le_bytes(tail[20..24].try_into().expect("4-byte slice")),
        })
    }
}

/// Parses index entry `i` out of raw index bytes (relative to the
/// index start): returns `(byte_offset, first_record)`.
#[inline]
pub(crate) fn index_entry(index_bytes: &[u8], i: u64) -> (u64, u64) {
    let base = i as usize * INDEX_ENTRY_BYTES;
    let offset = u64::from_le_bytes(
        index_bytes[base..base + 8]
            .try_into()
            .expect("8-byte slice"),
    );
    let first = u64::from_le_bytes(
        index_bytes[base + 8..base + 16]
            .try_into()
            .expect("8-byte slice"),
    );
    (offset, first)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 4096, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_round_trips_and_rejects_overruns() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::MAX, 1 << 35];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
        // Truncated continuation.
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
        // More than 10 bytes of continuation.
        let mut pos = 0;
        assert_eq!(read_varint(&[0xFF; 11], &mut pos), None);
    }

    #[test]
    fn block_coding_round_trips() {
        let records: Vec<MemoryAccess> = (0..100u64)
            .map(|i| {
                if i % 3 == 0 {
                    MemoryAccess::write(0x400 + i * 4, i * 4096)
                } else {
                    MemoryAccess::read(0x400000 - i, u64::MAX - i * 64)
                }
            })
            .collect();
        let mut bytes = Vec::new();
        encode_restart(&mut bytes, &records[0]);
        for pair in records.windows(2) {
            encode_delta(&mut bytes, pair[0].pc.raw(), pair[0].vaddr.raw(), &pair[1]);
        }
        assert!(validate(&bytes, 100).is_ok());
        let mut state = DecodeState::at(0);
        for want in &records {
            assert_eq!(next_record(&bytes, &mut state).unwrap(), *want);
        }
        assert_eq!(state.pos, bytes.len());
        // Wrong expected count or spare bytes fail validation.
        assert_eq!(validate(&bytes, 101), Err(BlockFault::Payload));
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(validate(&padded, 100), Err(BlockFault::Payload));
        // A short restart is its own fault.
        assert_eq!(validate(&bytes[..10], 1), Err(BlockFault::Restart));
        // A smashed kind byte is a kind fault.
        let mut smashed = bytes.clone();
        smashed[16] = 0xEE;
        assert_eq!(validate(&smashed, 100), Err(BlockFault::BadKind(0xEE)));
    }

    #[test]
    fn footer_round_trips_and_rejects_bad_magic() {
        let footer = Footer {
            index_offset: 12345,
            total_records: 99,
            block_len: 64,
            block_count: 2,
        };
        let bytes = footer.encode();
        assert_eq!(Footer::parse(&bytes), Some(footer));
        let mut bad = bytes;
        bad[31] ^= 0xFF;
        assert_eq!(Footer::parse(&bad), None);
        assert_eq!(Footer::parse(&bytes[..31]), None);
    }
}
