//! Deterministic, seeded fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a reproducible description of *exactly which*
//! records of a trace (or positions of a synthetic stream) get *exactly
//! which* fault. Tests and the `xp chaos` driver build a plan — either
//! explicitly with [`FaultPlan::with`] or pseudo-randomly with
//! [`FaultPlan::seeded`] — then either bake the byte-level faults into a
//! TLBT image with [`FaultPlan::apply_to_bytes`], wrap a reader in
//! [`FaultyRead`] for transient I/O errors, or hand the plan to the
//! workloads crate's `ChaosSpec` for worker-panic injection. The same
//! `(seed, record_count, kinds)` triple always produces the same plan,
//! so every failure CI ever sees is replayable at a desk.

use std::io::{self, Read};

use crate::binary::{HEADER_BYTES, RECORD_BYTES};

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Overwrite a record's kind byte with an invalid value
    /// (`Strict` → `TraceError::InvalidKind`, `Quarantine` → skipped).
    CorruptKind,
    /// Rewrite a record's vaddr field to a wild out-of-range address
    /// (decodes fine; the simulator must absorb it, not crash).
    WildVaddr,
    /// Cut the file mid-record after this record (`Strict` →
    /// `TraceError::TruncatedRecord`, `Quarantine` → torn tail).
    TruncateTail,
    /// Surface one transient `io::ErrorKind::Interrupted` when a
    /// streaming read reaches this record (readers must retry).
    TransientIo,
    /// Panic the worker thread that decodes this record (exercises the
    /// sharded runner's retry/degrade path).
    WorkerPanic,
}

impl FaultKind {
    /// Every fault kind, for matrix-style tests.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::CorruptKind,
        FaultKind::WildVaddr,
        FaultKind::TruncateTail,
        FaultKind::TransientIo,
        FaultKind::WorkerPanic,
    ];
}

/// One planned fault: a [`FaultKind`] pinned to a record index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Record index (on the 17-byte grid) the fault lands on.
    pub record: u64,
    /// What goes wrong there.
    pub kind: FaultKind,
}

/// A deterministic set of planned faults.
///
/// # Examples
///
/// ```
/// use tlbsim_trace::{FaultKind, FaultPlan};
///
/// // Seeded plans are reproducible…
/// let a = FaultPlan::seeded(7, 2000, &[(FaultKind::CorruptKind, 5)]);
/// let b = FaultPlan::seeded(7, 2000, &[(FaultKind::CorruptKind, 5)]);
/// assert_eq!(a.faults(), b.faults());
/// assert_eq!(a.count(FaultKind::CorruptKind), 5);
///
/// // …and explicit plans pin exact offsets.
/// let p = FaultPlan::new().with(42, FaultKind::WorkerPanic);
/// assert_eq!(p.faults().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (inject nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Draws `count` distinct record offsets per requested kind from a
    /// seeded xorshift64 stream over `0..record_count`. Distinctness is
    /// per kind *and* across kinds, so one record never receives two
    /// faults (which would make expected-survivor arithmetic ambiguous).
    ///
    /// # Panics
    ///
    /// If the total requested fault count exceeds `record_count` — a
    /// plan construction bug, not a runtime input.
    pub fn seeded(seed: u64, record_count: u64, kinds: &[(FaultKind, usize)]) -> Self {
        let total: usize = kinds.iter().map(|(_, n)| n).sum();
        assert!(
            total as u64 <= record_count,
            "fault plan wants {total} faults over {record_count} records"
        );
        // xorshift64: tiny, seedable, and good enough for picking
        // distinct offsets; state must be nonzero.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut taken = std::collections::HashSet::new();
        let mut faults = Vec::with_capacity(total);
        for &(kind, n) in kinds {
            for _ in 0..n {
                let record = loop {
                    let candidate = next() % record_count.max(1);
                    if taken.insert(candidate) {
                        break candidate;
                    }
                };
                faults.push(PlannedFault { record, kind });
            }
        }
        faults.sort_by_key(|f| f.record);
        FaultPlan { faults }
    }

    /// Adds one explicit fault (builder-style).
    pub fn with(mut self, record: u64, kind: FaultKind) -> Self {
        self.faults.push(PlannedFault { record, kind });
        self.faults.sort_by_key(|f| f.record);
        self
    }

    /// All planned faults, sorted by record index.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// How many faults of one kind the plan contains.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.faults.iter().filter(|f| f.kind == kind).count()
    }

    /// Record indices carrying one kind of fault, sorted.
    pub fn records_with(&self, kind: FaultKind) -> Vec<u64> {
        self.faults
            .iter()
            .filter(|f| f.kind == kind)
            .map(|f| f.record)
            .collect()
    }

    /// Bakes the byte-level faults into a TLBT image in place:
    /// `CorruptKind` overwrites kind bytes with `0xEE`, `WildVaddr`
    /// rewrites vaddr fields to `0xFFFF_FFFF_FFF0_0000 + record·4096`,
    /// and `TruncateTail` (applied last) cuts the buffer 5 bytes into
    /// the earliest truncation record. `TransientIo` and `WorkerPanic`
    /// are not byte-level faults and are ignored here.
    ///
    /// Faults aimed past the end of the image are ignored — a plan can
    /// be broader than one particular file.
    ///
    /// Images carrying a **v2** header (version 2 with a parseable
    /// footer) take the block-format baking path instead: each fault
    /// lands on the restart record of the block containing its target
    /// record, and `TruncateTail` is ignored (tail truncation destroys
    /// the v2 footer, which is fatal under every policy — there is no
    /// quarantinable torn tail to manufacture).
    pub fn apply_to_bytes(&self, bytes: &mut Vec<u8>) {
        if bytes.len() >= HEADER_BYTES
            && bytes[0..4] == crate::binary::MAGIC
            && u16::from_le_bytes([bytes[4], bytes[5]]) == crate::block::V2_VERSION
        {
            crate::v2::bake_faults(bytes, &self.faults);
            return;
        }
        let record_base = |r: u64| HEADER_BYTES + (r as usize) * RECORD_BYTES;
        for fault in &self.faults {
            let base = record_base(fault.record);
            if base + RECORD_BYTES > bytes.len() {
                continue;
            }
            match fault.kind {
                FaultKind::CorruptKind => bytes[base + 16] = 0xEE,
                FaultKind::WildVaddr => {
                    let wild = wild_vaddr(fault.record);
                    bytes[base + 8..base + 16].copy_from_slice(&wild.to_le_bytes());
                }
                FaultKind::TruncateTail | FaultKind::TransientIo | FaultKind::WorkerPanic => {}
            }
        }
        if let Some(cut) = self
            .faults
            .iter()
            .filter(|f| f.kind == FaultKind::TruncateTail)
            .map(|f| record_base(f.record) + 5)
            .filter(|&at| at < bytes.len())
            .min()
        {
            bytes.truncate(cut);
        }
    }
}

/// The wild out-of-range virtual address a
/// [`FaultKind::WildVaddr`] fault plants at `record` — top bits set
/// (far outside any synthetic model's footprint), distinct per record,
/// and the same whether the fault is baked into bytes here or injected
/// at replay by the workloads crate's chaos wrapper.
pub fn wild_vaddr(record: u64) -> u64 {
    0xFFFF_0000_0000_0000u64 + (record % (1 << 32)) * 4096
}

/// A [`Read`] adapter that surfaces one transient
/// [`io::ErrorKind::Interrupted`] error the first time the read
/// position reaches each planned [`FaultKind::TransientIo`] record,
/// then serves the underlying bytes untouched.
///
/// `BinaryTraceReader` retries `Interrupted` (as any correct `Read`
/// consumer must), so a stream wrapped in `FaultyRead` decodes to the
/// identical record sequence — which is exactly the property the chaos
/// tests pin.
#[derive(Debug)]
pub struct FaultyRead<R> {
    inner: R,
    position: u64,
    /// Byte offsets at which to fire, sorted descending (pop from end).
    pending: Vec<u64>,
}

impl<R: Read> FaultyRead<R> {
    /// Wraps `inner`, scheduling one transient error per
    /// `TransientIo` fault in `plan` (other kinds are ignored).
    pub fn new(inner: R, plan: &FaultPlan) -> Self {
        let mut pending: Vec<u64> = plan
            .faults()
            .iter()
            .filter(|f| f.kind == FaultKind::TransientIo)
            .map(|f| (HEADER_BYTES + f.record as usize * RECORD_BYTES) as u64)
            .collect();
        pending.sort_unstable_by(|a, b| b.cmp(a));
        FaultyRead {
            inner,
            position: 0,
            pending,
        }
    }

    /// Transient errors not yet fired.
    pub fn pending_faults(&self) -> usize {
        self.pending.len()
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(&at) = self.pending.last() {
            if self.position >= at {
                self.pending.pop();
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "chaos: injected transient read fault",
                ));
            }
            // Stop the read short of the fault point so the fault fires
            // exactly at its planned byte offset.
            let limit = (at - self.position).min(buf.len() as u64) as usize;
            let n = self.inner.read(&mut buf[..limit])?;
            self.position += n as u64;
            return Ok(n);
        }
        let n = self.inner.read(buf)?;
        self.position += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_distinct() {
        let plan = FaultPlan::seeded(
            99,
            1000,
            &[(FaultKind::CorruptKind, 10), (FaultKind::WildVaddr, 10)],
        );
        assert_eq!(plan.faults().len(), 20);
        let mut records: Vec<u64> = plan.faults().iter().map(|f| f.record).collect();
        let before = records.len();
        records.dedup();
        assert_eq!(records.len(), before, "all fault records distinct");
        assert!(records.iter().all(|&r| r < 1000));
        assert_eq!(
            plan,
            FaultPlan::seeded(
                99,
                1000,
                &[(FaultKind::CorruptKind, 10), (FaultKind::WildVaddr, 10)],
            )
        );
        assert_ne!(
            plan,
            FaultPlan::seeded(
                100,
                1000,
                &[(FaultKind::CorruptKind, 10), (FaultKind::WildVaddr, 10)],
            )
        );
    }

    #[test]
    fn apply_to_bytes_corrupts_planned_cells_only() {
        // 4 records of zeros after a fake header.
        let mut bytes = vec![0u8; HEADER_BYTES + 4 * RECORD_BYTES];
        let plan = FaultPlan::new()
            .with(1, FaultKind::CorruptKind)
            .with(2, FaultKind::WildVaddr);
        plan.apply_to_bytes(&mut bytes);
        assert_eq!(bytes[HEADER_BYTES + RECORD_BYTES + 16], 0xEE);
        assert_eq!(bytes[HEADER_BYTES + 16], 0);
        let vaddr_bytes = &bytes[HEADER_BYTES + 2 * RECORD_BYTES + 8..][..8];
        assert_ne!(vaddr_bytes, &[0u8; 8]);
    }

    #[test]
    fn truncate_tail_cuts_mid_record() {
        let mut bytes = vec![0u8; HEADER_BYTES + 4 * RECORD_BYTES];
        let plan = FaultPlan::new().with(2, FaultKind::TruncateTail);
        plan.apply_to_bytes(&mut bytes);
        assert_eq!(bytes.len(), HEADER_BYTES + 2 * RECORD_BYTES + 5);
        assert_ne!((bytes.len() - HEADER_BYTES) % RECORD_BYTES, 0);
    }

    #[test]
    fn faults_past_the_image_are_ignored() {
        let mut bytes = vec![0u8; HEADER_BYTES + 2 * RECORD_BYTES];
        let plan = FaultPlan::new()
            .with(50, FaultKind::CorruptKind)
            .with(60, FaultKind::TruncateTail);
        let before = bytes.clone();
        plan.apply_to_bytes(&mut bytes);
        assert_eq!(bytes, before);
    }

    #[test]
    fn faulty_read_fires_once_per_fault_and_preserves_bytes() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let plan = FaultPlan::new()
            .with(2, FaultKind::TransientIo)
            .with(5, FaultKind::TransientIo);
        let mut reader = FaultyRead::new(&data[..], &plan);
        assert_eq!(reader.pending_faults(), 2);
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match reader.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out, data);
        assert_eq!(reader.pending_faults(), 0);
    }
}
