//! The human-readable text trace format.
//!
//! One record per line: `<pc-hex> <R|W> <vaddr-hex>`, e.g.
//!
//! ```text
//! 0x400a10 R 0x7f3218004008
//! 0x400a14 W 0x7f3218004010
//! ```
//!
//! Lines that are empty or start with `#` are ignored, so traces can be
//! annotated. This mirrors the "din"-style formats emitted by classic
//! tracing tools and is convenient for hand-written regression inputs.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use tlbsim_core::{AccessKind, MemoryAccess};

use crate::error::TraceError;

/// Streaming writer for the text format.
///
/// # Examples
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_trace::{TextTraceReader, TextTraceWriter};
///
/// let mut buf = Vec::new();
/// let mut w = TextTraceWriter::create(&mut buf);
/// w.write(&MemoryAccess::write(0x400, 0x123456))?;
/// w.finish()?;
/// let text = String::from_utf8(buf.clone()).unwrap();
/// assert_eq!(text.lines().last().unwrap(), "0x400 W 0x123456");
/// # Ok::<(), tlbsim_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct TextTraceWriter<W: Write> {
    out: BufWriter<W>,
    written: u64,
}

impl<W: Write> TextTraceWriter<W> {
    /// Creates a text writer (no header is needed).
    pub fn create(out: W) -> Self {
        TextTraceWriter {
            out: BufWriter::new(out),
            written: 0,
        }
    }

    /// Appends one record as a line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn write(&mut self, access: &MemoryAccess) -> Result<(), TraceError> {
        writeln!(
            self.out,
            "{:#x} {} {:#x}",
            access.pc.raw(),
            access.kind,
            access.vaddr.raw()
        )?;
        self.written += 1;
        Ok(())
    }

    /// Writes a `#`-prefixed comment line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn comment(&mut self, text: &str) -> Result<(), TraceError> {
        writeln!(self.out, "# {text}")?;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the flush fails.
    pub fn finish(self) -> Result<W, TraceError> {
        self.out
            .into_inner()
            .map_err(|e| TraceError::Io(std::io::Error::other(e.to_string())))
    }
}

/// Streaming reader for the text format; iterate to consume.
#[derive(Debug)]
pub struct TextTraceReader<R: Read> {
    lines: std::io::Lines<BufReader<R>>,
    line_no: u64,
}

impl<R: Read> TextTraceReader<R> {
    /// Creates a text reader.
    pub fn open(input: R) -> Self {
        TextTraceReader {
            lines: BufReader::new(input).lines(),
            line_no: 0,
        }
    }

    fn parse_line(&self, line: &str) -> Result<MemoryAccess, TraceError> {
        let mut fields = line.split_whitespace();
        let (Some(pc), Some(kind), Some(vaddr), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(TraceError::Parse {
                line: self.line_no,
                message: format!("expected `pc R|W vaddr`, got {line:?}"),
            });
        };
        let parse_hex = |s: &str, what: &str| -> Result<u64, TraceError> {
            let digits = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"));
            u64::from_str_radix(digits.unwrap_or(s), 16).map_err(|e| TraceError::Parse {
                line: self.line_no,
                message: format!("bad {what} {s:?}: {e}"),
            })
        };
        let kind = match kind {
            "R" | "r" => AccessKind::Read,
            "W" | "w" => AccessKind::Write,
            other => {
                return Err(TraceError::Parse {
                    line: self.line_no,
                    message: format!("bad access kind {other:?}"),
                })
            }
        };
        Ok(MemoryAccess {
            pc: parse_hex(pc, "pc")?.into(),
            vaddr: parse_hex(vaddr, "vaddr")?.into(),
            kind,
        })
    }
}

impl<R: Read> Iterator for TextTraceReader<R> {
    type Item = Result<MemoryAccess, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => return Some(Err(TraceError::Io(e))),
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Some(self.parse_line(trimmed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_records() {
        let recs: Vec<MemoryAccess> = (0..50)
            .map(|i| {
                if i % 3 == 0 {
                    MemoryAccess::write(i, i * 4096 + 17)
                } else {
                    MemoryAccess::read(i, i * 4096)
                }
            })
            .collect();
        let mut buf = Vec::new();
        let mut w = TextTraceWriter::create(&mut buf);
        w.comment("synthetic test trace").unwrap();
        for r in &recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let got: Vec<MemoryAccess> = TextTraceReader::open(buf.as_slice())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, recs);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\n0x10 R 0x20\n  \n# tail\n0x14 W 0x30\n";
        let got: Vec<MemoryAccess> = TextTraceReader::open(text.as_bytes())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].kind, AccessKind::Write);
    }

    #[test]
    fn bare_hex_without_prefix_is_accepted() {
        let text = "400a10 r 7f32\n";
        let got: Vec<MemoryAccess> = TextTraceReader::open(text.as_bytes())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got[0].pc.raw(), 0x400a10);
        assert_eq!(got[0].vaddr.raw(), 0x7f32);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "0x10 R 0x20\nnot a record\n";
        let mut r = TextTraceReader::open(text.as_bytes());
        assert!(r.next().unwrap().is_ok());
        match r.next().unwrap() {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bad_kind_is_rejected() {
        let text = "0x10 X 0x20\n";
        let mut r = TextTraceReader::open(text.as_bytes());
        assert!(matches!(r.next(), Some(Err(TraceError::Parse { .. }))));
    }

    #[test]
    fn bad_hex_is_rejected() {
        let text = "0xZZ R 0x20\n";
        let mut r = TextTraceReader::open(text.as_bytes());
        assert!(matches!(r.next(), Some(Err(TraceError::Parse { .. }))));
    }
}
