//! Error type for trace encoding and decoding.

use std::fmt;
use std::io;

/// Errors reading or writing reference traces.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The input ends before the 8-byte header completes.
    TruncatedHeader {
        /// Bytes actually present.
        len: u64,
    },
    /// The input does not start with the expected magic bytes.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not supported by this build.
    UnsupportedVersion {
        /// The version actually found.
        found: u16,
    },
    /// A record ended mid-field.
    TruncatedRecord,
    /// A record contained an invalid access-kind byte.
    InvalidKind {
        /// The byte actually found.
        found: u8,
    },
    /// A text-format line could not be parsed.
    Parse {
        /// One-based line number.
        line: u64,
        /// Description of the problem.
        message: String,
    },
    /// A quarantine decode skipped more bad records than its budget.
    QuarantineExceeded {
        /// Bad records encountered so far.
        bad: u64,
        /// The policy's budget.
        max_bad: u64,
    },
    /// A v2 trace's footer or block index is missing or inconsistent.
    ///
    /// Like header errors, this is fatal under **every** policy: without
    /// a trustworthy index there is no grid to resynchronise on, so
    /// nothing can be quarantined.
    TornIndex {
        /// What specifically failed to validate.
        detail: &'static str,
    },
    /// A v2 block's delta payload is damaged (a varint overruns the
    /// block's extent, or the payload ends early / carries spare bytes).
    TornBlock {
        /// Zero-based index of the damaged block.
        block: u64,
    },
    /// A v2 block is too short to hold its 17-byte restart record.
    TornRestart {
        /// Zero-based index of the damaged block.
        block: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::TruncatedHeader { len } => {
                write!(f, "trace ends mid-header ({len} bytes; the header is 8)")
            }
            TraceError::BadMagic { found } => {
                write!(f, "bad trace magic {found:?}; expected \"TLBT\"")
            }
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found}")
            }
            TraceError::TruncatedRecord => f.write_str("trace ends mid-record"),
            TraceError::InvalidKind { found } => {
                write!(f, "invalid access kind byte {found:#x}")
            }
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::QuarantineExceeded { bad, max_bad } => {
                write!(
                    f,
                    "quarantine budget exhausted: {bad} bad records (max_bad {max_bad})"
                )
            }
            TraceError::TornIndex { detail } => {
                write!(f, "v2 trace index is damaged: {detail}")
            }
            TraceError::TornBlock { block } => {
                write!(f, "v2 trace block {block} has a damaged delta payload")
            }
            TraceError::TornRestart { block } => {
                write!(f, "v2 trace block {block} ends inside its restart record")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceError::BadMagic { found: *b"ABCD" };
        assert!(e.to_string().contains("TLBT"));
        let e = TraceError::Parse {
            line: 7,
            message: "want 3 fields".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = TraceError::InvalidKind { found: 9 };
        assert!(e.to_string().contains("0x9"));
        let e = TraceError::TruncatedHeader { len: 3 };
        assert!(e.to_string().contains("mid-header"));
        let e = TraceError::TornIndex {
            detail: "footer magic mismatch",
        };
        assert!(e.to_string().contains("footer magic mismatch"));
        let e = TraceError::TornBlock { block: 12 };
        assert!(e.to_string().contains("block 12"));
        let e = TraceError::TornRestart { block: 3 };
        assert!(e.to_string().contains("block 3"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        use std::error::Error;
        let e = TraceError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
