//! `tracestat` — summarise a reference trace file.
//!
//! ```text
//! tracestat <file.trace> [--text] [--page-size BYTES] [--skip N] [--take N]
//! ```
//!
//! Reads the binary `TLBT` format by default (`--text` for the line
//! format) and prints footprint, PC count, read/write mix, and the
//! inter-page distance profile — the quantities that determine which
//! prefetching mechanism will work on the trace.

use std::process::ExitCode;

use tlbsim_core::{MemoryAccess, PageSize};
use tlbsim_trace::{BinaryTraceReader, TextTraceReader, TraceStats, TraceStreamExt};

struct Args {
    path: String,
    text: bool,
    page_size: PageSize,
    skip: u64,
    take: u64,
}

fn usage() -> &'static str {
    "usage: tracestat <file> [--text] [--page-size BYTES] [--skip N] [--take N]"
}

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut text = false;
    let mut page_size = PageSize::DEFAULT;
    let mut skip = 0u64;
    let mut take = u64::MAX;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--text" => text = true,
            "--page-size" => {
                let bytes: u64 = argv
                    .next()
                    .ok_or("--page-size needs a value")?
                    .parse()
                    .map_err(|e| format!("bad page size: {e}"))?;
                page_size = PageSize::new(bytes).map_err(|e| e.to_string())?;
            }
            "--skip" => {
                skip = argv
                    .next()
                    .ok_or("--skip needs a value")?
                    .parse()
                    .map_err(|e| format!("bad skip: {e}"))?;
            }
            "--take" => {
                take = argv
                    .next()
                    .ok_or("--take needs a value")?
                    .parse()
                    .map_err(|e| format!("bad take: {e}"))?;
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        path: path.ok_or(usage())?,
        text,
        page_size,
        skip,
        take,
    })
}

fn summarise(stats: &TraceStats) {
    println!("accesses             : {}", stats.accesses);
    println!("footprint            : {} pages", stats.footprint_pages);
    println!("distinct PCs         : {}", stats.distinct_pcs);
    println!("write fraction       : {:.3}", stats.write_fraction);
    println!("mean refs per page   : {:.1}", stats.mean_accesses_per_page);
    println!("page transitions     : {}", stats.transitions);
    println!("distinct distances   : {}", stats.distinct_distances());
    let mut top: Vec<(i64, u64)> = stats
        .distance_histogram
        .iter()
        .map(|(d, c)| (*d, *c))
        .collect();
    top.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("top distances        :");
    for (d, count) in top.into_iter().take(8) {
        println!(
            "  {d:>8}  {count:>10}  ({:.1}%)",
            100.0 * count as f64 / stats.transitions.max(1) as f64
        );
    }
}

fn run(args: &Args) -> Result<(), String> {
    let file = std::fs::File::open(&args.path).map_err(|e| format!("{}: {e}", args.path))?;
    let stats = if args.text {
        let stream = TextTraceReader::open(file)
            .map(|r| r.map_err(|e| e.to_string()))
            .collect::<Result<Vec<MemoryAccess>, _>>()?;
        TraceStats::from_stream(
            stream.into_iter().window(args.skip, args.take),
            args.page_size,
        )
    } else {
        let reader = BinaryTraceReader::open(file).map_err(|e| e.to_string())?;
        let stream = reader
            .collect::<Result<Vec<MemoryAccess>, _>>()
            .map_err(|e| e.to_string())?;
        TraceStats::from_stream(
            stream.into_iter().window(args.skip, args.take),
            args.page_size,
        )
    };
    println!("trace                : {}", args.path);
    println!("page size            : {}", args.page_size);
    summarise(&stats);
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
