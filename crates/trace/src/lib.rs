//! # tlbsim-trace — reference-trace formats and statistics
//!
//! The simulator consumes any `Iterator<Item = MemoryAccess>`; this crate
//! provides the persistent forms of such streams and tools over them:
//!
//! * [`BinaryTraceWriter`] / [`BinaryTraceReader`] — a compact 17-byte
//!   per-record binary format (`TLBT` magic) that external tracers can
//!   emit trivially; the normative byte-level specification is
//!   `docs/TRACE_FORMAT.md` at the repository root;
//! * [`MmapTrace`] / [`MmapTraceCursor`] — the same format replayed
//!   zero-copy from a memory-mapped file: the header is validated once,
//!   records decode batch-wise into caller-owned buffers, and seeking is
//!   O(1) — the full-speed input path the simulator's batched engines
//!   and sharded executor consume;
//! * [`V2TraceWriter`] / [`V2Trace`] / [`V2TraceCursor`] — the **v2**
//!   block-compressed variant of the same format: records are packed
//!   into delta-compressed blocks behind a trailing block index, cutting
//!   corpora to a few bytes per record while keeping O(1) seeks on block
//!   boundaries, and [`V2TraceCursor::open_streaming`] replays files
//!   larger than RAM through a sliding mapped window;
//! * [`DecodePolicy`] / [`TraceHealth`] — strict (abort on first fault)
//!   vs quarantine (skip, count, bound) decode, with a health report of
//!   what a damaged file lost; see "Corruption & quarantine semantics"
//!   in `docs/TRACE_FORMAT.md`;
//! * [`FaultPlan`] / [`FaultyRead`] — deterministic seeded fault
//!   injection (corrupt kinds, wild vaddrs, torn tails, transient I/O
//!   errors, worker panics) for chaos testing the whole stack;
//! * [`TextTraceWriter`] / [`TextTraceReader`] — a `pc R|W vaddr`
//!   line format with comments for hand-written regression inputs;
//! * [`TraceStreamExt`] — the skip/take window discipline the paper uses
//!   (fast-forward 2 B instructions, simulate 1 B) and sampling;
//! * [`TraceStats`] — footprint / stride-histogram / reuse statistics
//!   used to validate the synthetic application models.
//!
//! ## Quick start
//!
//! ```
//! use tlbsim_core::MemoryAccess;
//! use tlbsim_trace::{BinaryTraceReader, BinaryTraceWriter, TraceStreamExt};
//!
//! // Write a short trace to memory (a file works identically).
//! let mut buf = Vec::new();
//! let mut w = BinaryTraceWriter::create(&mut buf)?;
//! for i in 0..1000u64 {
//!     w.write(&MemoryAccess::read(0x400, i * 4096))?;
//! }
//! w.finish()?;
//!
//! // Read it back, skipping a warm-up prefix.
//! let n = BinaryTraceReader::open(buf.as_slice())?
//!     .map(|r| r.expect("valid record"))
//!     .window(100, 500)
//!     .count();
//! assert_eq!(n, 500);
//! # Ok::<(), tlbsim_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod binary;
mod block;
mod error;
mod fault;
mod mmap;
mod policy;
mod stats;
mod stream;
mod text;
mod v2;

pub use binary::{
    BinaryTraceReader, BinaryTraceWriter, HEADER_BYTES, MAGIC, RECORD_BYTES, VERSION,
};
pub use block::{
    DEFAULT_BLOCK_LEN, FOOTER_BYTES, FOOTER_MAGIC, INDEX_ENTRY_BYTES, RESTART_BYTES, V2_VERSION,
};
pub use error::TraceError;
pub use fault::{wild_vaddr, FaultKind, FaultPlan, FaultyRead, PlannedFault};
pub use mmap::{MmapTrace, MmapTraceCursor};
pub use policy::{DecodePolicy, TraceHealth};
pub use stats::TraceStats;
pub use stream::{Sampled, TraceStreamExt, TraceWindow};
pub use text::{TextTraceReader, TextTraceWriter};
pub use v2::{V2Trace, V2TraceCursor, V2TraceWriter};
