//! Descriptive statistics over a reference stream.
//!
//! These are the quantities the paper reasons about qualitatively in
//! §3.2 — footprint, stride distribution, reuse behaviour — made
//! measurable so that the synthetic application models in
//! `tlbsim-workloads` can be validated against the behaviour class they
//! claim to reproduce.

use std::collections::HashMap;

use tlbsim_core::{Distance, MemoryAccess, PageSize, VirtPage};

/// Aggregate statistics of a reference stream at page granularity.
///
/// # Examples
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_trace::TraceStats;
///
/// let stats = TraceStats::from_stream(
///     (0..100u64).map(|i| MemoryAccess::read(0x40, i * 4096)),
///     Default::default(),
/// );
/// assert_eq!(stats.accesses, 100);
/// assert_eq!(stats.footprint_pages, 100);
/// assert_eq!(stats.dominant_distance(), Some(tlbsim_core::Distance::ONE));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total references observed.
    pub accesses: u64,
    /// Distinct pages touched.
    pub footprint_pages: u64,
    /// Distinct PCs observed.
    pub distinct_pcs: u64,
    /// Fraction of references that write.
    pub write_fraction: f64,
    /// Histogram of page-granularity distances between *successive
    /// references to different pages* (same-page runs collapse, mirroring
    /// how the TLB miss stream hides intra-page locality).
    pub distance_histogram: HashMap<i64, u64>,
    /// Number of page transitions counted in the histogram.
    pub transitions: u64,
    /// Mean references per touched page (temporal reuse indicator).
    pub mean_accesses_per_page: f64,
}

impl TraceStats {
    /// Consumes a stream and computes its statistics.
    pub fn from_stream(stream: impl Iterator<Item = MemoryAccess>, page_size: PageSize) -> Self {
        let mut accesses = 0u64;
        let mut writes = 0u64;
        let mut pages: HashMap<VirtPage, u64> = HashMap::new();
        let mut pcs: HashMap<u64, ()> = HashMap::new();
        let mut histogram: HashMap<i64, u64> = HashMap::new();
        let mut transitions = 0u64;
        let mut prev_page: Option<VirtPage> = None;

        for access in stream {
            accesses += 1;
            if access.kind == tlbsim_core::AccessKind::Write {
                writes += 1;
            }
            let page = page_size.page_of(access.vaddr);
            *pages.entry(page).or_insert(0) += 1;
            pcs.insert(access.pc.raw(), ());
            if let Some(prev) = prev_page {
                if prev != page {
                    let d = page.distance_from(prev).value();
                    *histogram.entry(d).or_insert(0) += 1;
                    transitions += 1;
                    prev_page = Some(page);
                }
            } else {
                prev_page = Some(page);
            }
        }

        let footprint = pages.len() as u64;
        TraceStats {
            accesses,
            footprint_pages: footprint,
            distinct_pcs: pcs.len() as u64,
            write_fraction: if accesses == 0 {
                0.0
            } else {
                writes as f64 / accesses as f64
            },
            distance_histogram: histogram,
            transitions,
            mean_accesses_per_page: if footprint == 0 {
                0.0
            } else {
                accesses as f64 / footprint as f64
            },
        }
    }

    /// The most frequent inter-page distance, if any transition occurred.
    pub fn dominant_distance(&self) -> Option<Distance> {
        self.distance_histogram
            .iter()
            .max_by_key(|(d, count)| (**count, -(d.abs())))
            .map(|(d, _)| Distance::new(*d))
    }

    /// Fraction of transitions whose distance is `d`.
    pub fn distance_share(&self, d: Distance) -> f64 {
        if self.transitions == 0 {
            return 0.0;
        }
        *self.distance_histogram.get(&d.value()).unwrap_or(&0) as f64 / self.transitions as f64
    }

    /// Number of distinct inter-page distances observed. Low counts mean
    /// strided behaviour (classes (a)-(c) of §1); high counts mean
    /// irregular behaviour (classes (d)-(e)).
    pub fn distinct_distances(&self) -> usize {
        self.distance_histogram.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(pc: u64, vaddr: u64) -> MemoryAccess {
        MemoryAccess::read(pc, vaddr)
    }

    #[test]
    fn empty_stream_is_all_zero() {
        let s = TraceStats::from_stream(std::iter::empty(), PageSize::DEFAULT);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.footprint_pages, 0);
        assert_eq!(s.dominant_distance(), None);
        assert_eq!(s.distance_share(Distance::ONE), 0.0);
    }

    #[test]
    fn sequential_stream_is_pure_distance_one() {
        let s =
            TraceStats::from_stream((0..64u64).map(|i| read(0x40, i * 4096)), PageSize::DEFAULT);
        assert_eq!(s.footprint_pages, 64);
        assert_eq!(s.transitions, 63);
        assert_eq!(s.distinct_distances(), 1);
        assert!((s.distance_share(Distance::ONE) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_page_runs_collapse() {
        // Four accesses per page: transitions still count pages, not refs.
        let s = TraceStats::from_stream(
            (0..64u64).map(|i| read(0x40, (i / 4) * 4096 + (i % 4) * 64)),
            PageSize::DEFAULT,
        );
        assert_eq!(s.footprint_pages, 16);
        assert_eq!(s.transitions, 15);
        assert!((s.mean_accesses_per_page - 4.0).abs() < 1e-12);
    }

    #[test]
    fn write_fraction_counts_writes() {
        let stream = (0..10u64).map(|i| {
            if i < 3 {
                MemoryAccess::write(0, i * 4096)
            } else {
                read(0, i * 4096)
            }
        });
        let s = TraceStats::from_stream(stream, PageSize::DEFAULT);
        assert!((s.write_fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    fn alternating_strides_show_two_distances() {
        // Pages 1, 2, 4, 5, 7, 8 — the paper's DP example string.
        let pages = [1u64, 2, 4, 5, 7, 8];
        let s = TraceStats::from_stream(pages.iter().map(|p| read(0, p * 4096)), PageSize::DEFAULT);
        assert_eq!(s.distinct_distances(), 2);
        assert_eq!(s.distance_histogram[&1], 3);
        assert_eq!(s.distance_histogram[&2], 2);
        assert_eq!(s.dominant_distance(), Some(Distance::ONE));
    }

    #[test]
    fn distinct_pcs_counted() {
        let stream = (0..10u64).map(|i| read(0x40 + (i % 3) * 4, i * 4096));
        let s = TraceStats::from_stream(stream, PageSize::DEFAULT);
        assert_eq!(s.distinct_pcs, 3);
    }
}
