//! Decode policies and trace-health reporting.
//!
//! Every reader in this crate decodes under a [`DecodePolicy`]:
//!
//! * [`DecodePolicy::Strict`] (the default) is today's behaviour,
//!   bit-for-bit — the first malformed record aborts the decode with a
//!   typed [`TraceError`](crate::TraceError);
//! * [`DecodePolicy::Quarantine`] skips unparseable records instead,
//!   resynchronising on the fixed 17-byte record grid (a bad kind byte
//!   corrupts exactly one cell, never the reader's framing), counts
//!   what it dropped into a [`TraceHealth`] report, and aborts with
//!   [`TraceError::QuarantineExceeded`](crate::TraceError::QuarantineExceeded)
//!   only once more than `max_bad` records have been quarantined.
//!
//! The normative description of what counts as a bad record — and why
//! grid resync is always safe — lives in `docs/TRACE_FORMAT.md`
//! ("Corruption & quarantine semantics").

use std::fmt;

/// How a trace reader treats malformed records.
///
/// # Examples
///
/// ```
/// use tlbsim_trace::{DecodePolicy, TraceHealth};
///
/// let clean = TraceHealth { records_ok: 100, ..TraceHealth::default() };
/// assert!(DecodePolicy::Strict.admits(&clean));
///
/// let scarred = TraceHealth { records_ok: 98, records_bad: 2, ..clean };
/// assert!(!DecodePolicy::Strict.admits(&scarred));
/// assert!(DecodePolicy::quarantine(4).admits(&scarred));
/// assert!(!DecodePolicy::quarantine(1).admits(&scarred));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodePolicy {
    /// Abort on the first malformed record (the default; bit-identical
    /// to the pre-quarantine readers).
    #[default]
    Strict,
    /// Skip malformed records — resyncing on the 17-byte record grid —
    /// and count them, aborting only past a bad-record budget.
    Quarantine {
        /// Maximum quarantined records tolerated before the decode
        /// aborts with `TraceError::QuarantineExceeded`.
        max_bad: u64,
    },
}

impl DecodePolicy {
    /// Quarantine with an explicit bad-record budget.
    pub fn quarantine(max_bad: u64) -> Self {
        DecodePolicy::Quarantine { max_bad }
    }

    /// Quarantine with an unlimited budget — decode everything
    /// decodable and report the damage. Used by `xp check` to produce a
    /// full [`TraceHealth`] report even for badly scarred files.
    pub fn lenient() -> Self {
        DecodePolicy::Quarantine { max_bad: u64::MAX }
    }

    /// Whether this is the strict (abort-on-first-fault) policy.
    pub fn is_strict(self) -> bool {
        matches!(self, DecodePolicy::Strict)
    }

    /// Whether a trace with this health report is acceptable under the
    /// policy: Strict admits only clean traces; Quarantine admits up to
    /// `max_bad` quarantined records (a torn tail is tolerated).
    pub fn admits(self, health: &TraceHealth) -> bool {
        match self {
            DecodePolicy::Strict => health.is_clean(),
            DecodePolicy::Quarantine { max_bad } => health.records_bad <= max_bad,
        }
    }
}

impl fmt::Display for DecodePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodePolicy::Strict => f.write_str("strict"),
            DecodePolicy::Quarantine { max_bad: u64::MAX } => f.write_str("quarantine"),
            DecodePolicy::Quarantine { max_bad } => write!(f, "quarantine(max_bad={max_bad})"),
        }
    }
}

/// What a decode pass found: how many records were usable, how many
/// were quarantined, and whether the file ends in a torn record.
///
/// Produced by [`MmapTrace::scan_health`](crate::MmapTrace::scan_health),
/// by [`MmapTraceCursor::health`](crate::MmapTraceCursor::health) /
/// [`BinaryTraceReader::health`](crate::BinaryTraceReader::health) as a
/// running tally, and surfaced end-to-end through
/// `TraceWorkload::health` and the sharded runner's `RunHealth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceHealth {
    /// Records decoded successfully.
    pub records_ok: u64,
    /// Records skipped as unparseable (bad kind byte).
    pub records_bad: u64,
    /// Bytes of a torn final record (0 for a record-aligned body).
    pub torn_tail_bytes: u64,
    /// Index (on the raw 17-byte grid) of the first quarantined record.
    pub first_bad_record: Option<u64>,
    /// Whole v2 blocks quarantined. v2 damage is block-granular — a
    /// damaged block loses every record it held, and those records are
    /// already counted in `records_bad` — so this field refines, never
    /// extends, the bad-record tally. Always 0 on v1 paths.
    pub blocks_bad: u64,
}

impl TraceHealth {
    /// Whether the trace decoded without any fault.
    pub fn is_clean(&self) -> bool {
        self.records_bad == 0 && self.torn_tail_bytes == 0
    }

    /// All whole records on the grid, good and bad.
    pub fn total_records(&self) -> u64 {
        self.records_ok + self.records_bad
    }
}

impl fmt::Display for TraceHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} records ok", self.records_ok)?;
        if self.records_bad > 0 {
            write!(f, ", {} quarantined", self.records_bad)?;
            if let Some(first) = self.first_bad_record {
                write!(f, " (first at record {first})")?;
            }
        }
        if self.blocks_bad > 0 {
            write!(f, " in {} bad blocks", self.blocks_bad)?;
        }
        if self.torn_tail_bytes > 0 {
            write!(f, ", {}-byte torn tail", self.torn_tail_bytes)?;
        }
        if self.is_clean() {
            f.write_str(", clean")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_admits_only_clean() {
        let clean = TraceHealth {
            records_ok: 10,
            ..TraceHealth::default()
        };
        assert!(clean.is_clean());
        assert!(DecodePolicy::Strict.admits(&clean));
        let torn = TraceHealth {
            torn_tail_bytes: 5,
            ..clean
        };
        assert!(!DecodePolicy::Strict.admits(&torn));
        assert!(DecodePolicy::quarantine(0).admits(&torn));
    }

    #[test]
    fn quarantine_budget_is_inclusive() {
        let h = TraceHealth {
            records_ok: 7,
            records_bad: 3,
            torn_tail_bytes: 0,
            first_bad_record: Some(2),
            blocks_bad: 0,
        };
        assert!(DecodePolicy::quarantine(3).admits(&h));
        assert!(!DecodePolicy::quarantine(2).admits(&h));
        assert!(DecodePolicy::lenient().admits(&h));
        assert_eq!(h.total_records(), 10);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(DecodePolicy::Strict.to_string(), "strict");
        assert!(DecodePolicy::quarantine(9).to_string().contains("9"));
        let h = TraceHealth {
            records_ok: 98,
            records_bad: 2,
            torn_tail_bytes: 5,
            first_bad_record: Some(17),
            blocks_bad: 1,
        };
        let s = h.to_string();
        assert!(s.contains("98 records ok"));
        assert!(s.contains("2 quarantined"));
        assert!(s.contains("record 17"));
        assert!(s.contains("5-byte torn tail"));
        assert!(s.contains("1 bad block"));
        let clean = TraceHealth {
            records_ok: 4,
            ..TraceHealth::default()
        };
        assert!(clean.to_string().contains("clean"));
    }
}
