//! Iterator adapters over reference streams.
//!
//! The paper fast-forwards the first two billion instructions of each
//! SPEC application and simulates the next billion (§3.1). These adapters
//! express that discipline over any `Iterator<Item = MemoryAccess>`:
//! [`TraceWindow`] skips then takes, and [`Sampled`] keeps every `n`-th
//! record for quick exploratory runs.

use tlbsim_core::MemoryAccess;

/// Extension methods for reference streams.
pub trait TraceStreamExt: Iterator<Item = MemoryAccess> + Sized {
    /// Skips `skip` references and yields at most `take` after that —
    /// the fast-forward + simulate window of §3.1.
    fn window(self, skip: u64, take: u64) -> TraceWindow<Self> {
        TraceWindow {
            inner: self,
            skip,
            remaining: take,
        }
    }

    /// Keeps every `period`-th reference (1 keeps everything).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    fn sample(self, period: u64) -> Sampled<Self> {
        assert!(period > 0, "sampling period must be at least 1");
        Sampled {
            inner: self,
            period,
            seen: 0,
        }
    }
}

impl<I: Iterator<Item = MemoryAccess>> TraceStreamExt for I {}

/// Iterator returned by [`TraceStreamExt::window`].
#[derive(Debug, Clone)]
pub struct TraceWindow<I> {
    inner: I,
    skip: u64,
    remaining: u64,
}

impl<I: Iterator<Item = MemoryAccess>> Iterator for TraceWindow<I> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<Self::Item> {
        while self.skip > 0 {
            self.inner.next()?;
            self.skip -= 1;
        }
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next()
    }
}

/// Iterator returned by [`TraceStreamExt::sample`].
#[derive(Debug, Clone)]
pub struct Sampled<I> {
    inner: I,
    period: u64,
    seen: u64,
}

impl<I: Iterator<Item = MemoryAccess>> Iterator for Sampled<I> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let item = self.inner.next()?;
            self.seen += 1;
            if (self.seen - 1).is_multiple_of(self.period) {
                return Some(item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u64) -> impl Iterator<Item = MemoryAccess> {
        (0..n).map(|i| MemoryAccess::read(i, i * 4096))
    }

    #[test]
    fn window_skips_then_takes() {
        let got: Vec<u64> = stream(10).window(3, 4).map(|a| a.pc.raw()).collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
    }

    #[test]
    fn window_truncates_at_stream_end() {
        let got: Vec<u64> = stream(5).window(3, 100).map(|a| a.pc.raw()).collect();
        assert_eq!(got, vec![3, 4]);
    }

    #[test]
    fn window_of_zero_is_empty() {
        assert_eq!(stream(5).window(0, 0).count(), 0);
        assert_eq!(stream(5).window(10, 5).count(), 0);
    }

    #[test]
    fn sample_keeps_every_nth() {
        let got: Vec<u64> = stream(10).sample(3).map(|a| a.pc.raw()).collect();
        assert_eq!(got, vec![0, 3, 6, 9]);
    }

    #[test]
    fn sample_of_one_is_identity() {
        assert_eq!(stream(7).sample(1).count(), 7);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sample_zero_panics() {
        let _ = stream(3).sample(0);
    }
}
