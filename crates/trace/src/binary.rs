//! The binary trace format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   : 4 bytes  "TLBT"
//! version : u16      (currently 1)
//! reserved: u16      (zero)
//! records : repeated { pc: u64, vaddr: u64, kind: u8 }
//! ```
//!
//! The format is deliberately dumb: 17 bytes per record, no compression,
//! so external tracing tools (a Pin/DynamoRIO client, a QEMU plugin, …)
//! can emit it with a dozen lines of C.
//!
//! The **normative** specification — field-by-field layout, truncation
//! and validation semantics, the versioning policy, and a reference C
//! writer — is `docs/TRACE_FORMAT.md` at the repository root; this
//! module and [`crate::MmapTrace`] implement it.

use std::io::{self, BufReader, BufWriter, Read, Write};

use tlbsim_core::{AccessKind, MemoryAccess};

use crate::error::TraceError;
use crate::policy::{DecodePolicy, TraceHealth};

/// Magic bytes opening every binary trace.
pub const MAGIC: [u8; 4] = *b"TLBT";
/// Current format version.
pub const VERSION: u16 = 1;
/// Fixed size of every record: `pc: u64`, `vaddr: u64`, `kind: u8`.
///
/// Fixed-width cells are what make record indices byte offsets: record
/// `i` lives at `HEADER_BYTES + i * RECORD_BYTES`, so the mmap cursor
/// ([`crate::MmapTrace`]) seeks in O(1).
pub const RECORD_BYTES: usize = 17;
/// Size of the magic + version + reserved header.
pub const HEADER_BYTES: usize = 8;

/// Streaming writer for the binary trace format.
///
/// Generic writers are taken by value; pass `&mut writer` to retain
/// ownership.
///
/// # Examples
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_trace::{BinaryTraceReader, BinaryTraceWriter};
///
/// let mut buf = Vec::new();
/// let mut w = BinaryTraceWriter::create(&mut buf)?;
/// w.write(&MemoryAccess::read(0x400, 0x1000))?;
/// w.finish()?;
///
/// let mut r = BinaryTraceReader::open(buf.as_slice())?;
/// let rec = r.next().unwrap()?;
/// assert_eq!(rec.vaddr.raw(), 0x1000);
/// # Ok::<(), tlbsim_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct BinaryTraceWriter<W: Write> {
    out: BufWriter<W>,
    written: u64,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the header cannot be written.
    pub fn create(out: W) -> Result<Self, TraceError> {
        let mut w = BufWriter::new(out);
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?;
        Ok(BinaryTraceWriter { out: w, written: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn write(&mut self, access: &MemoryAccess) -> Result<(), TraceError> {
        let mut record = [0u8; RECORD_BYTES];
        record[0..8].copy_from_slice(&access.pc.raw().to_le_bytes());
        record[8..16].copy_from_slice(&access.vaddr.raw().to_le_bytes());
        record[16] = match access.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        };
        self.out.write_all(&record)?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Flushes buffered bytes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the flush fails.
    pub fn finish(self) -> Result<W, TraceError> {
        self.out
            .into_inner()
            .map_err(|e| TraceError::Io(io::Error::other(e.to_string())))
    }
}

/// Streaming reader for the binary trace format; iterate to consume.
///
/// Generic readers are taken by value; pass `&mut reader` to retain
/// ownership.
///
/// By default the reader decodes strictly (the first malformed record
/// aborts iteration with a typed error); open it with
/// [`BinaryTraceReader::open_with_policy`] and
/// [`DecodePolicy::Quarantine`] to skip bad records instead, counting
/// them into [`BinaryTraceReader::health`].
#[derive(Debug)]
pub struct BinaryTraceReader<R: Read> {
    input: BufReader<R>,
    read: u64,
    policy: DecodePolicy,
    bad: u64,
    first_bad: Option<u64>,
    torn_tail: u64,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Opens a reader, validating the header.
    ///
    /// Record indexing is shared across every consumer of the format:
    /// the record this reader yields `n`-th is the one
    /// [`window(n, …)`](crate::TraceStreamExt::window) starts at, the
    /// one an [`MmapTraceCursor`](crate::MmapTraceCursor) seeked to `n`
    /// decodes next, and the one a replayed workload stands on after
    /// `skip_accesses(n)` — a doc-test on
    /// `tlbsim_workloads::TraceWorkload` proves the three agree.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::TruncatedHeader`] if the input ends inside
    /// the 8-byte header, [`TraceError::BadMagic`] /
    /// [`TraceError::UnsupportedVersion`] for malformed headers and
    /// [`TraceError::Io`] for I/O failures.
    pub fn open(input: R) -> Result<Self, TraceError> {
        Self::open_with_policy(input, DecodePolicy::Strict)
    }

    /// Opens a reader under an explicit [`DecodePolicy`].
    ///
    /// Header validation is identical to [`BinaryTraceReader::open`] —
    /// quarantine applies to record decode only, never to the header
    /// (a file that cannot prove it is a TLBT trace is rejected, not
    /// quarantined). Under quarantine the iterator silently skips
    /// records with bad kind bytes (resynchronising on the 17-byte
    /// grid), absorbs a torn final record as end-of-trace, tallies both
    /// into [`BinaryTraceReader::health`], and yields
    /// [`TraceError::QuarantineExceeded`] once more than `max_bad`
    /// records have been skipped.
    ///
    /// # Errors
    ///
    /// As for [`BinaryTraceReader::open`].
    pub fn open_with_policy(input: R, policy: DecodePolicy) -> Result<Self, TraceError> {
        let mut input = BufReader::new(input);
        let mut header = [0u8; HEADER_BYTES];
        let mut filled = 0;
        while filled < HEADER_BYTES {
            match input.read(&mut header[filled..]) {
                Ok(0) => return Err(TraceError::TruncatedHeader { len: filled as u64 }),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceError::Io(e)),
            }
        }
        if header[0..4] != MAGIC {
            return Err(TraceError::BadMagic {
                found: header[0..4].try_into().expect("4-byte slice"),
            });
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        Ok(BinaryTraceReader {
            input,
            read: 0,
            policy,
            bad: 0,
            first_bad: None,
            torn_tail: 0,
        })
    }

    /// Number of records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.read
    }

    /// The decode policy this reader runs under.
    pub fn policy(&self) -> DecodePolicy {
        self.policy
    }

    /// Running health tally: records decoded, records quarantined, and
    /// torn-tail bytes seen so far. Meaningful once iteration finishes
    /// (before that it reports the stream prefix consumed so far).
    pub fn health(&self) -> TraceHealth {
        TraceHealth {
            records_ok: self.read,
            records_bad: self.bad,
            torn_tail_bytes: self.torn_tail,
            first_bad_record: self.first_bad,
            blocks_bad: 0,
        }
    }

    fn read_record(&mut self) -> Result<Option<MemoryAccess>, TraceError> {
        // A blown quarantine budget is terminal: the error is reported
        // once (below) and the stream then reads as ended, so consumers
        // collecting `Result`s terminate instead of spinning on errors.
        if let DecodePolicy::Quarantine { max_bad } = self.policy {
            if self.bad > max_bad {
                return Ok(None);
            }
        }
        loop {
            let mut raw = [0u8; RECORD_BYTES];
            let mut filled = 0;
            while filled < RECORD_BYTES {
                match self.input.read(&mut raw[filled..]) {
                    Ok(0) => {
                        if filled == 0 {
                            return Ok(None);
                        }
                        return match self.policy {
                            DecodePolicy::Strict => Err(TraceError::TruncatedRecord),
                            DecodePolicy::Quarantine { .. } => {
                                // A torn final record is end-of-trace
                                // under quarantine; count the fragment.
                                self.torn_tail = filled as u64;
                                Ok(None)
                            }
                        };
                    }
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(TraceError::Io(e)),
                }
            }
            let kind = match raw[16] {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                found => match self.policy {
                    DecodePolicy::Strict => return Err(TraceError::InvalidKind { found }),
                    DecodePolicy::Quarantine { max_bad } => {
                        if self.first_bad.is_none() {
                            self.first_bad = Some(self.read + self.bad);
                        }
                        self.bad += 1;
                        if self.bad > max_bad {
                            return Err(TraceError::QuarantineExceeded {
                                bad: self.bad,
                                max_bad,
                            });
                        }
                        continue;
                    }
                },
            };
            let pc = u64::from_le_bytes(raw[0..8].try_into().expect("8-byte slice"));
            let vaddr = u64::from_le_bytes(raw[8..16].try_into().expect("8-byte slice"));
            self.read += 1;
            return Ok(Some(MemoryAccess {
                pc: pc.into(),
                vaddr: vaddr.into(),
                kind,
            }));
        }
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = Result<MemoryAccess, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<MemoryAccess> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    MemoryAccess::read(0x400 + i * 4, i * 4096)
                } else {
                    MemoryAccess::write(0x400 + i * 4, i * 4096 + 8)
                }
            })
            .collect()
    }

    fn roundtrip(records: &[MemoryAccess]) -> Vec<MemoryAccess> {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        assert_eq!(w.records_written(), records.len() as u64);
        w.finish().unwrap();
        BinaryTraceReader::open(buf.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect()
    }

    #[test]
    fn roundtrip_preserves_records() {
        let recs = sample(100);
        assert_eq!(roundtrip(&recs), recs);
    }

    #[test]
    fn empty_trace_is_valid() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn header_is_17_bytes_per_record_plus_8() {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in sample(3) {
            w.write(&r).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(buf.len(), 8 + 3 * RECORD_BYTES);
    }

    #[test]
    fn truncated_header_is_rejected() {
        let err = BinaryTraceReader::open(&b"TLB"[..]).unwrap_err();
        assert!(matches!(err, TraceError::TruncatedHeader { len: 3 }));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = BinaryTraceReader::open(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic { .. }));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&9u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        let err = BinaryTraceReader::open(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion { found: 9 }));
    }

    #[test]
    fn truncated_record_is_reported() {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        w.write(&MemoryAccess::read(1, 2)).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = BinaryTraceReader::open(buf.as_slice()).unwrap();
        assert!(matches!(r.next(), Some(Err(TraceError::TruncatedRecord))));
    }

    #[test]
    fn invalid_kind_byte_is_reported() {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        w.write(&MemoryAccess::read(1, 2)).unwrap();
        w.finish().unwrap();
        let last = buf.len() - 1;
        buf[last] = 7;
        let mut r = BinaryTraceReader::open(buf.as_slice()).unwrap();
        assert!(matches!(
            r.next(),
            Some(Err(TraceError::InvalidKind { found: 7 }))
        ));
    }

    #[test]
    fn quarantine_reader_skips_bad_records_and_reports_health() {
        let recs = sample(10);
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in &recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        // Corrupt kinds of records 3 and 7, then tear the tail.
        buf[HEADER_BYTES + 3 * RECORD_BYTES + 16] = 0xEE;
        buf[HEADER_BYTES + 7 * RECORD_BYTES + 16] = 0xEE;
        buf.truncate(buf.len() - 4);
        // The torn tail removes record 9 (it becomes a 13-byte fragment).
        let mut r =
            BinaryTraceReader::open_with_policy(buf.as_slice(), DecodePolicy::quarantine(5))
                .unwrap();
        let got: Vec<MemoryAccess> = r.by_ref().map(|x| x.unwrap()).collect();
        let mut want = recs.clone();
        want.remove(9);
        want.remove(7);
        want.remove(3);
        assert_eq!(got, want);
        let health = r.health();
        assert_eq!(health.records_ok, 7);
        assert_eq!(health.records_bad, 2);
        assert_eq!(health.torn_tail_bytes, 13);
        assert_eq!(health.first_bad_record, Some(3));
        assert!(!health.is_clean());
    }

    #[test]
    fn quarantine_budget_aborts_with_typed_error() {
        let recs = sample(6);
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in &recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        for bad in [1usize, 2, 4] {
            buf[HEADER_BYTES + bad * RECORD_BYTES + 16] = 9;
        }
        let mut r =
            BinaryTraceReader::open_with_policy(buf.as_slice(), DecodePolicy::quarantine(2))
                .unwrap();
        let outcome: Vec<_> = r.by_ref().collect();
        assert!(matches!(
            outcome.last(),
            Some(Err(TraceError::QuarantineExceeded { bad: 3, max_bad: 2 }))
        ));
        assert_eq!(outcome.iter().filter(|x| x.is_ok()).count(), 2);
    }

    #[test]
    fn strict_policy_is_the_default_and_unchanged() {
        let recs = sample(4);
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in &recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let r = BinaryTraceReader::open(buf.as_slice()).unwrap();
        assert!(r.policy().is_strict());
        let got: Vec<MemoryAccess> = r.map(|x| x.unwrap()).collect();
        assert_eq!(got, recs);
    }

    #[test]
    fn reader_counts_records() {
        let recs = sample(5);
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in &recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let mut r = BinaryTraceReader::open(buf.as_slice()).unwrap();
        while r.next().is_some() {}
        assert_eq!(r.records_read(), 5);
    }
}
