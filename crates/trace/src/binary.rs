//! The binary trace format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   : 4 bytes  "TLBT"
//! version : u16      (currently 1)
//! reserved: u16      (zero)
//! records : repeated { pc: u64, vaddr: u64, kind: u8 }
//! ```
//!
//! The format is deliberately dumb: 17 bytes per record, no compression,
//! so external tracing tools (a Pin/DynamoRIO client, a QEMU plugin, …)
//! can emit it with a dozen lines of C.
//!
//! The **normative** specification — field-by-field layout, truncation
//! and validation semantics, the versioning policy, and a reference C
//! writer — is `docs/TRACE_FORMAT.md` at the repository root; this
//! module and [`crate::MmapTrace`] implement it.

use std::io::{self, BufReader, BufWriter, Read, Write};

use tlbsim_core::{AccessKind, MemoryAccess};

use crate::error::TraceError;

/// Magic bytes opening every binary trace.
pub const MAGIC: [u8; 4] = *b"TLBT";
/// Current format version.
pub const VERSION: u16 = 1;
/// Fixed size of every record: `pc: u64`, `vaddr: u64`, `kind: u8`.
///
/// Fixed-width cells are what make record indices byte offsets: record
/// `i` lives at `HEADER_BYTES + i * RECORD_BYTES`, so the mmap cursor
/// ([`crate::MmapTrace`]) seeks in O(1).
pub const RECORD_BYTES: usize = 17;
/// Size of the magic + version + reserved header.
pub const HEADER_BYTES: usize = 8;

/// Streaming writer for the binary trace format.
///
/// Generic writers are taken by value; pass `&mut writer` to retain
/// ownership.
///
/// # Examples
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_trace::{BinaryTraceReader, BinaryTraceWriter};
///
/// let mut buf = Vec::new();
/// let mut w = BinaryTraceWriter::create(&mut buf)?;
/// w.write(&MemoryAccess::read(0x400, 0x1000))?;
/// w.finish()?;
///
/// let mut r = BinaryTraceReader::open(buf.as_slice())?;
/// let rec = r.next().unwrap()?;
/// assert_eq!(rec.vaddr.raw(), 0x1000);
/// # Ok::<(), tlbsim_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct BinaryTraceWriter<W: Write> {
    out: BufWriter<W>,
    written: u64,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the header cannot be written.
    pub fn create(out: W) -> Result<Self, TraceError> {
        let mut w = BufWriter::new(out);
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?;
        Ok(BinaryTraceWriter { out: w, written: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn write(&mut self, access: &MemoryAccess) -> Result<(), TraceError> {
        let mut record = [0u8; RECORD_BYTES];
        record[0..8].copy_from_slice(&access.pc.raw().to_le_bytes());
        record[8..16].copy_from_slice(&access.vaddr.raw().to_le_bytes());
        record[16] = match access.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        };
        self.out.write_all(&record)?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Flushes buffered bytes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the flush fails.
    pub fn finish(self) -> Result<W, TraceError> {
        self.out
            .into_inner()
            .map_err(|e| TraceError::Io(io::Error::other(e.to_string())))
    }
}

/// Streaming reader for the binary trace format; iterate to consume.
///
/// Generic readers are taken by value; pass `&mut reader` to retain
/// ownership.
#[derive(Debug)]
pub struct BinaryTraceReader<R: Read> {
    input: BufReader<R>,
    read: u64,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Opens a reader, validating the header.
    ///
    /// Record indexing is shared across every consumer of the format:
    /// the record this reader yields `n`-th is the one
    /// [`window(n, …)`](crate::TraceStreamExt::window) starts at, the
    /// one an [`MmapTraceCursor`](crate::MmapTraceCursor) seeked to `n`
    /// decodes next, and the one a replayed workload stands on after
    /// `skip_accesses(n)` — a doc-test on
    /// `tlbsim_workloads::TraceWorkload` proves the three agree.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::TruncatedHeader`] if the input ends inside
    /// the 8-byte header, [`TraceError::BadMagic`] /
    /// [`TraceError::UnsupportedVersion`] for malformed headers and
    /// [`TraceError::Io`] for I/O failures.
    pub fn open(input: R) -> Result<Self, TraceError> {
        let mut input = BufReader::new(input);
        let mut header = [0u8; HEADER_BYTES];
        let mut filled = 0;
        while filled < HEADER_BYTES {
            match input.read(&mut header[filled..]) {
                Ok(0) => return Err(TraceError::TruncatedHeader { len: filled as u64 }),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceError::Io(e)),
            }
        }
        if header[0..4] != MAGIC {
            return Err(TraceError::BadMagic {
                found: header[0..4].try_into().expect("4-byte slice"),
            });
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        Ok(BinaryTraceReader { input, read: 0 })
    }

    /// Number of records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.read
    }

    fn read_record(&mut self) -> Result<Option<MemoryAccess>, TraceError> {
        let mut raw = [0u8; RECORD_BYTES];
        let mut filled = 0;
        while filled < RECORD_BYTES {
            match self.input.read(&mut raw[filled..]) {
                Ok(0) => {
                    return if filled == 0 {
                        Ok(None)
                    } else {
                        Err(TraceError::TruncatedRecord)
                    };
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceError::Io(e)),
            }
        }
        let pc = u64::from_le_bytes(raw[0..8].try_into().expect("8-byte slice"));
        let vaddr = u64::from_le_bytes(raw[8..16].try_into().expect("8-byte slice"));
        let kind = match raw[16] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            found => return Err(TraceError::InvalidKind { found }),
        };
        self.read += 1;
        Ok(Some(MemoryAccess {
            pc: pc.into(),
            vaddr: vaddr.into(),
            kind,
        }))
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = Result<MemoryAccess, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<MemoryAccess> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    MemoryAccess::read(0x400 + i * 4, i * 4096)
                } else {
                    MemoryAccess::write(0x400 + i * 4, i * 4096 + 8)
                }
            })
            .collect()
    }

    fn roundtrip(records: &[MemoryAccess]) -> Vec<MemoryAccess> {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        assert_eq!(w.records_written(), records.len() as u64);
        w.finish().unwrap();
        BinaryTraceReader::open(buf.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect()
    }

    #[test]
    fn roundtrip_preserves_records() {
        let recs = sample(100);
        assert_eq!(roundtrip(&recs), recs);
    }

    #[test]
    fn empty_trace_is_valid() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn header_is_17_bytes_per_record_plus_8() {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in sample(3) {
            w.write(&r).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(buf.len(), 8 + 3 * RECORD_BYTES);
    }

    #[test]
    fn truncated_header_is_rejected() {
        let err = BinaryTraceReader::open(&b"TLB"[..]).unwrap_err();
        assert!(matches!(err, TraceError::TruncatedHeader { len: 3 }));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = BinaryTraceReader::open(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic { .. }));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&9u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        let err = BinaryTraceReader::open(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion { found: 9 }));
    }

    #[test]
    fn truncated_record_is_reported() {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        w.write(&MemoryAccess::read(1, 2)).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = BinaryTraceReader::open(buf.as_slice()).unwrap();
        assert!(matches!(r.next(), Some(Err(TraceError::TruncatedRecord))));
    }

    #[test]
    fn invalid_kind_byte_is_reported() {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        w.write(&MemoryAccess::read(1, 2)).unwrap();
        w.finish().unwrap();
        let last = buf.len() - 1;
        buf[last] = 7;
        let mut r = BinaryTraceReader::open(buf.as_slice()).unwrap();
        assert!(matches!(
            r.next(),
            Some(Err(TraceError::InvalidKind { found: 7 }))
        ));
    }

    #[test]
    fn reader_counts_records() {
        let recs = sample(5);
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in &recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let mut r = BinaryTraceReader::open(buf.as_slice()).unwrap();
        while r.next().is_some() {}
        assert_eq!(r.records_read(), 5);
    }
}
