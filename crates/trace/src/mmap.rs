//! Zero-copy trace replay over a memory-mapped file.
//!
//! [`BinaryTraceReader`](crate::BinaryTraceReader) decodes through a
//! `BufReader` one record at a time — fine for tools, too slow (and too
//! iterator-shaped) for the simulator's batched hot loop. [`MmapTrace`]
//! maps the file once (via the `tlbsim-shim-mmap` wrapper; a safe
//! read-whole-file fallback keeps semantics identical off Linux),
//! validates the header **once** at open, and then hands out
//! [`MmapTraceCursor`]s that decode fixed-size record slices straight
//! out of the mapped bytes into caller-owned `&mut [MemoryAccess]`
//! buffers — zero heap allocations in steady-state replay, pinned by
//! `tlbsim-sim`'s counting-allocator test.
//!
//! Records are fixed 17-byte cells, so cursors also seek in O(1):
//! [`MmapTraceCursor::skip_records`] is one bounds-checked add, which is
//! what lets the sharded executor position workers mid-trace without
//! replaying the prefix.
//!
//! The byte format this module replays is specified normatively in
//! `docs/TRACE_FORMAT.md` at the repository root.

use std::path::Path;
use std::sync::Arc;

use ::mmap::Mmap;
use tlbsim_core::{AccessKind, MemoryAccess};

use crate::binary::{HEADER_BYTES, MAGIC, RECORD_BYTES, VERSION};
use crate::error::TraceError;
use crate::policy::{DecodePolicy, TraceHealth};

/// A validated, memory-mapped binary trace (`TLBT` format).
///
/// Cheap to clone conceptually: [`MmapTrace::cursor`] hands out any
/// number of independent read positions over the same mapping, so
/// parallel shards replay one mapped file without re-opening it.
///
/// # Examples
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_trace::{BinaryTraceWriter, MmapTrace};
///
/// let path = std::env::temp_dir().join(format!("tlbt-doc-{}", std::process::id()));
/// let mut w = BinaryTraceWriter::create(std::fs::File::create(&path)?)?;
/// for i in 0..100u64 {
///     w.write(&MemoryAccess::read(0x400, i * 4096))?;
/// }
/// w.finish()?;
///
/// let trace = MmapTrace::open(&path)?;
/// assert_eq!(trace.record_count(), 100);
/// let mut buf = vec![MemoryAccess::read(0, 0); 64];
/// let mut cursor = trace.cursor();
/// assert_eq!(cursor.decode_batch(&mut buf)?, 64);
/// assert_eq!(cursor.decode_batch(&mut buf)?, 36);
/// assert_eq!(cursor.decode_batch(&mut buf)?, 0);
/// std::fs::remove_file(&path).ok();
/// # Ok::<(), tlbsim_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MmapTrace {
    map: Arc<Mmap>,
    records: u64,
    policy: DecodePolicy,
    torn_tail: u64,
}

impl MmapTrace {
    /// Maps and validates a trace file.
    ///
    /// The header (magic, version) and the body length are checked here,
    /// once; cursors never re-validate them.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be opened or mapped;
    /// [`TraceError::TruncatedHeader`] if it is shorter than the 8-byte
    /// header; [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`]
    /// for a malformed header; [`TraceError::TruncatedRecord`] if the
    /// body is not a whole number of 17-byte records (a torn final
    /// record).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::from_map(Mmap::open(path)?)
    }

    /// Maps a trace file under an explicit [`DecodePolicy`].
    ///
    /// Header validation is policy-independent (a file that cannot
    /// prove it is a TLBT trace is rejected, never quarantined); the
    /// policy governs the body. Under quarantine a torn final record is
    /// accepted — the whole records before it replay and the fragment
    /// length is reported as [`TraceHealth::torn_tail_bytes`] — and the
    /// cursors this trace hands out skip bad-kind records instead of
    /// erroring.
    ///
    /// # Errors
    ///
    /// As for [`MmapTrace::open`], except `TruncatedRecord` for a torn
    /// tail, which only strict mode reports.
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        policy: DecodePolicy,
    ) -> Result<Self, TraceError> {
        Self::from_map_with_policy(Mmap::open(path)?, policy)
    }

    /// Validates an already-obtained mapping (or any in-memory buffer
    /// wrapped in one — see `Mmap::from_vec`), with the same checks as
    /// [`MmapTrace::open`].
    ///
    /// # Errors
    ///
    /// As for [`MmapTrace::open`], minus the I/O.
    pub fn from_map(map: Mmap) -> Result<Self, TraceError> {
        Self::from_map_with_policy(map, DecodePolicy::Strict)
    }

    /// [`MmapTrace::from_map`] under an explicit policy (see
    /// [`MmapTrace::open_with_policy`]).
    ///
    /// # Errors
    ///
    /// As for [`MmapTrace::open_with_policy`].
    pub fn from_map_with_policy(map: Mmap, policy: DecodePolicy) -> Result<Self, TraceError> {
        let bytes = map.as_bytes();
        if bytes.len() < HEADER_BYTES {
            return Err(TraceError::TruncatedHeader {
                len: bytes.len() as u64,
            });
        }
        if bytes[0..4] != MAGIC {
            return Err(TraceError::BadMagic {
                found: bytes[0..4].try_into().expect("4-byte slice"),
            });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2-byte slice"));
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        let body = bytes.len() - HEADER_BYTES;
        let torn_tail = (body % RECORD_BYTES) as u64;
        if torn_tail != 0 && policy.is_strict() {
            return Err(TraceError::TruncatedRecord);
        }
        Ok(MmapTrace {
            map: Arc::new(map),
            records: (body / RECORD_BYTES) as u64,
            policy,
            torn_tail,
        })
    }

    /// Number of records in the trace.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Bytes occupied by the mapped file (header + records).
    pub fn byte_len(&self) -> u64 {
        self.map.as_bytes().len() as u64
    }

    /// Which backend serves the bytes (`"mmap"` zero-copy or the
    /// `"read"` fallback).
    pub fn backend(&self) -> &'static str {
        self.map.backend().label()
    }

    /// The decode policy this trace was opened under (inherited by its
    /// cursors).
    pub fn policy(&self) -> DecodePolicy {
        self.policy
    }

    /// Bytes of a torn final record the mapping carries (always 0 under
    /// the strict policy, which rejects torn files at open).
    pub fn torn_tail_bytes(&self) -> u64 {
        self.torn_tail
    }

    /// A fresh cursor positioned at record 0, decoding under the
    /// trace's own policy.
    pub fn cursor(&self) -> MmapTraceCursor {
        self.cursor_with_policy(self.policy)
    }

    /// A fresh cursor decoding under an explicit policy (e.g. a strict
    /// validation pass over a quarantine-opened trace).
    pub fn cursor_with_policy(&self, policy: DecodePolicy) -> MmapTraceCursor {
        MmapTraceCursor {
            map: Arc::clone(&self.map),
            records: self.records,
            next: 0,
            policy,
            ok_seen: 0,
            bad_seen: 0,
            first_bad: None,
            torn_tail: self.torn_tail,
        }
    }

    /// Decodes every record once, verifying the access-kind bytes, so a
    /// subsequent replay cannot fail mid-stream. Doubles as a sequential
    /// page-cache warm-up of the mapping. Always strict, regardless of
    /// the trace's policy — use [`MmapTrace::scan_health`] for a
    /// policy-aware pass.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidKind`] on the first bad record.
    pub fn validate_records(&self) -> Result<(), TraceError> {
        let mut cursor = self.cursor_with_policy(DecodePolicy::Strict);
        let mut buf = [MemoryAccess::read(0, 0); 512];
        while cursor.decode_batch(&mut buf)? != 0 {}
        Ok(())
    }

    /// Decodes every record once under the trace's policy, returning
    /// the full [`TraceHealth`] report. Like
    /// [`MmapTrace::validate_records`], the pass doubles as page-cache
    /// warm-up; on a clean trace under any policy the report is
    /// all-zeros except `records_ok`.
    ///
    /// # Errors
    ///
    /// Strict: [`TraceError::InvalidKind`] on the first bad record.
    /// Quarantine: [`TraceError::QuarantineExceeded`] once the skip
    /// count passes the policy's `max_bad`.
    pub fn scan_health(&self) -> Result<TraceHealth, TraceError> {
        let mut cursor = self.cursor();
        let mut buf = [MemoryAccess::read(0, 0); 512];
        while cursor.decode_batch(&mut buf)? != 0 {}
        Ok(cursor.health())
    }
}

/// An independent read position over an [`MmapTrace`].
///
/// Decoding fills caller-owned buffers ([`decode_batch`]) so the replay
/// loop performs no heap allocation; seeking is O(1) arithmetic
/// ([`skip_records`], [`seek`]).
///
/// [`decode_batch`]: MmapTraceCursor::decode_batch
/// [`skip_records`]: MmapTraceCursor::skip_records
/// [`seek`]: MmapTraceCursor::seek
#[derive(Debug, Clone)]
pub struct MmapTraceCursor {
    map: Arc<Mmap>,
    records: u64,
    next: u64,
    policy: DecodePolicy,
    ok_seen: u64,
    bad_seen: u64,
    first_bad: Option<u64>,
    torn_tail: u64,
}

impl MmapTraceCursor {
    /// Fills `buf` with the next records, returning how many were
    /// written; zero means the trace is exhausted. Mirrors the
    /// `fill_batch` contract of the workload generators, including the
    /// panic on an empty buffer.
    ///
    /// # Errors
    ///
    /// Strict policy: [`TraceError::InvalidKind`] on a corrupt
    /// access-kind byte; the cursor is left positioned **at** the
    /// offending record (everything before it in `buf` is valid but the
    /// count is not returned, so error recovery should re-seek).
    /// Quarantine policy: bad records are skipped and tallied instead
    /// (see [`MmapTraceCursor::health`]);
    /// [`TraceError::QuarantineExceeded`] once the tally passes the
    /// policy's `max_bad`, with the cursor positioned just past the
    /// record that blew the budget.
    ///
    /// # Panics
    ///
    /// Panics on an empty `buf` — a zero-length fill would be
    /// indistinguishable from end of trace.
    pub fn decode_batch(&mut self, buf: &mut [MemoryAccess]) -> Result<usize, TraceError> {
        assert!(
            !buf.is_empty(),
            "decode_batch requires a non-empty batch buffer"
        );
        match self.policy {
            DecodePolicy::Strict => self.decode_batch_strict(buf),
            DecodePolicy::Quarantine { max_bad } => self.decode_batch_quarantine(buf, max_bad),
        }
    }

    /// The pre-quarantine hot path, byte-for-byte: one bounds check,
    /// then `chunks_exact` over the mapped slice.
    fn decode_batch_strict(&mut self, buf: &mut [MemoryAccess]) -> Result<usize, TraceError> {
        let want = (buf.len() as u64).min(self.records - self.next) as usize;
        if want == 0 {
            return Ok(0);
        }
        let start = HEADER_BYTES + self.next as usize * RECORD_BYTES;
        let bytes = &self.map.as_bytes()[start..start + want * RECORD_BYTES];
        for (i, (slot, raw)) in buf
            .iter_mut()
            .zip(bytes.chunks_exact(RECORD_BYTES))
            .enumerate()
        {
            let kind = match raw[16] {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                found => {
                    self.next += i as u64;
                    return Err(TraceError::InvalidKind { found });
                }
            };
            *slot = MemoryAccess {
                pc: u64::from_le_bytes(raw[0..8].try_into().expect("8-byte slice")).into(),
                vaddr: u64::from_le_bytes(raw[8..16].try_into().expect("8-byte slice")).into(),
                kind,
            };
        }
        self.next += want as u64;
        Ok(want)
    }

    /// Quarantine decode: per-record walk of the same grid, skipping
    /// bad-kind cells and tallying them. `Ok(0)` still means exhausted —
    /// trailing bad records are consumed (and counted) on the way there.
    fn decode_batch_quarantine(
        &mut self,
        buf: &mut [MemoryAccess],
        max_bad: u64,
    ) -> Result<usize, TraceError> {
        // A blown budget is terminal: the error was reported once when
        // the budget broke; afterwards the cursor reads as exhausted.
        if self.bad_seen > max_bad {
            return Ok(0);
        }
        let bytes = self.map.as_bytes();
        let mut filled = 0;
        while filled < buf.len() && self.next < self.records {
            let start = HEADER_BYTES + self.next as usize * RECORD_BYTES;
            let raw = &bytes[start..start + RECORD_BYTES];
            let kind = match raw[16] {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => {
                    if self.first_bad.is_none() {
                        self.first_bad = Some(self.next);
                    }
                    self.bad_seen += 1;
                    self.next += 1;
                    if self.bad_seen > max_bad {
                        return Err(TraceError::QuarantineExceeded {
                            bad: self.bad_seen,
                            max_bad,
                        });
                    }
                    continue;
                }
            };
            buf[filled] = MemoryAccess {
                pc: u64::from_le_bytes(raw[0..8].try_into().expect("8-byte slice")).into(),
                vaddr: u64::from_le_bytes(raw[8..16].try_into().expect("8-byte slice")).into(),
                kind,
            };
            filled += 1;
            self.ok_seen += 1;
            self.next += 1;
        }
        Ok(filled)
    }

    /// Advances past the next `n` *decodable* records, returning how
    /// many were actually skipped (less than `n` only at end of trace).
    ///
    /// This is the trace counterpart of the generators'
    /// `skip_accesses`. Under the strict policy it is O(1) — records are
    /// fixed-width cells, so a shard positions itself at any mid-trace
    /// offset with one add, no prefix decode at all. Under quarantine a
    /// skip must count only records a decode would have yielded, so it
    /// scans the prefix's kind bytes (one byte per record, no decode,
    /// no allocation) and tallies quarantined cells exactly as a decode
    /// would.
    pub fn skip_records(&mut self, n: u64) -> u64 {
        match self.policy {
            DecodePolicy::Strict => {
                let skipped = n.min(self.records - self.next);
                self.next += skipped;
                skipped
            }
            DecodePolicy::Quarantine { .. } => {
                let bytes = self.map.as_bytes();
                let mut skipped = 0;
                while skipped < n && self.next < self.records {
                    let kind = bytes[HEADER_BYTES + self.next as usize * RECORD_BYTES + 16];
                    if kind <= 1 {
                        skipped += 1;
                        self.ok_seen += 1;
                    } else {
                        if self.first_bad.is_none() {
                            self.first_bad = Some(self.next);
                        }
                        self.bad_seen += 1;
                    }
                    self.next += 1;
                }
                skipped
            }
        }
    }

    /// Repositions the cursor at an absolute record index (clamped to
    /// the end of the trace).
    pub fn seek(&mut self, record: u64) {
        self.next = record.min(self.records);
    }

    /// The index of the next record to decode (on the raw 17-byte
    /// grid — under quarantine this counts bad cells too).
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Grid cells left to walk (under quarantine an upper bound on the
    /// records a decode will yield).
    pub fn remaining(&self) -> u64 {
        self.records - self.next
    }

    /// The decode policy this cursor runs under.
    pub fn policy(&self) -> DecodePolicy {
        self.policy
    }

    /// Running health tally over everything this cursor has decoded or
    /// skipped so far (complete once the cursor is exhausted). A strict
    /// cursor reports every record it passed as ok — it would have
    /// errored otherwise. The torn-tail byte count is a property of the
    /// mapping and is reported from the start.
    pub fn health(&self) -> TraceHealth {
        TraceHealth {
            records_ok: match self.policy {
                DecodePolicy::Strict => self.next,
                DecodePolicy::Quarantine { .. } => self.ok_seen,
            },
            records_bad: self.bad_seen,
            torn_tail_bytes: self.torn_tail,
            first_bad_record: self.first_bad,
            blocks_bad: 0,
        }
    }
}

impl Iterator for MmapTraceCursor {
    type Item = Result<MemoryAccess, TraceError>;

    /// One-record convenience over [`MmapTraceCursor::decode_batch`];
    /// tools iterate, the simulator batches.
    fn next(&mut self) -> Option<Self::Item> {
        let mut one = [MemoryAccess::read(0, 0)];
        match self.decode_batch(&mut one) {
            Ok(0) => None,
            Ok(_) => Some(Ok(one[0])),
            Err(e) => {
                // Don't re-report the same record forever.
                self.next = (self.next + 1).min(self.records);
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{BinaryTraceReader, BinaryTraceWriter};

    fn sample(n: u64) -> Vec<MemoryAccess> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    MemoryAccess::write(0x400 + i, i * 4096 + 64)
                } else {
                    MemoryAccess::read(0x400 + i, i * 4096)
                }
            })
            .collect()
    }

    fn encode(records: &[MemoryAccess]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    fn open_bytes(bytes: Vec<u8>) -> Result<MmapTrace, TraceError> {
        MmapTrace::from_map(Mmap::from_vec(bytes))
    }

    #[test]
    fn decode_batch_round_trips_all_records() {
        let records = sample(1000);
        let trace = open_bytes(encode(&records)).unwrap();
        assert_eq!(trace.record_count(), 1000);
        let mut got = Vec::new();
        let mut cursor = trace.cursor();
        let mut buf = vec![MemoryAccess::read(0, 0); 129]; // not a divisor of 1000
        loop {
            let n = cursor.decode_batch(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, records);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn mmap_agrees_with_the_bufreader_decoder() {
        let bytes = encode(&sample(257));
        let via_reader: Vec<MemoryAccess> = BinaryTraceReader::open(bytes.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let via_mmap: Vec<MemoryAccess> = open_bytes(bytes)
            .unwrap()
            .cursor()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(via_mmap, via_reader);
    }

    #[test]
    fn empty_trace_is_valid_and_yields_nothing() {
        let trace = open_bytes(encode(&[])).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.cursor().count(), 0);
        let mut buf = [MemoryAccess::read(0, 0); 4];
        assert_eq!(trace.cursor().decode_batch(&mut buf).unwrap(), 0);
    }

    #[test]
    fn header_and_body_are_validated_once_at_open() {
        assert!(matches!(
            open_bytes(b"TLB".to_vec()),
            Err(TraceError::TruncatedHeader { len: 3 })
        ));
        assert!(matches!(
            open_bytes(b"NOPE\x01\x00\x00\x00".to_vec()),
            Err(TraceError::BadMagic { .. })
        ));
        let mut wrong_version = Vec::new();
        wrong_version.extend_from_slice(&MAGIC);
        wrong_version.extend_from_slice(&7u16.to_le_bytes());
        wrong_version.extend_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            open_bytes(wrong_version),
            Err(TraceError::UnsupportedVersion { found: 7 })
        ));
        let mut torn = encode(&sample(3));
        torn.truncate(torn.len() - 5);
        assert!(matches!(open_bytes(torn), Err(TraceError::TruncatedRecord)));
    }

    #[test]
    fn invalid_kind_byte_is_reported_at_its_record() {
        let mut bytes = encode(&sample(10));
        let offset = HEADER_BYTES + 4 * RECORD_BYTES + 16;
        bytes[offset] = 9;
        let trace = open_bytes(bytes).unwrap();
        let mut cursor = trace.cursor();
        let mut buf = [MemoryAccess::read(0, 0); 32];
        let err = cursor.decode_batch(&mut buf).unwrap_err();
        assert!(matches!(err, TraceError::InvalidKind { found: 9 }));
        assert_eq!(cursor.position(), 4);
        assert!(trace.validate_records().is_err());
    }

    #[test]
    fn skip_records_is_exact_and_clamped() {
        let records = sample(100);
        let trace = open_bytes(encode(&records)).unwrap();
        let mut cursor = trace.cursor();
        assert_eq!(cursor.skip_records(40), 40);
        let tail: Vec<MemoryAccess> = cursor.clone().map(|r| r.unwrap()).collect();
        assert_eq!(tail, records[40..]);
        assert_eq!(cursor.skip_records(1000), 60);
        assert_eq!(cursor.skip_records(1), 0);
        cursor.seek(99);
        assert_eq!(cursor.remaining(), 1);
        cursor.seek(10_000);
        assert_eq!(cursor.position(), 100);
    }

    #[test]
    fn independent_cursors_share_one_mapping() {
        let records = sample(64);
        let trace = open_bytes(encode(&records)).unwrap();
        let mut a = trace.cursor();
        let mut b = trace.cursor();
        b.skip_records(32);
        let from_a: Vec<MemoryAccess> = a.by_ref().map(|r| r.unwrap()).collect();
        let from_b: Vec<MemoryAccess> = b.map(|r| r.unwrap()).collect();
        assert_eq!(from_a, records);
        assert_eq!(from_b, records[32..]);
    }

    #[test]
    fn open_maps_a_real_file() {
        let path = std::env::temp_dir().join(format!("tlbt-open-{}", std::process::id()));
        let records = sample(50);
        std::fs::write(&path, encode(&records)).unwrap();
        let trace = MmapTrace::open(&path).unwrap();
        assert_eq!(trace.record_count(), 50);
        assert_eq!(trace.byte_len(), 8 + 50 * 17);
        assert!(trace.backend() == "mmap" || trace.backend() == "read");
        assert!(trace.validate_records().is_ok());
        let got: Vec<MemoryAccess> = trace.cursor().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_decode_buffer_panics() {
        let trace = open_bytes(encode(&sample(1))).unwrap();
        let _ = trace.cursor().decode_batch(&mut []);
    }

    fn open_quarantine(bytes: Vec<u8>, max_bad: u64) -> MmapTrace {
        MmapTrace::from_map_with_policy(Mmap::from_vec(bytes), DecodePolicy::quarantine(max_bad))
            .unwrap()
    }

    #[test]
    fn quarantine_cursor_skips_bad_records_and_tallies_health() {
        let records = sample(100);
        let mut bytes = encode(&records);
        for bad in [5usize, 50, 99] {
            bytes[HEADER_BYTES + bad * RECORD_BYTES + 16] = 0xEE;
        }
        let trace = open_quarantine(bytes, 10);
        let mut cursor = trace.cursor();
        let mut got = Vec::new();
        let mut buf = vec![MemoryAccess::read(0, 0); 33];
        loop {
            let n = cursor.decode_batch(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        let want: Vec<MemoryAccess> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| ![5usize, 50, 99].contains(i))
            .map(|(_, r)| *r)
            .collect();
        assert_eq!(got, want);
        let health = cursor.health();
        assert_eq!(health.records_ok, 97);
        assert_eq!(health.records_bad, 3);
        assert_eq!(health.first_bad_record, Some(5));
        assert_eq!(health.torn_tail_bytes, 0);
        // scan_health agrees with a manual drain.
        assert_eq!(trace.scan_health().unwrap(), health);
    }

    #[test]
    fn quarantine_accepts_a_torn_tail_strict_rejects_it() {
        let mut torn = encode(&sample(10));
        torn.truncate(torn.len() - 4);
        assert!(matches!(
            open_bytes(torn.clone()),
            Err(TraceError::TruncatedRecord)
        ));
        let trace = open_quarantine(torn, 0);
        assert_eq!(trace.record_count(), 9);
        assert_eq!(trace.torn_tail_bytes(), 13);
        let health = trace.scan_health().unwrap();
        assert_eq!(health.records_ok, 9);
        assert_eq!(health.torn_tail_bytes, 13);
        assert!(!health.is_clean());
    }

    #[test]
    fn quarantine_budget_aborts_the_scan() {
        let mut bytes = encode(&sample(20));
        for bad in 0..5usize {
            bytes[HEADER_BYTES + bad * 3 * RECORD_BYTES + 16] = 7;
        }
        let trace = open_quarantine(bytes, 2);
        assert!(matches!(
            trace.scan_health(),
            Err(TraceError::QuarantineExceeded { bad: 3, max_bad: 2 })
        ));
    }

    #[test]
    fn quarantine_skip_counts_only_good_records() {
        let records = sample(50);
        let mut bytes = encode(&records);
        // Corrupt records 2 and 4: skipping 10 good records must land
        // the cursor on raw grid cell 12.
        for bad in [2usize, 4] {
            bytes[HEADER_BYTES + bad * RECORD_BYTES + 16] = 0xEE;
        }
        let trace = open_quarantine(bytes, 10);
        let mut cursor = trace.cursor();
        assert_eq!(cursor.skip_records(10), 10);
        assert_eq!(cursor.position(), 12);
        let tail: Vec<MemoryAccess> = cursor.clone().map(|r| r.unwrap()).collect();
        assert_eq!(tail, records[12..]);
        // Skip-then-decode matches decode-from-scratch (seek contract).
        let mut fresh = trace.cursor();
        let mut all = Vec::new();
        let mut buf = vec![MemoryAccess::read(0, 0); 16];
        loop {
            let n = fresh.decode_batch(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            all.extend_from_slice(&buf[..n]);
        }
        assert_eq!(tail, all[10..]);
        // Health counted the two bad cells the skip walked over.
        assert_eq!(cursor.health().records_bad, 2);
    }

    #[test]
    fn clean_trace_decodes_identically_under_both_policies() {
        let records = sample(333);
        let bytes = encode(&records);
        let strict: Vec<MemoryAccess> = open_bytes(bytes.clone())
            .unwrap()
            .cursor()
            .map(|r| r.unwrap())
            .collect();
        let trace = open_quarantine(bytes, 0);
        let lenient: Vec<MemoryAccess> = trace.cursor().map(|r| r.unwrap()).collect();
        assert_eq!(strict, lenient);
        assert_eq!(strict, records);
        let health = trace.scan_health().unwrap();
        assert!(health.is_clean());
        assert_eq!(health.records_ok, 333);
    }
}
