//! The TLBT **v2** block-compressed trace format: writer, validated
//! trace handle, and cursors (whole-file and windowed streaming).
//!
//! v2 keeps v1's 8-byte header (version = 2) and replaces the flat
//! 17-byte record grid with delta-compressed blocks plus a trailing
//! block index and footer — the byte layout lives in [`crate::block`]
//! and, normatively, in `docs/TRACE_FORMAT.md`. What this buys:
//!
//! * **~3-4x smaller corpora** (typically ~4-5 bytes/record instead of
//!   17) while staying seekable: any record number resolves to its
//!   block through the index in O(1) and costs at most one block of
//!   delta decoding to reach — so the sharded executor still cuts a
//!   trace into worker slices without scanning, provided cuts land on
//!   block boundaries (`ShardPlan::split_aligned` in `tlbsim-sim`).
//! * **Larger-than-RAM replay**: [`V2TraceCursor::open_streaming`]
//!   keeps one `File` open and maps a sliding window of N blocks
//!   through `Mmap::map_file_range`, advising the kernel of sequential
//!   readahead — the only allocations on the replay path are the
//!   window remaps themselves.
//! * **Block-granular quarantine**: damage inside a block is detected
//!   by a validate-before-emit pass, and the whole block is skipped
//!   and tallied ([`TraceHealth::blocks_bad`]) — delta chains make
//!   sub-block resync impossible, so the block is the quarantine unit.
//!   The index and footer are load-bearing under *every* policy: if
//!   they do not validate, the error is
//!   [`TraceError::TornIndex`], never a quarantine. A v2 file
//!   truncated at the tail therefore loses its footer and is rejected
//!   outright — the salvageable torn tail is a v1-only notion.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use ::mmap::{Advice, Mmap};
use tlbsim_core::MemoryAccess;

use crate::binary::{HEADER_BYTES, MAGIC};
use crate::block::{
    self, BlockFault, DecodeState, Footer, DEFAULT_BLOCK_LEN, FOOTER_BYTES, INDEX_ENTRY_BYTES,
    RESTART_BYTES, V2_VERSION,
};
use crate::error::TraceError;
use crate::fault::{wild_vaddr, FaultKind, PlannedFault};
use crate::policy::{DecodePolicy, TraceHealth};

/// Streaming writer for the v2 block-compressed format.
///
/// Records accumulate into blocks of [`V2TraceWriter::block_len`]
/// records (a restart record plus deltas); [`V2TraceWriter::finish`]
/// flushes the final partial block and appends the block index and
/// footer.
///
/// # Examples
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_trace::{V2Trace, V2TraceWriter};
///
/// let mut buf = Vec::new();
/// let mut w = V2TraceWriter::create_with_block_len(&mut buf, 64)?;
/// for i in 0..1000u64 {
///     w.write(&MemoryAccess::read(0x400, i * 4096))?;
/// }
/// w.finish()?;
///
/// let trace = V2Trace::from_map(mmap::Mmap::from_vec(buf))?;
/// assert_eq!(trace.record_count(), 1000);
/// assert_eq!(trace.block_count(), 16);
/// # Ok::<(), tlbsim_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct V2TraceWriter<W: Write> {
    out: BufWriter<W>,
    block_len: u32,
    written: u64,
    block_buf: Vec<u8>,
    in_block: u32,
    prev_pc: u64,
    prev_vaddr: u64,
    /// Absolute file offset of each flushed block.
    offsets: Vec<u64>,
    cur_offset: u64,
}

impl<W: Write> V2TraceWriter<W> {
    /// Creates a writer with the default block length
    /// ([`DEFAULT_BLOCK_LEN`]) and emits the v2 header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the header cannot be written.
    pub fn create(out: W) -> Result<Self, TraceError> {
        Self::create_with_block_len(out, DEFAULT_BLOCK_LEN)
    }

    /// Creates a writer with an explicit records-per-block count.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the header cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if `block_len` is zero — a configuration bug, not a
    /// runtime input (the CLI validates its `--block-len` flag).
    pub fn create_with_block_len(out: W, block_len: u32) -> Result<Self, TraceError> {
        assert!(block_len >= 1, "v2 blocks must hold at least one record");
        let mut w = BufWriter::new(out);
        w.write_all(&MAGIC)?;
        w.write_all(&V2_VERSION.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?;
        Ok(V2TraceWriter {
            out: w,
            block_len,
            written: 0,
            block_buf: Vec::new(),
            in_block: 0,
            prev_pc: 0,
            prev_vaddr: 0,
            offsets: Vec::new(),
            cur_offset: HEADER_BYTES as u64,
        })
    }

    /// Appends one record (block-buffered; at most one block is held in
    /// memory).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn write(&mut self, access: &MemoryAccess) -> Result<(), TraceError> {
        if self.in_block == 0 {
            block::encode_restart(&mut self.block_buf, access);
        } else {
            block::encode_delta(&mut self.block_buf, self.prev_pc, self.prev_vaddr, access);
        }
        self.prev_pc = access.pc.raw();
        self.prev_vaddr = access.vaddr.raw();
        self.in_block += 1;
        self.written += 1;
        if self.in_block == self.block_len {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), TraceError> {
        self.out.write_all(&self.block_buf)?;
        self.offsets.push(self.cur_offset);
        self.cur_offset += self.block_buf.len() as u64;
        self.block_buf.clear();
        self.in_block = 0;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Records per block this writer packs (the final block may hold
    /// fewer).
    pub fn block_len(&self) -> u32 {
        self.block_len
    }

    /// Flushes the final partial block, writes the block index and
    /// footer, and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if any trailing write or the flush
    /// fails.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if self.in_block > 0 {
            self.flush_block()?;
        }
        let index_offset = self.cur_offset;
        for (i, offset) in self.offsets.iter().enumerate() {
            self.out.write_all(&offset.to_le_bytes())?;
            self.out
                .write_all(&(i as u64 * u64::from(self.block_len)).to_le_bytes())?;
        }
        let footer = Footer {
            index_offset,
            total_records: self.written,
            block_len: self.block_len,
            block_count: u32::try_from(self.offsets.len()).map_err(|_| {
                TraceError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "trace exceeds 2^32 blocks",
                ))
            })?,
        };
        self.out.write_all(&footer.encode())?;
        self.out
            .into_inner()
            .map_err(|e| TraceError::Io(io::Error::other(e.to_string())))
    }
}

/// Validated layout facts shared by every v2 reader.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Records per block (≥ 1 whenever `total` > 0).
    block_len: u64,
    /// Records in the trace.
    total: u64,
    /// Blocks (= index entries).
    block_count: u64,
    /// Absolute byte offset of the block index.
    index_offset: u64,
}

/// Checks the header bytes of a v2 file (magic + version).
fn check_header(bytes: &[u8]) -> Result<(), TraceError> {
    if bytes.len() < HEADER_BYTES {
        return Err(TraceError::TruncatedHeader {
            len: bytes.len() as u64,
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(TraceError::BadMagic {
            found: [bytes[0], bytes[1], bytes[2], bytes[3]],
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != V2_VERSION {
        return Err(TraceError::UnsupportedVersion { found: version });
    }
    Ok(())
}

/// Validates footer arithmetic and the block index against the file
/// size. Any inconsistency is [`TraceError::TornIndex`] — fatal under
/// every policy, because without a trustworthy index there is no block
/// grid to quarantine on.
fn validate_layout(
    file_len: u64,
    footer: &Footer,
    entry: impl Fn(u64) -> (u64, u64),
) -> Result<Meta, TraceError> {
    let torn = |detail: &'static str| TraceError::TornIndex { detail };
    if footer.block_len == 0 && footer.total_records != 0 {
        return Err(torn("zero block length with nonzero record count"));
    }
    let expected_blocks = if footer.total_records == 0 {
        0
    } else {
        footer.total_records.div_ceil(u64::from(footer.block_len))
    };
    if u64::from(footer.block_count) != expected_blocks {
        return Err(torn("block count disagrees with record count"));
    }
    if footer.index_offset < HEADER_BYTES as u64 {
        return Err(torn("index offset inside the header"));
    }
    let index_bytes = u64::from(footer.block_count) * INDEX_ENTRY_BYTES as u64;
    if footer
        .index_offset
        .checked_add(index_bytes)
        .and_then(|v| v.checked_add(FOOTER_BYTES as u64))
        != Some(file_len)
    {
        return Err(torn("index extent disagrees with file size"));
    }
    let mut prev_offset = HEADER_BYTES as u64;
    for i in 0..u64::from(footer.block_count) {
        let (offset, first) = entry(i);
        if i == 0 && offset != HEADER_BYTES as u64 {
            return Err(torn("first block does not start after the header"));
        }
        if offset < prev_offset {
            return Err(torn("index offsets are not monotone"));
        }
        if offset > footer.index_offset {
            return Err(torn("block offset beyond the index"));
        }
        if i.checked_mul(u64::from(footer.block_len)) != Some(first) {
            return Err(torn("index record numbering is inconsistent"));
        }
        prev_offset = offset;
    }
    Ok(Meta {
        block_len: u64::from(footer.block_len),
        total: footer.total_records,
        block_count: u64::from(footer.block_count),
        index_offset: footer.index_offset,
    })
}

/// A validated, memory-mapped v2 (block-compressed) trace.
///
/// The header, footer and block index are validated **once** at open;
/// block payloads are validated lazily as cursors decode them (strict:
/// typed error at the damaged block; quarantine: the block is skipped
/// whole and tallied).
///
/// # Examples
///
/// ```
/// use tlbsim_core::MemoryAccess;
/// use tlbsim_trace::{V2Trace, V2TraceWriter};
///
/// let mut buf = Vec::new();
/// let mut w = V2TraceWriter::create_with_block_len(&mut buf, 32)?;
/// for i in 0..100u64 {
///     w.write(&MemoryAccess::read(0x400, i * 4096))?;
/// }
/// w.finish()?;
///
/// let trace = V2Trace::from_map(mmap::Mmap::from_vec(buf))?;
/// let mut cursor = trace.cursor();
/// let mut batch = vec![MemoryAccess::read(0, 0); 64];
/// assert_eq!(cursor.decode_batch(&mut batch)?, 64);
/// assert_eq!(cursor.decode_batch(&mut batch)?, 36);
/// assert_eq!(cursor.decode_batch(&mut batch)?, 0);
/// # Ok::<(), tlbsim_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct V2Trace {
    map: Arc<Mmap>,
    meta: Meta,
    policy: DecodePolicy,
}

impl V2Trace {
    /// Maps and validates a v2 trace file (header, footer, index).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be opened;
    /// [`TraceError::TruncatedHeader`] / [`TraceError::BadMagic`] /
    /// [`TraceError::UnsupportedVersion`] for a malformed header (a v1
    /// file reports `UnsupportedVersion { found: 1 }` here — use the
    /// version sniffing in `tlbsim-workloads` to dispatch);
    /// [`TraceError::TornIndex`] if the footer or block index is
    /// missing or inconsistent (truncation at the tail lands here).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::from_map(Mmap::open(path)?)
    }

    /// Maps a v2 trace under an explicit [`DecodePolicy`].
    ///
    /// Layout validation (header, footer, index) is policy-independent;
    /// the policy governs block payloads, which cursors decode — see
    /// [`V2TraceCursor::decode_batch`].
    ///
    /// # Errors
    ///
    /// As for [`V2Trace::open`].
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        policy: DecodePolicy,
    ) -> Result<Self, TraceError> {
        Self::from_map_with_policy(Mmap::open(path)?, policy)
    }

    /// Validates an already-obtained mapping (or in-memory buffer via
    /// `Mmap::from_vec`).
    ///
    /// # Errors
    ///
    /// As for [`V2Trace::open`], minus the I/O.
    pub fn from_map(map: Mmap) -> Result<Self, TraceError> {
        Self::from_map_with_policy(map, DecodePolicy::Strict)
    }

    /// [`V2Trace::from_map`] under an explicit policy.
    ///
    /// # Errors
    ///
    /// As for [`V2Trace::open`].
    pub fn from_map_with_policy(map: Mmap, policy: DecodePolicy) -> Result<Self, TraceError> {
        let bytes = map.as_bytes();
        check_header(bytes)?;
        if bytes.len() < HEADER_BYTES + FOOTER_BYTES {
            return Err(TraceError::TornIndex {
                detail: "file too short for a footer",
            });
        }
        let footer =
            Footer::parse(&bytes[bytes.len() - FOOTER_BYTES..]).ok_or(TraceError::TornIndex {
                detail: "footer magic missing",
            })?;
        // The index extent is validated before any entry is read, so
        // the entry accessor below never slices out of bounds.
        let file_len = bytes.len() as u64;
        let index_bytes = u64::from(footer.block_count) * INDEX_ENTRY_BYTES as u64;
        if footer
            .index_offset
            .checked_add(index_bytes)
            .and_then(|v| v.checked_add(FOOTER_BYTES as u64))
            != Some(file_len)
        {
            return Err(TraceError::TornIndex {
                detail: "index extent disagrees with file size",
            });
        }
        let index =
            &bytes[footer.index_offset as usize..(footer.index_offset + index_bytes) as usize];
        let meta = validate_layout(file_len, &footer, |i| block::index_entry(index, i))?;
        Ok(V2Trace {
            map: Arc::new(map),
            meta,
            policy,
        })
    }

    /// Number of records in the trace.
    pub fn record_count(&self) -> u64 {
        self.meta.total
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.meta.total == 0
    }

    /// Bytes occupied by the mapped file.
    pub fn byte_len(&self) -> u64 {
        self.map.as_bytes().len() as u64
    }

    /// Records per block (the final block may hold fewer). Zero only
    /// for a malformed-but-empty edge the validator rejects; callers
    /// may treat it as ≥ 1.
    pub fn block_len(&self) -> u64 {
        self.meta.block_len
    }

    /// Number of blocks (= index entries).
    pub fn block_count(&self) -> u64 {
        self.meta.block_count
    }

    /// Which backend serves the bytes (`"mmap"` or the `"read"`
    /// fallback).
    pub fn backend(&self) -> &'static str {
        self.map.backend().label()
    }

    /// The decode policy this trace was opened under (inherited by its
    /// cursors).
    pub fn policy(&self) -> DecodePolicy {
        self.policy
    }

    /// A fresh cursor positioned at record 0, decoding under the
    /// trace's own policy.
    pub fn cursor(&self) -> V2TraceCursor {
        self.cursor_with_policy(self.policy)
    }

    /// A fresh cursor decoding under an explicit policy.
    pub fn cursor_with_policy(&self, policy: DecodePolicy) -> V2TraceCursor {
        V2TraceCursor {
            blocks: BlockSource::Whole {
                map: Arc::clone(&self.map),
                index_offset: self.meta.index_offset,
                block_count: self.meta.block_count,
            },
            block_len: self.meta.block_len.max(1),
            total: self.meta.total,
            policy,
            next: 0,
            ok_seen: 0,
            bad_seen: 0,
            blocks_bad: 0,
            first_bad: None,
            state: DecodeState::none(),
        }
    }

    /// Decodes every block once, strictly, so a subsequent strict
    /// replay cannot fail mid-stream; doubles as page-cache warm-up.
    ///
    /// # Errors
    ///
    /// The first block's typed damage error
    /// ([`TraceError::TornRestart`], [`TraceError::TornBlock`] or
    /// [`TraceError::InvalidKind`]).
    pub fn validate_records(&self) -> Result<(), TraceError> {
        let mut cursor = self.cursor_with_policy(DecodePolicy::Strict);
        let mut buf = [MemoryAccess::read(0, 0); 512];
        while cursor.decode_batch(&mut buf)? != 0 {}
        Ok(())
    }

    /// Decodes every block once under the trace's policy, returning the
    /// full [`TraceHealth`] report (block-granular under quarantine).
    ///
    /// # Errors
    ///
    /// Strict: the first block's typed damage error. Quarantine:
    /// [`TraceError::QuarantineExceeded`] once the per-record tally of
    /// quarantined blocks passes the policy's `max_bad`.
    pub fn scan_health(&self) -> Result<TraceHealth, TraceError> {
        let mut cursor = self.cursor();
        let mut buf = [MemoryAccess::read(0, 0); 512];
        while cursor.decode_batch(&mut buf)? != 0 {}
        Ok(cursor.health())
    }
}

/// Where a cursor gets block bytes from: the whole mapped file, or a
/// sliding window remapped over an open file.
enum BlockSource {
    /// The whole file is mapped; block extents come from the in-file
    /// index.
    Whole {
        map: Arc<Mmap>,
        index_offset: u64,
        block_count: u64,
    },
    /// A window of blocks is mapped at a time; the index was read into
    /// memory at open (`offsets[i]` = block `i`'s byte offset, with a
    /// final sentinel at the index offset, so `offsets[i + 1]` always
    /// ends block `i`).
    Windowed {
        file: File,
        offsets: Vec<u64>,
        window: Mmap,
        window_first: u64,
        window_count: u64,
        window_blocks: u64,
    },
}

impl std::fmt::Debug for BlockSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockSource::Whole { block_count, .. } => f
                .debug_struct("Whole")
                .field("block_count", block_count)
                .finish(),
            BlockSource::Windowed {
                window_first,
                window_count,
                window_blocks,
                ..
            } => f
                .debug_struct("Windowed")
                .field("window_first", window_first)
                .field("window_count", window_count)
                .field("window_blocks", window_blocks)
                .finish(),
        }
    }
}

impl BlockSource {
    /// The bytes of block `block`, remapping the window if needed.
    fn bytes(&mut self, block: u64) -> Result<&[u8], TraceError> {
        match self {
            BlockSource::Whole {
                map,
                index_offset,
                block_count,
            } => {
                let all = map.as_bytes();
                let index = &all[*index_offset as usize
                    ..(*index_offset + *block_count * INDEX_ENTRY_BYTES as u64) as usize];
                let (start, _) = block::index_entry(index, block);
                let end = if block + 1 < *block_count {
                    block::index_entry(index, block + 1).0
                } else {
                    *index_offset
                };
                Ok(&all[start as usize..end as usize])
            }
            BlockSource::Windowed {
                file,
                offsets,
                window,
                window_first,
                window_count,
                window_blocks,
            } => {
                let in_window = block >= *window_first && block < *window_first + *window_count;
                if !in_window {
                    let block_count = offsets.len() as u64 - 1;
                    let count = (*window_blocks).min(block_count - block);
                    let start = offsets[block as usize];
                    let end = offsets[(block + count) as usize];
                    let map = Mmap::map_file_range(file, start, (end - start) as usize)?;
                    // Replay is overwhelmingly forward-sequential; tell
                    // the kernel so it reads ahead of the cursor and
                    // drops pages behind it.
                    map.advise(Advice::Sequential);
                    map.advise(Advice::WillNeed);
                    *window = map;
                    *window_first = block;
                    *window_count = count;
                }
                let base = offsets[*window_first as usize];
                let start = (offsets[block as usize] - base) as usize;
                let end = (offsets[block as usize + 1] - base) as usize;
                Ok(&window.as_bytes()[start..end])
            }
        }
    }

    /// Which backend serves the bytes right now.
    fn backend(&self) -> &'static str {
        match self {
            BlockSource::Whole { map, .. } => map.backend().label(),
            BlockSource::Windowed { window, .. } => window.backend().label(),
        }
    }
}

/// Maps a [`BlockFault`] to its typed, block-addressed error.
fn fault_error(fault: BlockFault, block: u64) -> TraceError {
    match fault {
        BlockFault::Restart => TraceError::TornRestart { block },
        BlockFault::Payload => TraceError::TornBlock { block },
        BlockFault::BadKind(found) => TraceError::InvalidKind { found },
    }
}

/// An independent read position over a v2 trace — the block-format
/// counterpart of [`crate::MmapTraceCursor`], with the same
/// `decode_batch` / `skip_records` / `seek` contract the simulator's
/// replay seam consumes.
///
/// Obtained from [`V2Trace::cursor`] (whole-file mapping) or
/// [`V2TraceCursor::open_streaming`] (sliding mapped window over an
/// open file, for corpora larger than RAM). Steady-state decode into a
/// caller-owned batch buffer performs **zero heap allocations**; in
/// streaming mode the window remaps are the only allocation site.
#[derive(Debug)]
pub struct V2TraceCursor {
    blocks: BlockSource,
    block_len: u64,
    total: u64,
    policy: DecodePolicy,
    /// Absolute record index (on the raw grid, counting quarantined
    /// records) of the next record to yield.
    next: u64,
    ok_seen: u64,
    bad_seen: u64,
    blocks_bad: u64,
    first_bad: Option<u64>,
    state: DecodeState,
}

impl V2TraceCursor {
    /// Opens a **streaming** cursor over a v2 trace file: the footer
    /// and block index are read and validated up front (the index is
    /// held in memory — 16 bytes per block), and block payloads are
    /// consumed through a sliding mapped window of `window_blocks`
    /// blocks, remapped forward as the cursor advances. Nothing close
    /// to the whole file is ever resident, so corpora larger than RAM
    /// replay in bounded memory.
    ///
    /// `window_blocks` is clamped to at least 1. Each remap advises the
    /// kernel of sequential readahead.
    ///
    /// # Errors
    ///
    /// As for [`V2Trace::open`]; additionally [`TraceError::Io`] for
    /// read failures while loading the footer and index.
    pub fn open_streaming(
        path: impl AsRef<Path>,
        policy: DecodePolicy,
        window_blocks: u64,
    ) -> Result<Self, TraceError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata().map_err(TraceError::Io)?.len();
        let mut header = [0u8; HEADER_BYTES];
        let took = file.read(&mut header)?;
        check_header(&header[..took])?;
        if file_len < (HEADER_BYTES + FOOTER_BYTES) as u64 {
            return Err(TraceError::TornIndex {
                detail: "file too short for a footer",
            });
        }
        file.seek(SeekFrom::End(-(FOOTER_BYTES as i64)))?;
        let mut tail = [0u8; FOOTER_BYTES];
        file.read_exact(&mut tail)?;
        let footer = Footer::parse(&tail).ok_or(TraceError::TornIndex {
            detail: "footer magic missing",
        })?;
        let index_bytes = u64::from(footer.block_count) * INDEX_ENTRY_BYTES as u64;
        if footer
            .index_offset
            .checked_add(index_bytes)
            .and_then(|v| v.checked_add(FOOTER_BYTES as u64))
            != Some(file_len)
        {
            return Err(TraceError::TornIndex {
                detail: "index extent disagrees with file size",
            });
        }
        file.seek(SeekFrom::Start(footer.index_offset))?;
        let mut index = vec![0u8; index_bytes as usize];
        file.read_exact(&mut index)?;
        let meta = validate_layout(file_len, &footer, |i| block::index_entry(&index, i))?;
        let mut offsets: Vec<u64> = (0..meta.block_count)
            .map(|i| block::index_entry(&index, i).0)
            .collect();
        offsets.push(meta.index_offset);
        Ok(V2TraceCursor {
            blocks: BlockSource::Windowed {
                file,
                offsets,
                window: Mmap::from_vec(Vec::new()),
                window_first: 0,
                window_count: 0,
                window_blocks: window_blocks.max(1),
            },
            block_len: meta.block_len.max(1),
            total: meta.total,
            policy,
            next: 0,
            ok_seen: 0,
            bad_seen: 0,
            blocks_bad: 0,
            first_bad: None,
            state: DecodeState::none(),
        })
    }

    /// Number of records in the trace this cursor walks.
    pub fn record_count(&self) -> u64 {
        self.total
    }

    /// Records per block of the underlying trace.
    pub fn block_len(&self) -> u64 {
        self.block_len
    }

    /// Which backend currently serves the bytes (for a streaming
    /// cursor, the current window's).
    pub fn backend(&self) -> &'static str {
        self.blocks.backend()
    }

    /// Fills `buf` with the next records, returning how many were
    /// written; zero means the trace is exhausted. Same contract as
    /// [`crate::MmapTraceCursor::decode_batch`], including the panic on
    /// an empty buffer.
    ///
    /// # Errors
    ///
    /// Strict policy: the damaged block's typed error
    /// ([`TraceError::TornRestart`] / [`TraceError::TornBlock`] /
    /// [`TraceError::InvalidKind`]), with the cursor left at the record
    /// where decoding stopped. Quarantine policy: a damaged block is
    /// validated before any of it is emitted, then skipped **whole**
    /// and tallied (the block is the resync unit — delta chains cannot
    /// be re-entered mid-block); [`TraceError::QuarantineExceeded`]
    /// once the per-record tally passes the policy's `max_bad`.
    /// Streaming cursors can also surface [`TraceError::Io`] from a
    /// window remap.
    ///
    /// # Panics
    ///
    /// Panics on an empty `buf` — a zero-length fill would be
    /// indistinguishable from end of trace.
    pub fn decode_batch(&mut self, buf: &mut [MemoryAccess]) -> Result<usize, TraceError> {
        assert!(
            !buf.is_empty(),
            "decode_batch requires a non-empty batch buffer"
        );
        // A blown budget is terminal, as for the v1 cursor.
        if let DecodePolicy::Quarantine { max_bad } = self.policy {
            if self.bad_seen > max_bad {
                return Ok(0);
            }
        }
        let mut filled = 0usize;
        while filled < buf.len() && self.next < self.total {
            let block = self.next / self.block_len;
            let block_first = block * self.block_len;
            let block_records = self.block_len.min(self.total - block_first);
            let target = self.next - block_first;
            self.resync_state(block, target);
            let bytes = self.blocks.bytes(block)?;
            if let DecodePolicy::Quarantine { max_bad } = self.policy {
                if !self.state.checked {
                    if block::validate(bytes, block_records).is_err() {
                        if self.first_bad.is_none() {
                            self.first_bad = Some(block_first);
                        }
                        self.bad_seen += block_records;
                        self.blocks_bad += 1;
                        self.next = block_first + block_records;
                        self.state = DecodeState::none();
                        if self.bad_seen > max_bad {
                            return Err(TraceError::QuarantineExceeded {
                                bad: self.bad_seen,
                                max_bad,
                            });
                        }
                        continue;
                    }
                    self.state.checked = true;
                }
            }
            // Fast-forward to the intra-block position (only after a
            // seek; bounded by one block of deltas).
            while self.state.emitted < target {
                block::next_record(bytes, &mut self.state)
                    .map_err(|fault| fault_error(fault, block))?;
            }
            while filled < buf.len() && self.state.emitted < block_records {
                buf[filled] = block::next_record(bytes, &mut self.state)
                    .map_err(|fault| fault_error(fault, block))?;
                filled += 1;
                self.next += 1;
                self.ok_seen += 1;
            }
            // A completed block must consume its extent exactly; spare
            // bytes mean the payload (or the index) lied.
            if self.state.emitted == block_records && self.state.pos != bytes.len() {
                return Err(TraceError::TornBlock { block });
            }
        }
        Ok(filled)
    }

    /// Aligns the cached decode state with (`block`, records already
    /// consumed in it). Backward intra-block moves restart the block's
    /// delta chain; the validation flag survives (block bytes are
    /// immutable).
    fn resync_state(&mut self, block: u64, target: u64) {
        if self.state.block != block {
            self.state = DecodeState::at(block);
        } else if self.state.emitted > target {
            let checked = self.state.checked;
            self.state = DecodeState::at(block);
            self.state.checked = checked;
        }
    }

    /// Advances past the next `n` *decodable* records, returning how
    /// many were actually skipped. Same contract as
    /// [`crate::MmapTraceCursor::skip_records`]: strict skips are pure
    /// arithmetic (delta decoding to reach the mid-block position is
    /// deferred to the next `decode_batch`); quarantine skips validate
    /// the blocks they traverse and tally damaged ones exactly as a
    /// decode would, without enforcing the budget (the next decode
    /// reports it).
    pub fn skip_records(&mut self, n: u64) -> u64 {
        match self.policy {
            DecodePolicy::Strict => {
                let skipped = n.min(self.total - self.next);
                self.next += skipped;
                skipped
            }
            DecodePolicy::Quarantine { .. } => {
                let mut skipped = 0u64;
                while skipped < n && self.next < self.total {
                    let block = self.next / self.block_len;
                    let block_first = block * self.block_len;
                    let block_records = self.block_len.min(self.total - block_first);
                    let target = self.next - block_first;
                    self.resync_state(block, target);
                    let Ok(bytes) = self.blocks.bytes(block) else {
                        // A streaming remap failure cannot be reported
                        // from the infallible skip contract; stop here
                        // and let the next decode surface the error.
                        break;
                    };
                    if !self.state.checked {
                        if block::validate(bytes, block_records).is_err() {
                            if self.first_bad.is_none() {
                                self.first_bad = Some(block_first);
                            }
                            self.bad_seen += block_records;
                            self.blocks_bad += 1;
                            self.next = block_first + block_records;
                            self.state = DecodeState::none();
                            continue;
                        }
                        self.state.checked = true;
                    }
                    while self.state.emitted < target {
                        // Validated above: cannot fail.
                        let _ = block::next_record(bytes, &mut self.state);
                    }
                    let take = (n - skipped).min(block_records - target);
                    for _ in 0..take {
                        let _ = block::next_record(bytes, &mut self.state);
                    }
                    skipped += take;
                    self.next += take;
                    self.ok_seen += take;
                }
                skipped
            }
        }
    }

    /// Repositions the cursor at an absolute record index (clamped to
    /// the end of the trace). O(1); any delta decoding needed to reach
    /// a mid-block position happens lazily at the next decode.
    pub fn seek(&mut self, record: u64) {
        self.next = record.min(self.total);
    }

    /// The index of the next record to decode (on the raw grid — under
    /// quarantine this counts records in damaged blocks too).
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Grid records left to walk (under quarantine an upper bound on
    /// the records a decode will yield).
    pub fn remaining(&self) -> u64 {
        self.total - self.next
    }

    /// The decode policy this cursor runs under.
    pub fn policy(&self) -> DecodePolicy {
        self.policy
    }

    /// Running health tally over everything this cursor has decoded or
    /// skipped so far (complete once the cursor is exhausted). A strict
    /// cursor reports every record it passed as ok — it would have
    /// errored otherwise. v2 has no torn tail: tail truncation destroys
    /// the footer and is rejected at open under every policy.
    pub fn health(&self) -> TraceHealth {
        TraceHealth {
            records_ok: match self.policy {
                DecodePolicy::Strict => self.next,
                DecodePolicy::Quarantine { .. } => self.ok_seen,
            },
            records_bad: self.bad_seen,
            torn_tail_bytes: 0,
            first_bad_record: self.first_bad,
            blocks_bad: self.blocks_bad,
        }
    }
}

impl Iterator for V2TraceCursor {
    type Item = Result<MemoryAccess, TraceError>;

    /// One-record convenience over [`V2TraceCursor::decode_batch`];
    /// tools iterate, the simulator batches.
    fn next(&mut self) -> Option<Self::Item> {
        let mut one = [MemoryAccess::read(0, 0)];
        match self.decode_batch(&mut one) {
            Ok(0) => None,
            Ok(_) => Some(Ok(one[0])),
            Err(e) => {
                // Don't re-report the same record forever.
                self.next = (self.next + 1).min(self.total);
                Some(Err(e))
            }
        }
    }
}

/// Bakes a fault plan's byte-level faults into a v2 image in place —
/// the v2 arm of [`crate::FaultPlan::apply_to_bytes`].
///
/// Faults address *records*, exactly as on v1; each lands on the
/// **restart record of the block containing it** (the only absolute,
/// grid-addressable cell in a delta-compressed block):
/// `CorruptKind` smashes the restart's kind byte (quarantining the
/// whole block), `WildVaddr` rewrites the restart's vaddr (the block
/// still decodes; its addresses go wild). `TruncateTail` is ignored —
/// a v2 file truncated at the tail loses its footer, which is fatal
/// under every policy, so there is no quarantinable torn tail to
/// manufacture. Plans whose footer or index cannot be parsed leave the
/// image untouched.
pub(crate) fn bake_faults(bytes: &mut [u8], faults: &[PlannedFault]) {
    if bytes.len() < HEADER_BYTES + FOOTER_BYTES {
        return;
    }
    let Some(footer) = Footer::parse(&bytes[bytes.len() - FOOTER_BYTES..]) else {
        return;
    };
    let file_len = bytes.len() as u64;
    let index_bytes = u64::from(footer.block_count) * INDEX_ENTRY_BYTES as u64;
    if footer
        .index_offset
        .checked_add(index_bytes)
        .and_then(|v| v.checked_add(FOOTER_BYTES as u64))
        != Some(file_len)
        || footer.block_len == 0
    {
        return;
    }
    for fault in faults {
        if fault.record >= footer.total_records {
            continue;
        }
        let block = fault.record / u64::from(footer.block_len);
        let entry_at = (footer.index_offset + block * INDEX_ENTRY_BYTES as u64) as usize;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[entry_at..entry_at + 8]);
        let base = u64::from_le_bytes(raw) as usize;
        if base + RESTART_BYTES > bytes.len() {
            continue;
        }
        match fault.kind {
            FaultKind::CorruptKind => bytes[base + 16] = 0xEE,
            FaultKind::WildVaddr => {
                let wild = wild_vaddr(fault.record);
                bytes[base + 8..base + 16].copy_from_slice(&wild.to_le_bytes());
            }
            FaultKind::TruncateTail | FaultKind::TransientIo | FaultKind::WorkerPanic => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_core::AccessKind;

    fn sample(n: u64) -> Vec<MemoryAccess> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    MemoryAccess::write(0x400 + i, i * 4096 + 64)
                } else {
                    MemoryAccess::read(0x400 + i, i * 4096)
                }
            })
            .collect()
    }

    fn encode(records: &[MemoryAccess], block_len: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = V2TraceWriter::create_with_block_len(&mut buf, block_len).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    fn open_bytes(bytes: Vec<u8>) -> Result<V2Trace, TraceError> {
        V2Trace::from_map(Mmap::from_vec(bytes))
    }

    fn open_quarantine(bytes: Vec<u8>, max_bad: u64) -> V2Trace {
        V2Trace::from_map_with_policy(Mmap::from_vec(bytes), DecodePolicy::quarantine(max_bad))
            .unwrap()
    }

    fn drain(cursor: &mut V2TraceCursor) -> Vec<MemoryAccess> {
        let mut buf = vec![MemoryAccess::read(0, 0); 97];
        let mut got = Vec::new();
        loop {
            let n = cursor.decode_batch(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        got
    }

    #[test]
    fn round_trips_across_block_lengths() {
        let records = sample(1000);
        for block_len in [1u32, 2, 7, 64, 1000, 5000] {
            let bytes = encode(&records, block_len);
            let trace = open_bytes(bytes).unwrap();
            assert_eq!(trace.record_count(), 1000);
            assert_eq!(
                trace.block_count(),
                1000u64.div_ceil(u64::from(block_len)),
                "block_len {block_len}"
            );
            assert_eq!(drain(&mut trace.cursor()), records);
        }
    }

    #[test]
    fn compresses_well_below_v1() {
        let records = sample(10_000);
        let v2 = encode(&records, 4096);
        let v1_bytes = 8 + 17 * records.len();
        assert!(
            v2.len() * 3 < v1_bytes,
            "v2 is {} bytes vs v1 {} — expected ≥3x smaller",
            v2.len(),
            v1_bytes
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = open_bytes(encode(&[], 64)).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.block_count(), 0);
        assert_eq!(drain(&mut trace.cursor()), Vec::new());
    }

    #[test]
    fn v1_and_v2_headers_cross_reject() {
        // A v2 reader on a v1 file: typed version error (sniffable).
        let mut v1 = Vec::new();
        let mut w = crate::binary::BinaryTraceWriter::create(&mut v1).unwrap();
        w.write(&MemoryAccess::read(1, 2)).unwrap();
        w.finish().unwrap();
        assert!(matches!(
            open_bytes(v1),
            Err(TraceError::UnsupportedVersion { found: 1 })
        ));
        // And a v1 reader on a v2 file, symmetrically.
        let v2 = encode(&sample(3), 2);
        assert!(matches!(
            crate::mmap::MmapTrace::from_map(Mmap::from_vec(v2)),
            Err(TraceError::UnsupportedVersion { found: 2 })
        ));
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let bytes = encode(&sample(100), 16);
        for cut in 0..bytes.len() {
            let torn = bytes[..cut].to_vec();
            let strict = open_bytes(torn.clone());
            assert!(strict.is_err(), "cut at {cut} must not validate");
            // Truncation kills the footer, so even quarantine rejects.
            let quarantined =
                V2Trace::from_map_with_policy(Mmap::from_vec(torn), DecodePolicy::lenient());
            assert!(quarantined.is_err(), "cut at {cut} must not quarantine");
        }
    }

    #[test]
    fn seek_and_skip_agree_with_sequential_decode() {
        let records = sample(500);
        let trace = open_bytes(encode(&records, 32)).unwrap();
        let mut cursor = trace.cursor();
        assert_eq!(cursor.skip_records(123), 123);
        assert_eq!(cursor.position(), 123);
        let tail: Vec<MemoryAccess> = (&mut cursor).map(|r| r.unwrap()).collect();
        assert_eq!(tail, records[123..]);
        assert_eq!(cursor.skip_records(5), 0);
        // Backward seek, mid-block.
        cursor.seek(37);
        let tail: Vec<MemoryAccess> = (&mut cursor).map(|r| r.unwrap()).collect();
        assert_eq!(tail, records[37..]);
        cursor.seek(10_000);
        assert_eq!(cursor.position(), 500);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn smashed_restart_kind_is_invalid_kind_under_strict() {
        let records = sample(64);
        let mut bytes = encode(&records, 16);
        // Block 1's restart kind byte: restart of block 1 begins right
        // after block 0's extent; find it via the trace's own index by
        // corrupting through bake_faults (record 16 = block 1's first).
        bake_faults(
            &mut bytes,
            &[PlannedFault {
                record: 16,
                kind: FaultKind::CorruptKind,
            }],
        );
        let trace = open_bytes(bytes.clone()).unwrap();
        let mut cursor = trace.cursor();
        let mut buf = vec![MemoryAccess::read(0, 0); 256];
        let err = cursor.decode_batch(&mut buf).unwrap_err();
        assert!(matches!(err, TraceError::InvalidKind { found: 0xEE }));
        assert_eq!(cursor.position(), 16, "error reported at the bad block");
        // Quarantine: the whole block (records 16..32) is skipped.
        let trace = open_quarantine(bytes, 100);
        let mut cursor = trace.cursor();
        let got = drain(&mut cursor);
        let want: Vec<MemoryAccess> = records[..16]
            .iter()
            .chain(&records[32..])
            .copied()
            .collect();
        assert_eq!(got, want);
        let health = cursor.health();
        assert_eq!(health.records_ok, 48);
        assert_eq!(health.records_bad, 16);
        assert_eq!(health.blocks_bad, 1);
        assert_eq!(health.first_bad_record, Some(16));
    }

    #[test]
    fn quarantine_budget_aborts_and_is_then_terminal() {
        let records = sample(64);
        let mut bytes = encode(&records, 16);
        for record in [0u64, 16] {
            bake_faults(
                &mut bytes,
                &[PlannedFault {
                    record,
                    kind: FaultKind::CorruptKind,
                }],
            );
        }
        // Budget of 16: the second bad block (another 16 records) blows it.
        let trace = open_quarantine(bytes, 16);
        let mut cursor = trace.cursor();
        let mut buf = vec![MemoryAccess::read(0, 0); 8];
        let mut outcome = Vec::new();
        let err = loop {
            match cursor.decode_batch(&mut buf) {
                Ok(0) => panic!("must hit the budget first"),
                Ok(n) => outcome.extend_from_slice(&buf[..n]),
                Err(e) => break e,
            }
        };
        assert!(matches!(
            err,
            TraceError::QuarantineExceeded {
                bad: 32,
                max_bad: 16
            }
        ));
        // Terminal: the cursor now reads as exhausted.
        assert_eq!(cursor.decode_batch(&mut buf).unwrap(), 0);
        assert_eq!(cursor.health().blocks_bad, 2);
    }

    #[test]
    fn wild_vaddr_still_decodes() {
        let records = sample(64);
        let mut bytes = encode(&records, 16);
        bake_faults(
            &mut bytes,
            &[PlannedFault {
                record: 20,
                kind: FaultKind::WildVaddr,
            }],
        );
        let trace = open_bytes(bytes).unwrap();
        let got = drain(&mut trace.cursor());
        assert_eq!(got.len(), 64);
        // Record 20 lives in block 1 (records 16..32); its restart (record
        // 16) was rewritten, so that block's addresses shifted wild.
        assert_eq!(&got[..16], &records[..16]);
        assert_eq!(&got[32..], &records[32..]);
        assert_ne!(got[16].vaddr, records[16].vaddr);
        assert!(trace.validate_records().is_ok());
    }

    #[test]
    fn streaming_cursor_matches_whole_file_decode() {
        let records = sample(1111);
        let bytes = encode(&records, 32);
        let path = std::env::temp_dir().join(format!("tlbt-v2-stream-{}", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        for window_blocks in [1u64, 2, 7, 1000] {
            let mut cursor =
                V2TraceCursor::open_streaming(&path, DecodePolicy::Strict, window_blocks).unwrap();
            assert_eq!(cursor.record_count(), 1111);
            assert_eq!(cursor.block_len(), 32);
            assert_eq!(drain(&mut cursor), records, "window {window_blocks}");
            // Seek backwards across windows and replay a slice.
            cursor.seek(40);
            let mut buf = vec![MemoryAccess::read(0, 0); 10];
            assert_eq!(cursor.decode_batch(&mut buf).unwrap(), 10);
            assert_eq!(&buf[..10], &records[40..50]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_cursor_quarantines_blocks() {
        let records = sample(256);
        let mut bytes = encode(&records, 16);
        bake_faults(
            &mut bytes,
            &[PlannedFault {
                record: 100,
                kind: FaultKind::CorruptKind,
            }],
        );
        let path = std::env::temp_dir().join(format!("tlbt-v2-streamq-{}", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mut cursor = V2TraceCursor::open_streaming(&path, DecodePolicy::lenient(), 2).unwrap();
        let got = drain(&mut cursor);
        // Record 100 is in block 6 (records 96..112).
        let want: Vec<MemoryAccess> = records[..96]
            .iter()
            .chain(&records[112..])
            .copied()
            .collect();
        assert_eq!(got, want);
        assert_eq!(cursor.health().blocks_bad, 1);
        assert_eq!(cursor.health().records_bad, 16);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quarantine_skip_counts_only_good_records() {
        let records = sample(128);
        let mut bytes = encode(&records, 16);
        bake_faults(
            &mut bytes,
            &[PlannedFault {
                record: 16,
                kind: FaultKind::CorruptKind,
            }],
        );
        let trace = open_quarantine(bytes, 100);
        let mut cursor = trace.cursor();
        // Skipping 20 good records crosses the bad block (16..32): lands
        // on raw record 36.
        assert_eq!(cursor.skip_records(20), 20);
        assert_eq!(cursor.position(), 36);
        let tail = drain(&mut cursor);
        assert_eq!(tail, records[36..]);
        assert_eq!(cursor.health().records_bad, 16);
        assert_eq!(cursor.health().blocks_bad, 1);
    }

    #[test]
    fn index_damage_is_fatal_under_every_policy() {
        let bytes = encode(&sample(100), 16);
        let len = bytes.len();
        // Smash the footer magic.
        let mut bad = bytes.clone();
        bad[len - 1] ^= 0xFF;
        for policy in [DecodePolicy::Strict, DecodePolicy::lenient()] {
            assert!(matches!(
                V2Trace::from_map_with_policy(Mmap::from_vec(bad.clone()), policy),
                Err(TraceError::TornIndex { .. })
            ));
        }
        // Smash an index entry's record number.
        let mut bad = bytes.clone();
        let entry = len - FOOTER_BYTES - INDEX_ENTRY_BYTES + 8;
        bad[entry] ^= 0xFF;
        assert!(matches!(open_bytes(bad), Err(TraceError::TornIndex { .. })));
        // Declare a wrong record total.
        let mut bad = bytes.clone();
        bad[len - FOOTER_BYTES + 8] ^= 0xFF;
        assert!(matches!(open_bytes(bad), Err(TraceError::TornIndex { .. })));
    }

    #[test]
    fn strict_cursor_health_reports_progress() {
        let records = sample(100);
        let trace = open_bytes(encode(&records, 16)).unwrap();
        let mut cursor = trace.cursor();
        let got = drain(&mut cursor);
        assert_eq!(got, records);
        let health = cursor.health();
        assert!(health.is_clean());
        assert_eq!(health.records_ok, 100);
        assert_eq!(health.blocks_bad, 0);
        assert_eq!(trace.scan_health().unwrap(), health);
    }

    #[test]
    fn writer_reports_counts() {
        let mut buf = Vec::new();
        let mut w = V2TraceWriter::create(&mut buf).unwrap();
        assert_eq!(w.block_len(), DEFAULT_BLOCK_LEN);
        for r in sample(5) {
            w.write(&r).unwrap();
        }
        assert_eq!(w.records_written(), 5);
        w.finish().unwrap();
        let trace = open_bytes(buf).unwrap();
        assert_eq!(trace.record_count(), 5);
        assert_eq!(trace.block_count(), 1);
        assert_eq!(trace.policy(), DecodePolicy::Strict);
        assert!(trace.backend() == "mmap" || trace.backend() == "read");
    }

    #[test]
    fn delta_decode_handles_wrapping_and_write_kinds() {
        let records = vec![
            MemoryAccess::read(u64::MAX, 0),
            MemoryAccess::write(0, u64::MAX),
            MemoryAccess {
                pc: 5u64.into(),
                vaddr: 3u64.into(),
                kind: AccessKind::Write,
            },
        ];
        let trace = open_bytes(encode(&records, 8)).unwrap();
        assert_eq!(drain(&mut trace.cursor()), records);
    }
}
