//! Property tests: both trace codecs round-trip arbitrary records, the
//! two formats agree with each other, the mmap reader agrees with the
//! streaming reader, and malformed inputs always surface as typed
//! [`TraceError`]s — never panics or silent short reads.

use proptest::prelude::*;
use tlbsim_core::{AccessKind, MemoryAccess};
use tlbsim_trace::{
    BinaryTraceReader, BinaryTraceWriter, DecodePolicy, FaultKind, FaultPlan, MmapTrace,
    TextTraceReader, TextTraceWriter, TraceError, TraceStreamExt, V2Trace, V2TraceWriter,
    HEADER_BYTES, RECORD_BYTES,
};

fn encode(records: &[MemoryAccess]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
    for r in records {
        w.write(r).unwrap();
    }
    w.finish().unwrap();
    buf
}

/// Opens trace bytes through a real file so the proptests exercise the
/// actual mapping path (mmap on Linux, buffered elsewhere), not just
/// the in-memory wrapper.
fn open_via_file(bytes: &[u8], tag: &str) -> Result<MmapTrace, TraceError> {
    open_via_file_policy(bytes, tag, DecodePolicy::Strict)
}

fn open_via_file_policy(
    bytes: &[u8],
    tag: &str,
    policy: DecodePolicy,
) -> Result<MmapTrace, TraceError> {
    let path = std::env::temp_dir().join(format!(
        "tlbsim-proptest-{}-{tag}-{}.tlbt",
        std::process::id(),
        bytes.len()
    ));
    std::fs::write(&path, bytes).unwrap();
    let opened = MmapTrace::open_with_policy(&path, policy);
    std::fs::remove_file(&path).ok();
    opened
}

fn encode_v2(records: &[MemoryAccess], block_len: u32) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = V2TraceWriter::create_with_block_len(&mut buf, block_len).unwrap();
    for r in records {
        w.write(r).unwrap();
    }
    w.finish().unwrap();
    buf
}

fn open_v2_via_file(bytes: &[u8], tag: &str, policy: DecodePolicy) -> Result<V2Trace, TraceError> {
    let path = std::env::temp_dir().join(format!(
        "tlbsim-proptest-{}-{tag}-{}.tlbt",
        std::process::id(),
        bytes.len()
    ));
    std::fs::write(&path, bytes).unwrap();
    let opened = V2Trace::open_with_policy(&path, policy);
    std::fs::remove_file(&path).ok();
    opened
}

fn arb_access() -> impl Strategy<Value = MemoryAccess> {
    (any::<u64>(), any::<u64>(), prop::bool::ANY).prop_map(|(pc, vaddr, write)| MemoryAccess {
        pc: pc.into(),
        vaddr: vaddr.into(),
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    })
}

proptest! {
    #[test]
    fn binary_roundtrip(records in prop::collection::vec(arb_access(), 0..200)) {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let got: Vec<MemoryAccess> = BinaryTraceReader::open(buf.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(got, records);
    }

    #[test]
    fn text_roundtrip(records in prop::collection::vec(arb_access(), 0..200)) {
        let mut buf = Vec::new();
        let mut w = TextTraceWriter::create(&mut buf);
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let got: Vec<MemoryAccess> = TextTraceReader::open(buf.as_slice())
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(got, records);
    }

    #[test]
    fn formats_agree(records in prop::collection::vec(arb_access(), 0..100)) {
        let mut bin = Vec::new();
        let mut bw = BinaryTraceWriter::create(&mut bin).unwrap();
        let mut txt = Vec::new();
        let mut tw = TextTraceWriter::create(&mut txt);
        for r in &records {
            bw.write(r).unwrap();
            tw.write(r).unwrap();
        }
        bw.finish().unwrap();
        tw.finish().unwrap();
        let from_bin: Vec<MemoryAccess> = BinaryTraceReader::open(bin.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let from_txt: Vec<MemoryAccess> = TextTraceReader::open(txt.as_slice())
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(from_bin, from_txt);
    }

    #[test]
    fn mmap_roundtrip_matches_written_records(
        records in prop::collection::vec(arb_access(), 0..200),
        batch_len in 1usize..64,
    ) {
        let bytes = encode(&records);
        let trace = open_via_file(&bytes, "roundtrip").unwrap();
        prop_assert_eq!(trace.record_count(), records.len() as u64);
        let mut got = Vec::new();
        let mut cursor = trace.cursor();
        let mut buf = vec![MemoryAccess::read(0, 0); batch_len];
        loop {
            let n = cursor.decode_batch(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(got, records);
    }

    #[test]
    fn mmap_and_streaming_readers_agree(
        records in prop::collection::vec(arb_access(), 0..150),
    ) {
        let bytes = encode(&records);
        let via_mmap: Vec<MemoryAccess> = open_via_file(&bytes, "agree")
            .unwrap()
            .cursor()
            .map(|r| r.unwrap())
            .collect();
        let via_reader: Vec<MemoryAccess> = BinaryTraceReader::open(bytes.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(via_mmap, via_reader);
    }

    #[test]
    fn truncated_files_yield_typed_errors_never_panics(
        records in prop::collection::vec(arb_access(), 1..50),
        cut in 1usize..100,
    ) {
        // Cut anywhere strictly inside the encoding: inside the header
        // it must read as TruncatedHeader, on a non-record boundary as
        // TruncatedRecord, and on a record boundary as a valid shorter
        // trace — never a panic, never a silent wrong length.
        let bytes = encode(&records);
        let cut = cut % bytes.len();
        let truncated = &bytes[..cut];
        match open_via_file(truncated, "truncated") {
            Err(TraceError::TruncatedHeader { len }) => {
                prop_assert!(cut < HEADER_BYTES);
                prop_assert_eq!(len, cut as u64);
            }
            Err(TraceError::TruncatedRecord) => {
                prop_assert!(cut >= HEADER_BYTES);
                prop_assert!(!(cut - HEADER_BYTES).is_multiple_of(RECORD_BYTES));
            }
            Ok(trace) => {
                prop_assert!(cut >= HEADER_BYTES);
                prop_assert_eq!((cut - HEADER_BYTES) % RECORD_BYTES, 0);
                prop_assert_eq!(
                    trace.record_count() as usize,
                    (cut - HEADER_BYTES) / RECORD_BYTES
                );
            }
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    #[test]
    fn corrupted_headers_yield_typed_errors(
        records in prop::collection::vec(arb_access(), 0..20),
        byte in 0usize..6,
        xor in 1u8..=255,
    ) {
        // Flip bits somewhere in magic or version: BadMagic for the
        // first four bytes, UnsupportedVersion for the version field.
        let mut bytes = encode(&records);
        bytes[byte] ^= xor;
        match open_via_file(&bytes, "header") {
            Err(TraceError::BadMagic { found }) => {
                prop_assert!(byte < 4);
                prop_assert_eq!(&found[..], &bytes[0..4]);
            }
            Err(TraceError::UnsupportedVersion { found }) => {
                prop_assert!((4..6).contains(&byte));
                prop_assert_ne!(found, 1);
            }
            other => prop_assert!(false, "corrupt header accepted: {:?}", other.is_ok()),
        }
    }

    #[test]
    fn corrupted_kind_bytes_are_typed_errors_from_validation(
        records in prop::collection::vec(arb_access(), 1..50),
        victim in 0usize..50,
        bad_kind in 2u8..=255,
    ) {
        let victim = victim % records.len();
        let mut bytes = encode(&records);
        bytes[HEADER_BYTES + victim * RECORD_BYTES + 16] = bad_kind;
        let trace = open_via_file(&bytes, "kind").unwrap();
        match trace.validate_records() {
            Err(TraceError::InvalidKind { found }) => prop_assert_eq!(found, bad_kind),
            other => prop_assert!(false, "corrupt kind accepted: {:?}", other.is_ok()),
        }
        // The iterator form also surfaces it as an Err, not a panic.
        let first_err = trace.cursor().find_map(|r| r.err());
        prop_assert!(matches!(first_err, Some(TraceError::InvalidKind { .. })));
    }

    #[test]
    fn strict_decode_is_total_over_arbitrary_body_byte_flips(
        records in prop::collection::vec(arb_access(), 1..80),
        pos in any::<usize>(),
        xor in 1u8..=255,
    ) {
        // Flip one arbitrary byte anywhere in the body. The only
        // per-record damage a decoder can detect is a kind byte >= 2;
        // every other flip must decode as a (different) valid record.
        // Either way: typed results only, never a panic, and the
        // cursor always terminates.
        let mut bytes = encode(&records);
        let body = pos % (bytes.len() - HEADER_BYTES);
        let flipped = bytes[HEADER_BYTES + body] ^ xor;
        bytes[HEADER_BYTES + body] = flipped;
        let victim = body / RECORD_BYTES;
        let kind_broken = body % RECORD_BYTES == 16 && flipped >= 2;

        let trace = open_via_file(&bytes, "flip-strict").unwrap();
        let results: Vec<Result<MemoryAccess, TraceError>> = trace.cursor().collect();
        prop_assert_eq!(results.len(), records.len());
        for (i, (got, want)) in results.iter().zip(&records).enumerate() {
            match got {
                Ok(r) if i != victim => prop_assert_eq!(r, want),
                Ok(_) => prop_assert!(!kind_broken),
                Err(TraceError::InvalidKind { found }) => {
                    prop_assert!(kind_broken && i == victim);
                    prop_assert_eq!(*found, flipped);
                }
                Err(other) => prop_assert!(false, "unexpected error {other}"),
            }
        }
        prop_assert_eq!(trace.validate_records().is_err(), kind_broken);
    }

    #[test]
    fn quarantine_decode_skips_and_counts_arbitrary_byte_flips(
        records in prop::collection::vec(arb_access(), 1..80),
        pos in any::<usize>(),
        xor in 1u8..=255,
    ) {
        // Same flip under an unbounded quarantine: the cursor yields
        // only good records, the broken one (if any) is skipped and
        // tallied in TraceHealth, and untouched records survive
        // bit-identical.
        let mut bytes = encode(&records);
        let body = pos % (bytes.len() - HEADER_BYTES);
        let flipped = bytes[HEADER_BYTES + body] ^ xor;
        bytes[HEADER_BYTES + body] = flipped;
        let victim = body / RECORD_BYTES;
        let kind_broken = body % RECORD_BYTES == 16 && flipped >= 2;

        let trace = open_via_file_policy(&bytes, "flip-salvage", DecodePolicy::lenient()).unwrap();
        let mut cursor = trace.cursor();
        let got: Vec<MemoryAccess> = cursor.by_ref().map(|r| r.unwrap()).collect();
        prop_assert_eq!(got.len(), records.len() - usize::from(kind_broken));
        let survivors = records
            .iter()
            .enumerate()
            .filter(|&(i, _)| !(kind_broken && i == victim));
        for (got, (i, want)) in got.iter().zip(survivors) {
            if i != victim {
                prop_assert_eq!(got, want);
            }
        }
        let health = cursor.health();
        prop_assert_eq!(health.records_bad, u64::from(kind_broken));
        prop_assert_eq!(health.records_ok, got.len() as u64);
        if kind_broken {
            prop_assert_eq!(health.first_bad_record, Some(victim as u64));
        } else {
            prop_assert!(health.is_clean());
        }
    }

    #[test]
    fn quarantine_accepts_arbitrary_tail_tears(
        records in prop::collection::vec(arb_access(), 1..50),
        cut in 1usize..RECORD_BYTES,
    ) {
        // Tear up to a record's worth of bytes off the tail: strict
        // rejects the file, quarantine replays the whole records before
        // the tear and reports the fragment length.
        let bytes = encode(&records);
        let torn = &bytes[..bytes.len() - cut];
        prop_assert!(matches!(
            open_via_file(torn, "tear-strict"),
            Err(TraceError::TruncatedRecord)
        ));
        let trace = open_via_file_policy(torn, "tear-salvage", DecodePolicy::quarantine(0)).unwrap();
        prop_assert_eq!(trace.record_count(), records.len() as u64 - 1);
        prop_assert_eq!(trace.torn_tail_bytes() as usize, RECORD_BYTES - cut);
        let got: Vec<MemoryAccess> = trace.cursor().map(|r| r.unwrap()).collect();
        prop_assert_eq!(&got[..], &records[..records.len() - 1]);
        let health = trace.scan_health().unwrap();
        prop_assert_eq!(health.records_ok, got.len() as u64);
        prop_assert_eq!(health.records_bad, 0);
        prop_assert!(!health.is_clean());
    }

    #[test]
    fn v2_roundtrip_across_arbitrary_block_lens(
        records in prop::collection::vec(arb_access(), 0..200),
        block_len in 1u32..300,
        batch_len in 1usize..64,
    ) {
        let bytes = encode_v2(&records, block_len);
        let trace = open_v2_via_file(&bytes, "v2-roundtrip", DecodePolicy::Strict).unwrap();
        prop_assert_eq!(trace.record_count(), records.len() as u64);
        prop_assert_eq!(trace.block_len(), u64::from(block_len));
        let mut got = Vec::new();
        let mut cursor = trace.cursor();
        let mut buf = vec![MemoryAccess::read(0, 0); batch_len];
        loop {
            let n = cursor.decode_batch(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(got, records);
    }

    #[test]
    fn v2_decode_agrees_with_v1_decode(
        records in prop::collection::vec(arb_access(), 0..150),
        block_len in 1u32..64,
    ) {
        let via_v1: Vec<MemoryAccess> = open_via_file(&encode(&records), "v1-agree")
            .unwrap()
            .cursor()
            .map(|r| r.unwrap())
            .collect();
        let via_v2: Vec<MemoryAccess> =
            open_v2_via_file(&encode_v2(&records, block_len), "v2-agree", DecodePolicy::Strict)
                .unwrap()
                .cursor()
                .map(|r| r.unwrap())
                .collect();
        prop_assert_eq!(via_v2, via_v1);
    }

    #[test]
    fn v2_truncation_anywhere_is_a_typed_error(
        records in prop::collection::vec(arb_access(), 1..60),
        block_len in 1u32..40,
        cut in any::<usize>(),
    ) {
        // The block index and footer live at the tail, so *any* strict
        // truncation destroys the layout: the open must fail with a
        // typed error under every policy — torn v2 metadata is never
        // quarantinable — and must never panic or return a shorter
        // trace that silently misreports its length.
        let bytes = encode_v2(&records, block_len);
        let cut = cut % bytes.len();
        let truncated = &bytes[..cut];
        for policy in [DecodePolicy::Strict, DecodePolicy::lenient()] {
            let opened = open_v2_via_file(truncated, "v2-cut", policy);
            prop_assert!(opened.is_err(), "cut at {} of {} accepted", cut, bytes.len());
        }
    }

    #[test]
    fn v2_quarantine_drops_exactly_the_damaged_block(
        records in prop::collection::vec(arb_access(), 1..200),
        block_len in 1u32..32,
        seed in any::<u64>(),
    ) {
        // Bake one kind corruption at a seeded position: it lands on
        // the restart record of some block, so quarantine must drop
        // that whole block (delta chains cannot resync mid-block) and
        // nothing else.
        let mut bytes = encode_v2(&records, block_len);
        FaultPlan::seeded(seed, records.len() as u64, &[(FaultKind::CorruptKind, 1)])
            .apply_to_bytes(&mut bytes);

        let strict = open_v2_via_file(&bytes, "v2-chaos-strict", DecodePolicy::Strict).unwrap();
        prop_assert!(matches!(
            strict.validate_records(),
            Err(TraceError::InvalidKind { .. })
        ));

        let trace = open_v2_via_file(&bytes, "v2-chaos", DecodePolicy::lenient()).unwrap();
        let health = trace.scan_health().unwrap();
        prop_assert_eq!(health.blocks_bad, 1);
        let first = health.first_bad_record.unwrap();
        prop_assert_eq!(first % u64::from(block_len), 0);
        let block_start = first as usize;
        let block_end = (block_start + block_len as usize).min(records.len());
        prop_assert_eq!(health.records_bad, (block_end - block_start) as u64);
        prop_assert_eq!(
            health.records_ok,
            (records.len() - (block_end - block_start)) as u64
        );
        let got: Vec<MemoryAccess> = trace.cursor().map(|r| r.unwrap()).collect();
        let want: Vec<MemoryAccess> = records[..block_start]
            .iter()
            .chain(&records[block_end..])
            .copied()
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn window_equals_skip_take(
        records in prop::collection::vec(arb_access(), 0..100),
        skip in 0u64..50,
        take in 0u64..50,
    ) {
        let via_window: Vec<MemoryAccess> = records
            .iter()
            .copied()
            .window(skip, take)
            .collect();
        let via_std: Vec<MemoryAccess> = records
            .iter()
            .copied()
            .skip(skip as usize)
            .take(take as usize)
            .collect();
        prop_assert_eq!(via_window, via_std);
    }
}
