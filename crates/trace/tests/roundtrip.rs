//! Property tests: both trace codecs round-trip arbitrary records, and
//! the two formats agree with each other.

use proptest::prelude::*;
use tlbsim_core::{AccessKind, MemoryAccess};
use tlbsim_trace::{
    BinaryTraceReader, BinaryTraceWriter, TextTraceReader, TextTraceWriter, TraceStreamExt,
};

fn arb_access() -> impl Strategy<Value = MemoryAccess> {
    (any::<u64>(), any::<u64>(), prop::bool::ANY).prop_map(|(pc, vaddr, write)| MemoryAccess {
        pc: pc.into(),
        vaddr: vaddr.into(),
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    })
}

proptest! {
    #[test]
    fn binary_roundtrip(records in prop::collection::vec(arb_access(), 0..200)) {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let got: Vec<MemoryAccess> = BinaryTraceReader::open(buf.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(got, records);
    }

    #[test]
    fn text_roundtrip(records in prop::collection::vec(arb_access(), 0..200)) {
        let mut buf = Vec::new();
        let mut w = TextTraceWriter::create(&mut buf);
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let got: Vec<MemoryAccess> = TextTraceReader::open(buf.as_slice())
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(got, records);
    }

    #[test]
    fn formats_agree(records in prop::collection::vec(arb_access(), 0..100)) {
        let mut bin = Vec::new();
        let mut bw = BinaryTraceWriter::create(&mut bin).unwrap();
        let mut txt = Vec::new();
        let mut tw = TextTraceWriter::create(&mut txt);
        for r in &records {
            bw.write(r).unwrap();
            tw.write(r).unwrap();
        }
        bw.finish().unwrap();
        tw.finish().unwrap();
        let from_bin: Vec<MemoryAccess> = BinaryTraceReader::open(bin.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let from_txt: Vec<MemoryAccess> = TextTraceReader::open(txt.as_slice())
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(from_bin, from_txt);
    }

    #[test]
    fn window_equals_skip_take(
        records in prop::collection::vec(arb_access(), 0..100),
        skip in 0u64..50,
        take in 0u64..50,
    ) {
        let via_window: Vec<MemoryAccess> = records
            .iter()
            .copied()
            .window(skip, take)
            .collect();
        let via_std: Vec<MemoryAccess> = records
            .iter()
            .copied()
            .skip(skip as usize)
            .take(take as usize)
            .collect();
        prop_assert_eq!(via_window, via_std);
    }
}
