//! Table 2: average and miss-rate-weighted average prediction accuracy
//! over all 56 applications (`s = 2`, `r = 256` for DP, MP and ASP).

use tlbsim_sim::SimError;
use tlbsim_workloads::{all_apps, Scale};

use crate::grid::{accuracy_grid_sharded, table2_schemes};
use crate::report::{fmt3, TextTable};

/// One scheme's Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Scheme label.
    pub scheme: String,
    /// Unweighted mean accuracy over the 56 applications.
    pub average: f64,
    /// Miss-rate-weighted mean accuracy.
    pub weighted: f64,
}

/// The regenerated Table 2 with the paper's reference values.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Measured rows, sorted by unweighted average (descending).
    pub rows: Vec<Table2Row>,
}

/// The values the paper reports, for side-by-side comparison:
/// `(scheme, average, weighted)`.
pub fn paper_reference() -> [(&'static str, f64, f64); 4] {
    [
        ("DP", 0.43, 0.82),
        ("RP", 0.29, 0.86),
        ("ASP", 0.28, 0.73),
        ("MP", 0.11, 0.04),
    ]
}

/// Runs all 56 applications under the four schemes and aggregates.
///
/// # Errors
///
/// Returns [`SimError`] if a configuration is invalid.
pub fn run(scale: Scale) -> Result<Table2, SimError> {
    run_sharded(scale, 1)
}

/// Like [`run`], but each application run is partitioned across `shards`
/// worker shards (`xp table2 --shards N`); `shards = 1` is the
/// job-parallel sequential grid. See [`accuracy_grid_sharded`].
///
/// # Errors
///
/// Returns [`SimError`] if a configuration is invalid.
pub fn run_sharded(scale: Scale, shards: usize) -> Result<Table2, SimError> {
    let apps = all_apps();
    let schemes = table2_schemes();
    let grid = accuracy_grid_sharded(&apps, &schemes, scale, shards)?;

    let n = apps.len() as f64;
    let mut rows = Vec::with_capacity(schemes.len());
    for (i, scheme) in schemes.iter().enumerate() {
        let mut sum = 0.0;
        let mut weighted_num = 0.0;
        let mut weight_den = 0.0;
        for app_row in &grid {
            let cell = &app_row.cells[i];
            sum += cell.accuracy;
            weighted_num += cell.miss_rate * cell.accuracy;
            weight_den += cell.miss_rate;
        }
        rows.push(Table2Row {
            scheme: short_name(&scheme.label()),
            average: sum / n,
            weighted: if weight_den == 0.0 {
                0.0
            } else {
                weighted_num / weight_den
            },
        });
    }
    rows.sort_by(|a, b| b.average.total_cmp(&a.average));
    Ok(Table2 { rows })
}

fn short_name(label: &str) -> String {
    label.split(',').next().unwrap_or(label).to_owned()
}

impl Table2 {
    /// The measured row for a scheme ("DP", "RP", "ASP", "MP").
    pub fn row(&self, scheme: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.scheme == scheme)
    }

    fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Table 2: average prediction accuracy over 56 applications (s=2, r=256)",
            vec![
                "scheme".into(),
                "average".into(),
                "weighted".into(),
                "paper avg".into(),
                "paper wtd".into(),
            ],
        );
        for row in &self.rows {
            let reference = paper_reference()
                .iter()
                .find(|(name, _, _)| *name == row.scheme)
                .copied();
            let (pa, pw) = reference
                .map(|(_, a, w)| (a, w))
                .unwrap_or((f64::NAN, f64::NAN));
            table.row(vec![
                row.scheme.clone(),
                fmt3(row.average),
                fmt3(row.weighted),
                fmt3(pa),
                fmt3(pw),
            ]);
        }
        table
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        self.to_table().render()
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_ordering() {
        let reference = paper_reference();
        assert_eq!(reference[0].0, "DP");
        // DP leads unweighted; RP leads weighted.
        assert!(reference[0].1 > reference[1].1);
        assert!(reference[1].2 > reference[0].2);
    }

    #[test]
    fn short_names() {
        assert_eq!(short_name("DP,256,D"), "DP");
        assert_eq!(short_name("RP"), "RP");
    }
}
