//! Table 3: normalized execution cycles of RP and DP (vs. no
//! prefetching) on the five applications where RP's prediction accuracy
//! beats DP's.
//!
//! Reproduces the paper's cycle experiment: 100-cycle TLB miss penalty,
//! 50-cycle memory operations on a prefetch-only channel, RP paying its
//! LRU-stack pointer maintenance and skipping prefetches when the
//! channel is busy. The headline claim: "despite the slightly higher
//! prediction accuracy that RP provides for these applications, DP still
//! comes out in front when considering execution cycles".

use tlbsim_core::PrefetcherConfig;
use tlbsim_mem::TimingParams;
use tlbsim_sim::{run_app_timed, SimConfig, SimError};
use tlbsim_workloads::{table3_apps, Scale};

use crate::report::{fmt3, TextTable};

/// One application's Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application name.
    pub app: &'static str,
    /// Measured RP cycles / no-prefetch cycles.
    pub rp: f64,
    /// Measured DP cycles / no-prefetch cycles.
    pub dp: f64,
    /// The paper's RP value.
    pub paper_rp: f64,
    /// The paper's DP value.
    pub paper_dp: f64,
}

/// The regenerated Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// One row per application, in the paper's order.
    pub rows: Vec<Table3Row>,
}

/// Runs the timing experiment (three timed runs per application).
///
/// # Errors
///
/// Returns [`SimError`] if a configuration is invalid.
pub fn run(scale: Scale) -> Result<Table3, SimError> {
    let params = TimingParams::paper_default();
    let mut rows = Vec::new();
    for (app, paper_rp, paper_dp) in table3_apps() {
        let baseline = run_app_timed(app, scale, &SimConfig::baseline(), params)?;
        let rp = run_app_timed(
            app,
            scale,
            &SimConfig::paper_default().with_prefetcher(PrefetcherConfig::recency()),
            params,
        )?;
        let dp = run_app_timed(app, scale, &SimConfig::paper_default(), params)?;
        rows.push(Table3Row {
            app: app.name,
            rp: rp.normalized_against(&baseline),
            dp: dp.normalized_against(&baseline),
            paper_rp,
            paper_dp,
        });
    }
    Ok(Table3 { rows })
}

impl Table3 {
    fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Table 3: normalized execution cycles vs no prefetching (s=2, r=256)",
            vec![
                "app".into(),
                "RP".into(),
                "DP".into(),
                "paper RP".into(),
                "paper DP".into(),
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.app.to_owned(),
                fmt3(row.rp),
                fmt3(row.dp),
                fmt3(row.paper_rp),
                fmt3(row.paper_dp),
            ]);
        }
        table
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        self.to_table().render()
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// The row for an application.
    pub fn row(&self, app: &str) -> Option<&Table3Row> {
        self.rows.iter().find(|r| r.app == app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_the_papers_five_apps() {
        let t = run(Scale::TINY).unwrap();
        let names: Vec<&str> = t.rows.iter().map(|r| r.app).collect();
        assert_eq!(names, vec!["ammp", "mcf", "vpr", "twolf", "lucas"]);
        // Paper values carried for comparison.
        assert!((t.row("mcf").unwrap().paper_rp - 1.09).abs() < 1e-9);
    }
}
