//! Plain-text and CSV rendering for experiment output.

use std::fmt::Write as _;

/// A simple aligned text table with a title and column headers.
///
/// # Examples
///
/// ```
/// use tlbsim_experiments::TextTable;
///
/// let mut t = TextTable::new("demo", vec!["app".into(), "accuracy".into()]);
/// t.row(vec!["galgel".into(), "0.95".into()]);
/// let s = t.render();
/// assert!(s.contains("galgel"));
/// assert!(s.contains("accuracy"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        TextTable {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Avoid trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let escape = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(escape)
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(escape).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats an accuracy or ratio with three decimals.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a miss rate with four decimals.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("t", vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("a     "));
        assert!(lines[3].starts_with("xxxxxx"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("t", vec!["a".into(), "b".into()]);
        t.row(vec!["only".into()]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new("t", vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = TextTable::new("t", vec!["a".into()]);
        assert!(t.is_empty());
        assert!(t.render().contains('a'));
    }

    #[test]
    fn number_formats() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt4(0.12345), "0.1235");
    }
}
