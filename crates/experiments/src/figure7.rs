//! Figure 7: prediction accuracy of RP, MP, DP and ASP for all 26 SPEC
//! CPU2000 applications.

use tlbsim_sim::SimError;
use tlbsim_workloads::{suite_apps, Scale, Suite};

use crate::grid::{accuracy_grid, accuracy_grid_sharded, paper_scheme_grid, GridRow};
use crate::report::{fmt3, TextTable};

/// The regenerated Figure 7 data.
#[derive(Debug, Clone)]
pub struct Figure7 {
    /// One row per SPEC application, cells in the paper's legend order.
    pub rows: Vec<GridRow>,
}

/// Runs the full SPEC CPU2000 grid (26 apps × 30 configurations).
///
/// # Errors
///
/// Returns [`SimError`] if a configuration is invalid.
pub fn run(scale: Scale) -> Result<Figure7, SimError> {
    let apps = suite_apps(Suite::SpecCpu2000);
    let rows = accuracy_grid(&apps, &paper_scheme_grid(), scale)?;
    Ok(Figure7 { rows })
}

/// Like [`run`], but each application run is partitioned across `shards`
/// worker shards (`xp figure7 --shards N`); see
/// [`accuracy_grid_sharded`] for when this mode pays off and how `shards
/// = 1` relates to the sequential grid.
///
/// # Errors
///
/// Returns [`SimError`] if a configuration is invalid.
pub fn run_sharded(scale: Scale, shards: usize) -> Result<Figure7, SimError> {
    let apps = suite_apps(Suite::SpecCpu2000);
    let rows = accuracy_grid_sharded(&apps, &paper_scheme_grid(), scale, shards)?;
    Ok(Figure7 { rows })
}

impl Figure7 {
    /// Renders the accuracy matrix (apps as rows, schemes as columns).
    pub fn render(&self) -> String {
        render_rows(
            "Figure 7: prediction accuracy, SPEC CPU2000 (bars as columns)",
            &self.rows,
        )
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        rows_to_table(
            "Figure 7: prediction accuracy, SPEC CPU2000 (bars as columns)",
            &self.rows,
        )
        .to_csv()
    }
}

pub(crate) fn rows_to_table(title: &str, rows: &[GridRow]) -> TextTable {
    let mut headers = vec!["app".to_owned()];
    if let Some(first) = rows.first() {
        headers.extend(first.cells.iter().map(|c| c.label.clone()));
    }
    let mut table = TextTable::new(title, headers);
    for row in rows {
        let mut cells = vec![row.app.to_owned()];
        cells.extend(row.cells.iter().map(|c| fmt3(c.accuracy)));
        table.row(cells);
    }
    table
}

pub(crate) fn render_rows(title: &str, rows: &[GridRow]) -> String {
    rows_to_table(title, rows).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_covers_all_spec_apps_and_configs() {
        let fig = run(Scale::TINY).unwrap();
        assert_eq!(fig.rows.len(), 26);
        for row in &fig.rows {
            assert_eq!(row.cells.len(), 30, "{} misses configs", row.app);
        }
        let rendered = fig.render();
        assert!(rendered.contains("galgel"));
        assert!(rendered.contains("DP,256,D"));
    }
}
