//! Figure 8: prediction accuracy for the MediaBench, Etch and
//! Pointer-Intensive suites (30 applications, same scheme grid and
//! legends as Figure 7).

use tlbsim_sim::SimError;
use tlbsim_workloads::{suite_apps, Scale, Suite};

use crate::figure7::{render_rows, rows_to_table};
use crate::grid::{accuracy_grid, accuracy_grid_sharded, paper_scheme_grid, GridRow};

/// The regenerated Figure 8 data, one block per suite.
#[derive(Debug, Clone)]
pub struct Figure8 {
    /// MediaBench rows (20 apps).
    pub mediabench: Vec<GridRow>,
    /// Etch rows (5 apps).
    pub etch: Vec<GridRow>,
    /// Pointer-Intensive rows (5 apps).
    pub pointer: Vec<GridRow>,
}

/// Runs the three non-SPEC suites through the paper's scheme grid.
///
/// # Errors
///
/// Returns [`SimError`] if a configuration is invalid.
pub fn run(scale: Scale) -> Result<Figure8, SimError> {
    let grid = paper_scheme_grid();
    Ok(Figure8 {
        mediabench: accuracy_grid(&suite_apps(Suite::MediaBench), &grid, scale)?,
        etch: accuracy_grid(&suite_apps(Suite::Etch), &grid, scale)?,
        pointer: accuracy_grid(&suite_apps(Suite::PointerIntensive), &grid, scale)?,
    })
}

/// Like [`run`], but each application run is partitioned across `shards`
/// worker shards (`xp figure8 --shards N`); see
/// [`accuracy_grid_sharded`].
///
/// # Errors
///
/// Returns [`SimError`] if a configuration is invalid.
pub fn run_sharded(scale: Scale, shards: usize) -> Result<Figure8, SimError> {
    let grid = paper_scheme_grid();
    Ok(Figure8 {
        mediabench: accuracy_grid_sharded(&suite_apps(Suite::MediaBench), &grid, scale, shards)?,
        etch: accuracy_grid_sharded(&suite_apps(Suite::Etch), &grid, scale, shards)?,
        pointer: accuracy_grid_sharded(&suite_apps(Suite::PointerIntensive), &grid, scale, shards)?,
    })
}

impl Figure8 {
    /// Renders all three suite blocks.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&render_rows(
            "Figure 8a: prediction accuracy, MediaBench",
            &self.mediabench,
        ));
        out.push('\n');
        out.push_str(&render_rows(
            "Figure 8b: prediction accuracy, Etch",
            &self.etch,
        ));
        out.push('\n');
        out.push_str(&render_rows(
            "Figure 8c: prediction accuracy, Pointer-Intensive",
            &self.pointer,
        ));
        out
    }

    /// Renders CSV (all suites concatenated with suite column headers).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&rows_to_table("mediabench", &self.mediabench).to_csv());
        out.push_str(&rows_to_table("etch", &self.etch).to_csv());
        out.push_str(&rows_to_table("pointer", &self.pointer).to_csv());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_covers_all_non_spec_apps() {
        let fig = run(Scale::TINY).unwrap();
        assert_eq!(fig.mediabench.len(), 20);
        assert_eq!(fig.etch.len(), 5);
        assert_eq!(fig.pointer.len(), 5);
        let rendered = fig.render();
        assert!(rendered.contains("adpcm-enc"));
        assert!(rendered.contains("winword"));
        assert!(rendered.contains("yacr2"));
    }
}
