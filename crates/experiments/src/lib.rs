//! # tlbsim-experiments — regenerating the paper's tables and figures
//!
//! One module per evaluation artifact of *Going the Distance for TLB
//! Prefetching* (ISCA 2002):
//!
//! | module | artifact | content |
//! |--------|----------|---------|
//! | [`table1`] | Table 1 | hardware comparison of ASP/MP/RP/DP, generated from the implementations |
//! | [`figure7`] | Figure 7 | prediction accuracy, 26 SPEC CPU2000 apps × 30 scheme configurations |
//! | [`figure8`] | Figure 8 | prediction accuracy, MediaBench + Etch + Pointer-Intensive |
//! | [`table2`] | Table 2 | average and miss-rate-weighted accuracy over all 56 apps |
//! | [`table3`] | Table 3 | normalized execution cycles, RP vs DP, on the five RP-favoured apps |
//! | [`figure9`] | Figure 9 | DP sensitivity to r/assoc, s, b and TLB size on the 8 high-miss apps |
//! | [`extras`] | §3.3 remainder | DP sensitivity to page size and TLB associativity |
//! | [`replay`] | §3.1 methodology | trace recording (`xp record`) and full-speed mmap replay (`xp replay`) |
//! | [`mix`] | §4 outlook | multiprogrammed interleaves (`xp mix`): scheme sweep with context switches and per-stream attribution |
//! | [`health`] | (robustness) | trace damage census (`xp check`) and deterministic fault baking (`xp chaos`) |
//! | [`tracestat`] | (corpus tooling) | per-file trace summary (`xp tracestat`): records, kind mix, page footprint, v2 compression, damage census |
//! | [`throughput`] | (telemetry) | simulator accesses/sec per scheme + DP miss-path microbench + trace replay + multiprogram interleave |
//!
//! Every module exposes `run(scale) -> Result<Data, SimError>` plus
//! `render()` (aligned text, paper values alongside where applicable)
//! and `to_csv()`. The `xp` binary drives them from the command line:
//!
//! ```text
//! xp all --scale standard
//! xp figure7 --scale small --csv out/
//! xp record --app galgel --scale small --out galgel.tlbt
//! xp replay --trace galgel.tlbt --shards 4
//! xp mix --streams galgel.tlbt,mcf,perl4 --quantum 50000 --flush-on-switch
//! xp check --trace galgel.tlbt --quarantine 100
//! xp chaos --trace galgel.tlbt --out damaged.tlbt --seed 42 --corrupt 7
//! xp bench-json            # writes BENCH_throughput.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extras;
pub mod figure7;
pub mod figure8;
pub mod figure9;
mod grid;
pub mod health;
pub mod mix;
pub mod replay;
mod report;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod throughput;
pub mod tracestat;

pub use grid::{
    accuracy_grid, accuracy_grid_sharded, paper_scheme_grid, table2_schemes, GridCell, GridRow,
};
pub use report::{fmt3, fmt4, TextTable};
