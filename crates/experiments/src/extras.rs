//! Sensitivity axes beyond Figure 9's four panels.
//!
//! §3.3 states that DP "is able to make good predictions across
//! different TLB configurations and page sizes as well", deferring the
//! detail to the technical report. This module regenerates those two
//! remaining axes on the same eight high-miss applications: page size
//! (4/8/16 KiB) and TLB associativity (2-way/4-way/full at 128
//! entries).

use std::sync::Arc;

use tlbsim_core::{Associativity, PageSize};
use tlbsim_mmu::TlbConfig;
use tlbsim_sim::{sweep, SimConfig, SimError, SweepJob};
use tlbsim_workloads::{high_miss_apps, Scale};

use crate::figure9::Figure9Panel;

/// The regenerated extra-sensitivity panels.
#[derive(Debug, Clone)]
pub struct Extras {
    /// DP accuracy vs page size.
    pub page_size: Figure9Panel,
    /// DP accuracy vs TLB associativity (128 entries).
    pub tlb_assoc: Figure9Panel,
}

fn panel(
    title: &str,
    variants: Vec<(String, SimConfig)>,
    scale: Scale,
) -> Result<Figure9Panel, SimError> {
    let apps = high_miss_apps();
    let mut jobs = Vec::new();
    for (app, _) in &apps {
        for (label, config) in &variants {
            jobs.push(SweepJob {
                tag: label.clone(),
                spec: Arc::new(*app),
                scale,
                config: config.clone(),
            });
        }
    }
    let results = sweep(jobs)?;
    let labels: Vec<String> = variants.iter().map(|(l, _)| l.clone()).collect();
    let mut rows = Vec::new();
    let mut iter = results.into_iter();
    for (app, _) in &apps {
        let mut accs = Vec::with_capacity(labels.len());
        for _ in 0..labels.len() {
            accs.push(iter.next().expect("one result per job").stats.accuracy());
        }
        rows.push((app.name, accs));
    }
    Ok(Figure9Panel::from_parts(title.to_owned(), labels, rows))
}

/// Runs both panels.
///
/// # Errors
///
/// Returns [`SimError`] if a configuration is invalid.
pub fn run(scale: Scale) -> Result<Extras, SimError> {
    let page_size = [4096u64, 8192, 16384]
        .into_iter()
        .map(|bytes| {
            let mut config = SimConfig::paper_default();
            config.page_size = PageSize::new(bytes).expect("power of two");
            (format!("{}", config.page_size), config)
        })
        .collect();

    let tlb_assoc = [
        ("2-way".to_owned(), Associativity::ways_of(2)),
        ("4-way".to_owned(), Associativity::ways_of(4)),
        ("full".to_owned(), Associativity::Full),
    ]
    .into_iter()
    .map(|(label, assoc)| {
        (
            label,
            SimConfig::paper_default().with_tlb(TlbConfig {
                entries: 128,
                assoc,
            }),
        )
    })
    .collect();

    Ok(Extras {
        page_size: panel("Extras: DP accuracy vs page size", page_size, scale)?,
        tlb_assoc: panel(
            "Extras: DP accuracy vs 128-entry TLB associativity",
            tlb_assoc,
            scale,
        )?,
    })
}

impl Extras {
    /// Renders both panels.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.page_size.render(), self.tlb_assoc.render())
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        format!(
            "{}{}",
            self.page_size.to_table().to_csv(),
            self.tlb_assoc.to_table().to_csv()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_cover_both_axes() {
        let e = run(Scale::TINY).unwrap();
        assert_eq!(e.page_size.labels(), &["4KiB", "8KiB", "16KiB"]);
        assert_eq!(e.tlb_assoc.labels(), &["2-way", "4-way", "full"]);
        let rendered = e.render();
        assert!(rendered.contains("galgel"));
        // The paper's claim: DP stays effective across these axes; check
        // the regular apps stay high at every point.
        for (app, accs) in e.page_size.rows().iter() {
            if *app == "galgel" || *app == "adpcm-enc" {
                assert!(accs.iter().all(|a| *a > 0.9), "{app}: {accs:?}");
            }
        }
    }
}
