//! Figure 9: sensitivity of DP to hardware parameters on the eight
//! highest-miss-rate applications (vpr, mcf, twolf, galgel, ammp, lucas,
//! apsi, adpcm-enc).
//!
//! Four panels: (a) table size r and associativity; (b) slots s ∈ {2, 4,
//! 6}; (c) prefetch buffer b ∈ {16, 32, 64}; (d) TLB size ∈ {64, 128,
//! 256}. The paper's conclusion — reproduced as a test in
//! `tests/paper_claims.rs` — is that DP "is fairly insensitive to many
//! of these parameters, and even a small direct-mapped 32-256 entry
//! table suffices".

use std::sync::Arc;

use tlbsim_core::{Associativity, PrefetcherConfig};
use tlbsim_mmu::TlbConfig;
use tlbsim_sim::{sweep, SimConfig, SimError, SweepJob};
use tlbsim_workloads::{high_miss_apps, Scale};

use crate::report::{fmt3, TextTable};

/// One panel of Figure 9: a labelled set of DP variants per application.
#[derive(Debug, Clone)]
pub struct Figure9Panel {
    /// Panel title (matches the paper's subplots).
    pub title: String,
    /// Variant labels, in legend order.
    pub labels: Vec<String>,
    /// `(app, accuracies-by-variant)` rows.
    pub rows: Vec<(&'static str, Vec<f64>)>,
}

impl Figure9Panel {
    /// Assembles a panel from its parts (used by the extra-sensitivity
    /// experiments that share this rendering).
    pub fn from_parts(
        title: String,
        labels: Vec<String>,
        rows: Vec<(&'static str, Vec<f64>)>,
    ) -> Self {
        Figure9Panel {
            title,
            labels,
            rows,
        }
    }

    /// Variant labels in legend order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// `(app, accuracies)` rows.
    pub fn rows(&self) -> &[(&'static str, Vec<f64>)] {
        &self.rows
    }
}

/// The regenerated Figure 9.
#[derive(Debug, Clone)]
pub struct Figure9 {
    /// Panel (a): table size × associativity.
    pub geometry: Figure9Panel,
    /// Panel (b): slot count.
    pub slots: Figure9Panel,
    /// Panel (c): prefetch buffer size.
    pub buffer: Figure9Panel,
    /// Panel (d): TLB entries.
    pub tlb: Figure9Panel,
}

fn panel(
    title: &str,
    variants: Vec<(String, SimConfig)>,
    scale: Scale,
) -> Result<Figure9Panel, SimError> {
    let apps = high_miss_apps();
    let mut jobs = Vec::new();
    for (app, _) in &apps {
        for (label, config) in &variants {
            jobs.push(SweepJob {
                tag: label.clone(),
                spec: Arc::new(*app),
                scale,
                config: config.clone(),
            });
        }
    }
    let results = sweep(jobs)?;
    let labels: Vec<String> = variants.iter().map(|(l, _)| l.clone()).collect();
    let mut rows = Vec::new();
    let mut iter = results.into_iter();
    for (app, _) in &apps {
        let mut accs = Vec::with_capacity(labels.len());
        for _ in 0..labels.len() {
            accs.push(iter.next().expect("one result per job").stats.accuracy());
        }
        rows.push((app.name, accs));
    }
    Ok(Figure9Panel {
        title: title.to_owned(),
        labels,
        rows,
    })
}

fn dp(rows: usize, assoc: Associativity, slots: usize) -> PrefetcherConfig {
    let mut cfg = PrefetcherConfig::distance();
    cfg.rows(rows).assoc(assoc).slots(slots);
    cfg
}

/// Runs all four sensitivity panels.
///
/// # Errors
///
/// Returns [`SimError`] if a configuration is invalid.
pub fn run(scale: Scale) -> Result<Figure9, SimError> {
    let base = SimConfig::paper_default;

    // Panel (a): the paper's 14 geometry variants.
    let mut geometry = Vec::new();
    for (rows, assoc) in [
        (1024, Associativity::Direct),
        (1024, Associativity::ways_of(4)),
        (1024, Associativity::ways_of(2)),
        (512, Associativity::Direct),
        (512, Associativity::ways_of(4)),
        (256, Associativity::Direct),
        (256, Associativity::ways_of(4)),
        (256, Associativity::Full),
        (128, Associativity::Direct),
        (128, Associativity::Full),
        (64, Associativity::Direct),
        (64, Associativity::Full),
        (32, Associativity::Direct),
        (32, Associativity::Full),
    ] {
        let cfg = dp(rows, assoc, 2);
        geometry.push((cfg.label(), base().with_prefetcher(cfg)));
    }

    let slots = [2usize, 4, 6]
        .into_iter()
        .map(|s| {
            (
                format!("s = {s}"),
                base().with_prefetcher(dp(256, Associativity::Direct, s)),
            )
        })
        .collect();

    let buffer = [16usize, 32, 64]
        .into_iter()
        .map(|b| (format!("b = {b}"), base().with_prefetch_buffer(b)))
        .collect();

    let tlb = [64usize, 128, 256]
        .into_iter()
        .map(|entries| {
            (
                format!("{entries}-entry TLB"),
                base().with_tlb(TlbConfig::fully_associative(entries)),
            )
        })
        .collect();

    Ok(Figure9 {
        geometry: panel(
            "Figure 9a: DP table size and associativity",
            geometry,
            scale,
        )?,
        slots: panel("Figure 9b: DP prediction slots", slots, scale)?,
        buffer: panel("Figure 9c: prefetch buffer size", buffer, scale)?,
        tlb: panel("Figure 9d: TLB size", tlb, scale)?,
    })
}

impl Figure9Panel {
    /// Renders the panel as a table.
    pub fn render(&self) -> String {
        self.to_table().render()
    }

    /// The panel as a [`TextTable`] (for CSV export).
    pub fn to_table(&self) -> TextTable {
        let mut headers = vec!["app".to_owned()];
        headers.extend(self.labels.clone());
        let mut table = TextTable::new(self.title.clone(), headers);
        for (app, accs) in &self.rows {
            let mut cells = vec![(*app).to_owned()];
            cells.extend(accs.iter().map(|a| fmt3(*a)));
            table.row(cells);
        }
        table
    }
}

impl Figure9 {
    /// Renders all four panels.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}",
            self.geometry.render(),
            self.slots.render(),
            self.buffer.render(),
            self.tlb.render()
        )
    }

    /// Renders CSV for all panels.
    pub fn to_csv(&self) -> String {
        format!(
            "{}{}{}{}",
            self.geometry.to_table().to_csv(),
            self.slots.to_table().to_csv(),
            self.buffer.to_table().to_csv(),
            self.tlb.to_table().to_csv()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_panels_cover_the_eight_apps() {
        let fig = run(Scale::TINY).unwrap();
        assert_eq!(fig.geometry.rows.len(), 8);
        assert_eq!(fig.geometry.labels.len(), 14);
        assert_eq!(fig.slots.labels, vec!["s = 2", "s = 4", "s = 6"]);
        assert_eq!(fig.buffer.labels.len(), 3);
        assert_eq!(fig.tlb.labels.len(), 3);
        assert!(fig.render().contains("galgel"));
    }
}
