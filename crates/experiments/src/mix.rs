//! The multiprogrammed-mix driver (`xp mix`).
//!
//! The paper evaluates each application alone and flags multiprogramming
//! as the environment that actually stresses the dTLB (§4). `xp mix`
//! closes that loop for the reproduction: it interleaves any combination
//! of registered application models and recorded `TLBT` traces into one
//! deterministic multiprogrammed stream (`MultiStreamSpec`, round-robin
//! quantum), runs the figure grids' full 30-scheme sweep over the
//! interleave — optionally flushing translation + prediction state at
//! every context switch, optionally sharded across workers at switch
//! boundaries — and reports aggregate *and per-stream* prediction
//! accuracy, the attribution that shows which tenant pays for
//! consolidation under each mechanism.

use std::path::Path;
use std::sync::{Arc, Mutex};

use tlbsim_sim::{
    resolve_shards, run_mix, run_mix_sharded, SimConfig, SimStats, StreamStats, SwitchPolicy,
};
use tlbsim_trace::DecodePolicy;
use tlbsim_workloads::{
    find_app, MixError, MultiStreamSpec, Scale, Schedule, StreamSpec, TraceWorkload,
};

use crate::grid::paper_scheme_grid;
use crate::replay::ReplayError;
use crate::report::{fmt3, fmt4, TextTable};

impl From<MixError> for ReplayError {
    fn from(e: MixError) -> Self {
        ReplayError::Mix(e)
    }
}

/// Resolves one `--streams` token. Tokens that are *syntactically*
/// paths — a `.tlbt` extension or a path separator — always open as
/// recorded traces; everything else resolves against the application
/// registry first, so a stray local file named after a registered app
/// (`./gap`) can never shadow the model. An unregistered bare token
/// falls back to a trace path as a convenience.
fn resolve_stream(token: &str, policy: DecodePolicy) -> Result<Arc<dyn StreamSpec>, ReplayError> {
    let path = Path::new(token);
    let looks_like_path = path.extension().is_some_and(|e| e == "tlbt")
        || token.contains(std::path::MAIN_SEPARATOR)
        || token.contains('/');
    if looks_like_path {
        return Ok(Arc::new(TraceWorkload::open_with_policy(path, policy)?));
    }
    if let Some(app) = find_app(token) {
        return Ok(Arc::new(app));
    }
    if path.exists() {
        return Ok(Arc::new(TraceWorkload::open_with_policy(path, policy)?));
    }
    Err(ReplayError::UnknownApp(token.to_owned()))
}

/// Builds the mix an `xp mix` invocation describes: one stream per
/// token under a round-robin schedule.
///
/// # Errors
///
/// [`ReplayError`] for unknown application names, unreadable traces, or
/// a malformed mix (no streams, too many, zero quantum).
pub fn build_mix(tokens: &[String], quantum: u64) -> Result<MultiStreamSpec, ReplayError> {
    build_mix_with_policy(tokens, quantum, DecodePolicy::Strict)
}

/// [`build_mix`] with trace members opened under `policy` — quarantine
/// lets a mix keep running when one tenant's trace is damaged.
///
/// # Errors
///
/// As [`build_mix`].
pub fn build_mix_with_policy(
    tokens: &[String],
    quantum: u64,
    policy: DecodePolicy,
) -> Result<MultiStreamSpec, ReplayError> {
    let streams = tokens
        .iter()
        .map(|t| resolve_stream(t, policy))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MultiStreamSpec::new(
        streams,
        Schedule::RoundRobin { quantum },
    )?)
}

/// One scheme's row of the mix sweep: aggregate metrics plus the
/// per-stream accuracy attribution.
#[derive(Debug, Clone)]
pub struct MixCell {
    /// Scheme label in the paper's legend style (e.g. `DP,256,D`).
    pub label: String,
    /// Aggregate prediction accuracy over the whole interleave.
    pub accuracy: f64,
    /// Aggregate TLB miss rate.
    pub miss_rate: f64,
    /// Per-stream shares, in mix rotation order.
    pub per_stream: Vec<StreamStats>,
}

/// The 30-scheme sweep of one multiprogrammed interleave.
#[derive(Debug, Clone)]
pub struct MixReport {
    /// The mix's composed name (`mix(a+b+…)`).
    pub name: String,
    /// Component stream names, in rotation order.
    pub streams: Vec<String>,
    /// Component stream lengths at the sweep's scale.
    pub stream_lens: Vec<u64>,
    /// Round-robin quantum, in accesses.
    pub quantum: u64,
    /// Context-switch semantics each scheme ran under.
    pub switch_policy: SwitchPolicy,
    /// Worker shards per run (1 = sequential).
    pub shards: usize,
    /// Records the trace members' quarantine decode skipped (0 for
    /// strict opens and all-model mixes).
    pub quarantined: u64,
    /// Total interleaved accesses per scheme run.
    pub accesses: u64,
    /// One cell per scheme configuration, in grid order.
    pub cells: Vec<MixCell>,
}

/// Runs the full figure-grid scheme sweep over a multiprogrammed
/// interleave.
///
/// With `shards <= 1` each scheme runs sequentially through [`run_mix`]
/// (the scheme grid itself is spread across the machine's cores); with
/// more, schemes run one at a time, each partitioned across `shards`
/// switch-aligned workers via [`run_mix_sharded`].
///
/// # Errors
///
/// [`ReplayError`] from resolving the streams, or a `SimError` from an
/// invalid configuration.
pub fn mix(
    tokens: &[String],
    scale: Scale,
    quantum: u64,
    switch_policy: SwitchPolicy,
    shards: usize,
) -> Result<MixReport, ReplayError> {
    mix_with_policy(
        tokens,
        scale,
        quantum,
        switch_policy,
        shards,
        DecodePolicy::Strict,
    )
}

/// [`mix`] with trace members opened under an explicit
/// [`DecodePolicy`]; quarantined records are reported in
/// [`MixReport::quarantined`].
///
/// # Errors
///
/// As [`mix`]; additionally `TraceError::QuarantineExceeded` when a
/// member's damage overruns a quarantine budget.
pub fn mix_with_policy(
    tokens: &[String],
    scale: Scale,
    quantum: u64,
    switch_policy: SwitchPolicy,
    shards: usize,
    policy: DecodePolicy,
) -> Result<MixReport, ReplayError> {
    let spec = build_mix_with_policy(tokens, quantum, policy)?;
    let shards = resolve_shards(shards, spec.stream_len(scale));
    let schemes = paper_scheme_grid();
    let base = SimConfig::paper_default();
    let configs: Vec<SimConfig> = schemes
        .iter()
        .map(|scheme| base.clone().with_prefetcher(scheme.clone()))
        .collect();

    let runs: Vec<SimStats> = if shards <= 1 {
        // One sequential run per scheme, schemes spread across cores
        // (mirrors the sweep executor's queue; run_mix itself attributes
        // per stream, which the generic sweep cannot).
        let results: Vec<Mutex<Option<Result<SimStats, tlbsim_sim::SimError>>>> =
            configs.iter().map(|_| Mutex::new(None)).collect();
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(configs.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let spec = &spec;
                let configs = &configs;
                let results = &results;
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(config) = configs.get(index) else {
                        break;
                    };
                    let outcome = run_mix(spec, scale, config, switch_policy);
                    *results[index].lock().expect("result lock") = Some(outcome);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker threads joined")
                    .expect("every scheme ran")
            })
            .collect::<Result<Vec<_>, _>>()?
    } else {
        let mut runs = Vec::with_capacity(configs.len());
        for config in &configs {
            runs.push(run_mix_sharded(&spec, scale, config, switch_policy, shards)?.merged);
        }
        runs
    };

    let cells = schemes
        .iter()
        .zip(&runs)
        .map(|(scheme, stats)| MixCell {
            label: scheme.label(),
            accuracy: stats.accuracy(),
            miss_rate: stats.miss_rate(),
            per_stream: stats.per_stream.streams().to_vec(),
        })
        .collect();

    Ok(MixReport {
        name: StreamSpec::name(&spec).to_owned(),
        streams: spec.stream_names().iter().map(|s| s.to_string()).collect(),
        stream_lens: spec.streams().iter().map(|s| s.stream_len(scale)).collect(),
        quantum,
        switch_policy,
        shards: shards.max(1),
        quarantined: spec.quarantined_records(),
        accesses: spec.stream_len(scale),
        cells,
    })
}

impl MixReport {
    /// The report as a [`TextTable`]: aggregate accuracy and miss rate,
    /// then one accuracy column per stream.
    pub fn to_table(&self) -> TextTable {
        let mut columns = vec![
            "scheme".to_owned(),
            "accuracy".to_owned(),
            "miss rate".to_owned(),
        ];
        columns.extend(self.streams.iter().map(|s| format!("acc({s})")));
        let quarantined = if self.quarantined == 0 {
            String::new()
        } else {
            format!(", quarantined {} bad", self.quarantined)
        };
        let mut table = TextTable::new(
            format!(
                "Mix: {} ({} accesses, quantum {}, {}, {} shard{}{quarantined})",
                self.name,
                self.accesses,
                self.quantum,
                self.switch_policy,
                self.shards,
                if self.shards == 1 { "" } else { "s" }
            ),
            columns,
        );
        for cell in &self.cells {
            let mut row = vec![
                cell.label.clone(),
                fmt3(cell.accuracy),
                fmt4(cell.miss_rate),
            ];
            row.extend(cell.per_stream.iter().map(|s| fmt3(s.accuracy())));
            table.row(row);
        }
        table
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        self.to_table().render()
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::record;

    fn strings(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn mix_sweep_covers_the_grid_with_per_stream_columns() {
        let report = mix(
            &strings(&["gap", "mcf"]),
            Scale::TINY,
            1000,
            SwitchPolicy::None,
            1,
        )
        .unwrap();
        assert_eq!(report.cells.len(), paper_scheme_grid().len());
        assert_eq!(report.streams, vec!["gap", "mcf"]);
        assert_eq!(report.accesses, report.stream_lens.iter().sum::<u64>());
        for cell in &report.cells {
            assert_eq!(cell.per_stream.len(), 2);
            let attributed: u64 = cell.per_stream.iter().map(|s| s.accesses).sum();
            assert_eq!(attributed, report.accesses, "{}", cell.label);
        }
        let rendered = report.render();
        assert!(rendered.contains("Mix: mix(gap+mcf)"));
        assert!(rendered.contains("acc(gap)"));
        assert!(rendered.contains("DP,256,D"));
        assert!(report
            .to_csv()
            .contains("scheme,accuracy,miss rate,acc(gap),acc(mcf)"));
    }

    #[test]
    fn mix_sweep_matches_direct_run_mix() {
        let report = mix(
            &strings(&["gap", "eon"]),
            Scale::TINY,
            500,
            SwitchPolicy::FlushOnSwitch,
            1,
        )
        .unwrap();
        let spec = build_mix(&strings(&["gap", "eon"]), 500).unwrap();
        let direct = run_mix(
            &spec,
            Scale::TINY,
            &SimConfig::paper_default(),
            SwitchPolicy::FlushOnSwitch,
        )
        .unwrap();
        let cell = report
            .cells
            .iter()
            .find(|c| c.label.starts_with("DP,256"))
            .expect("representative DP cell present");
        assert_eq!(cell.accuracy, direct.accuracy());
        assert_eq!(cell.miss_rate, direct.miss_rate());
        assert_eq!(cell.per_stream, direct.per_stream.streams().to_vec());
    }

    #[test]
    fn traces_and_models_mix_freely() {
        let path = std::env::temp_dir().join(format!("tlbsim-mix-{}.tlbt", std::process::id()));
        record("gap", Scale::TINY, Some(5000), &path).unwrap();
        let tokens = vec![path.display().to_string(), "mcf".to_owned()];
        let report = mix(&tokens, Scale::TINY, 700, SwitchPolicy::None, 2).unwrap();
        assert_eq!(report.stream_lens[0], 5000);
        assert_eq!(report.shards, 2);
        assert!(report.streams[0].starts_with("tlbsim-mix-"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_streams_and_bad_quanta_are_typed_errors() {
        assert!(matches!(
            mix(
                &strings(&["not-an-app"]),
                Scale::TINY,
                100,
                SwitchPolicy::None,
                1
            ),
            Err(ReplayError::UnknownApp(_))
        ));
        let err = mix(&strings(&["gap"]), Scale::TINY, 0, SwitchPolicy::None, 1).unwrap_err();
        assert!(matches!(err, ReplayError::Mix(MixError::ZeroQuantum)));
        assert!(err.to_string().contains("quantum"));
    }

    #[test]
    fn registered_app_names_are_never_shadowed_by_local_files() {
        // A stray file named after a registered app must not hijack the
        // token as a trace: bare names resolve against the registry
        // *before* any filesystem probe, and only path-shaped tokens are
        // forced to be traces.
        let shadow = std::env::temp_dir().join(format!("tlbsim-shadow-{}", std::process::id()));
        std::fs::create_dir_all(&shadow).unwrap();
        std::fs::write(shadow.join("gap"), b"not a trace").unwrap();
        // Bare registered name: the registry wins even while a same-named
        // file exists somewhere (resolution never probes the disk here).
        assert_eq!(
            resolve_stream("gap", DecodePolicy::Strict).unwrap().name(),
            "gap"
        );
        // The same bytes addressed *as a path* are treated as a trace and
        // rejected for what they are.
        let by_path = resolve_stream(
            &shadow.join("gap").display().to_string(),
            DecodePolicy::Strict,
        );
        assert!(
            matches!(by_path, Err(ReplayError::Trace(_))),
            "an explicit path must still be treated as a trace"
        );
        // Unregistered and absent: a typed unknown-app error.
        assert!(matches!(
            resolve_stream("no-such-app-or-file", DecodePolicy::Strict),
            Err(ReplayError::UnknownApp(_))
        ));
        std::fs::remove_dir_all(&shadow).ok();
    }
}
