//! `xp` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! xp <table1|table2|table3|figure7|figure8|figure9|extras|all>
//!    [--scale tiny|small|standard|<factor>]
//!    [--shards <n>]
//!    [--csv <dir>]
//! xp bench-json [--out <path>]
//! ```
//!
//! `--shards <n>` switches the accuracy-grid drivers (figure7, figure8,
//! table2) from job-level parallelism to intra-run sharding: jobs run
//! one at a time, each partitioned across `n` worker shards
//! (`tlbsim_sim::run_app_sharded`) — the mode for very large `--scale`
//! runs where a single job should own the whole machine. The other
//! experiments ignore the flag. `--shards 1` is bit-identical to the
//! default.
//!
//! `bench-json` measures simulator throughput (accesses/sec per scheme,
//! the DP miss-path microbench, and sharded-vs-sequential scaling of a
//! figure-scale DP run) and writes `BENCH_throughput.json` — the
//! perf-trajectory telemetry successive PRs compare against.

use std::path::PathBuf;
use std::process::ExitCode;

use tlbsim_experiments::{extras, figure7, figure8, figure9, table1, table2, table3, throughput};
use tlbsim_workloads::Scale;

struct Args {
    experiment: String,
    scale: Scale,
    shards: usize,
    csv_dir: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: xp <table1|table2|table3|figure7|figure8|figure9|extras|all> \
     [--scale tiny|small|standard|<factor>] [--shards <n>] [--csv <dir>]\n       \
     xp bench-json [--out <path>]"
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut scale = Scale::STANDARD;
    let mut shards = 1usize;
    let mut csv_dir = None;
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let value = argv.next().ok_or("--scale needs a value")?;
                scale = match value.as_str() {
                    "tiny" => Scale::TINY,
                    "small" => Scale::SMALL,
                    "standard" => Scale::STANDARD,
                    n => Scale::new(
                        n.parse::<u32>()
                            .map_err(|_| format!("bad scale {n:?}"))?
                            .max(1),
                    ),
                };
            }
            "--shards" => {
                let value = argv.next().ok_or("--shards needs a value")?;
                shards = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad shard count {value:?} (want an integer >= 1)"))?;
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(argv.next().ok_or("--csv needs a directory")?));
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out needs a path")?));
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        experiment: experiment.unwrap_or_else(|| "all".to_owned()),
        scale,
        shards,
        csv_dir,
        out,
    })
}

fn run_bench_json(out: &Option<PathBuf>) -> Result<(), String> {
    let report = throughput::run().map_err(|e| format!("bench-json: {e}"))?;
    println!("{}", report.render());
    let path = out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_throughput.json"));
    std::fs::write(&path, report.to_json()).map_err(|e| format!("writing {path:?}: {e}"))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

fn emit(
    name: &str,
    rendered: String,
    csv: String,
    csv_dir: &Option<PathBuf>,
) -> Result<(), String> {
    println!("{rendered}");
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn run_one(
    name: &str,
    scale: Scale,
    shards: usize,
    csv_dir: &Option<PathBuf>,
) -> Result<(), String> {
    let fail = |e: tlbsim_sim::SimError| format!("{name}: {e}");
    match name {
        "table1" => {
            let t = table1::run();
            emit(name, t.render(), t.to_csv(), csv_dir)
        }
        "table2" => {
            let t = table2::run_sharded(scale, shards).map_err(fail)?;
            emit(name, t.render(), t.to_csv(), csv_dir)
        }
        "table3" => {
            let t = table3::run(scale).map_err(fail)?;
            emit(name, t.render(), t.to_csv(), csv_dir)
        }
        "figure7" => {
            let f = figure7::run_sharded(scale, shards).map_err(fail)?;
            emit(name, f.render(), f.to_csv(), csv_dir)
        }
        "figure8" => {
            let f = figure8::run_sharded(scale, shards).map_err(fail)?;
            emit(name, f.render(), f.to_csv(), csv_dir)
        }
        "figure9" => {
            let f = figure9::run(scale).map_err(fail)?;
            emit(name, f.render(), f.to_csv(), csv_dir)
        }
        "extras" => {
            let e = extras::run(scale).map_err(fail)?;
            emit(name, e.render(), e.to_csv(), csv_dir)
        }
        other => Err(format!("unknown experiment {other:?}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.experiment == "bench-json" {
        return match run_bench_json(&args.out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    let experiments: Vec<&str> = if args.experiment == "all" {
        vec![
            "table1", "figure7", "figure8", "table2", "table3", "figure9", "extras",
        ]
    } else {
        vec![args.experiment.as_str()]
    };
    let sharding = if args.shards > 1 {
        format!(" with {} shards per run", args.shards)
    } else {
        String::new()
    };
    eprintln!(
        "running {} at scale {}{sharding} …",
        experiments.join(", "),
        args.scale
    );
    for name in experiments {
        let started = std::time::Instant::now();
        if let Err(message) = run_one(name, args.scale, args.shards, &args.csv_dir) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
        eprintln!("{name} done in {:.1?}", started.elapsed());
    }
    ExitCode::SUCCESS
}
