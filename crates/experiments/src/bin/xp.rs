//! `xp` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! xp <table1|table2|table3|figure7|figure8|figure9|extras|all>
//!    [--scale tiny|small|standard|<factor>]
//!    [--shards <n>]
//!    [--csv <dir>]
//! xp record --app <name> [--scale <s>] [--limit <n>] [--out <path>]
//! xp replay --trace <path> [--shards <n>] [--quarantine <n|unlimited>] [--csv <dir>]
//! xp mix --streams <a,b,…> [--quantum <n>] [--flush-on-switch]
//!        [--scale <s>] [--shards <n>] [--quarantine <n|unlimited>] [--csv <dir>]
//! xp check --trace <path> [--quarantine <n|unlimited>]
//! xp chaos --trace <path> --out <path> [--seed <n>] [--corrupt <k>]
//!          [--wild <k>] [--truncate]
//! xp bench-json [--out <path>]
//! ```
//!
//! `--shards <n>` switches the accuracy-grid drivers (figure7, figure8,
//! table2) — and `replay` — from job-level parallelism to intra-run
//! sharding: jobs run one at a time, each partitioned across `n` worker
//! shards (`tlbsim_sim::run_app_sharded`) — the mode for very large
//! `--scale` runs where a single job should own the whole machine. The
//! other experiments ignore the flag. `--shards 1` is bit-identical to
//! the default.
//!
//! `record` dumps a registered application model's reference stream to
//! the binary `TLBT` trace format; `replay` runs the figure grids'
//! 21-scheme sweep over any such trace, mmap-replayed zero-copy.
//!
//! `mix` interleaves several streams — registered application names
//! and/or `TLBT` trace paths, comma-separated — into one multiprogrammed
//! stream under a round-robin `--quantum` (default 50000 accesses) and
//! runs the same 21-scheme sweep over the interleave, printing aggregate
//! and per-stream prediction accuracy. `--flush-on-switch` flushes the
//! TLB, prefetch buffer and prediction tables at every context switch
//! (the paper's §4 scenario); `--shards` partitions each run across
//! workers at switch boundaries.
//!
//! `--quarantine <n|unlimited>` replays a damaged trace anyway: up to
//! `n` unparseable records are skipped (and counted in the report)
//! instead of aborting the run. The default is strict decode — any
//! damage is a one-line typed error and a nonzero exit.
//!
//! `check` censuses a trace's damage (decodable records, bad records,
//! torn tail) and exits nonzero if the selected policy would reject it
//! — the CI preflight for trace artifacts. `chaos` bakes a
//! deterministic seeded fault plan into a copy of a clean trace, so a
//! corrupt input can be manufactured reproducibly from the command
//! line.
//!
//! `bench-json` measures simulator throughput (accesses/sec per scheme,
//! the DP miss-path microbench, sharded-vs-sequential scaling of a
//! figure-scale DP run, and mmap trace replay vs the generator) and
//! writes `BENCH_throughput.json` — the perf-trajectory telemetry
//! successive PRs compare against.

use std::path::PathBuf;
use std::process::ExitCode;

use tlbsim_experiments::{
    extras, figure7, figure8, figure9, health, mix, replay, table1, table2, table3, throughput,
};
use tlbsim_trace::DecodePolicy;
use tlbsim_workloads::Scale;

struct Args {
    experiment: String,
    scale: Scale,
    shards: usize,
    csv_dir: Option<PathBuf>,
    out: Option<PathBuf>,
    app: Option<String>,
    trace: Option<PathBuf>,
    limit: Option<u64>,
    streams: Vec<String>,
    quantum: u64,
    flush_on_switch: bool,
    policy: DecodePolicy,
    seed: u64,
    corrupt: usize,
    wild: usize,
    truncate: bool,
}

fn usage() -> &'static str {
    "usage: xp <table1|table2|table3|figure7|figure8|figure9|extras|all> \
     [--scale tiny|small|standard|<factor>] [--shards <n>] [--csv <dir>]\n       \
     xp record --app <name> [--scale <s>] [--limit <n>] [--out <path>]\n       \
     xp replay --trace <path> [--shards <n>] [--quarantine <n|unlimited>] [--csv <dir>]\n       \
     xp mix --streams <a,b,...> [--quantum <n>] [--flush-on-switch] \
     [--scale <s>] [--shards <n>] [--quarantine <n|unlimited>] [--csv <dir>]\n       \
     xp check --trace <path> [--quarantine <n|unlimited>]\n       \
     xp chaos --trace <path> --out <path> [--seed <n>] [--corrupt <k>] \
     [--wild <k>] [--truncate]\n       \
     xp bench-json [--out <path>]"
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut scale = Scale::STANDARD;
    let mut shards = 1usize;
    let mut csv_dir = None;
    let mut out = None;
    let mut app = None;
    let mut trace = None;
    let mut limit = None;
    let mut streams = Vec::new();
    let mut quantum = 50_000u64;
    let mut flush_on_switch = false;
    let mut policy = DecodePolicy::Strict;
    let mut seed = 1u64;
    let mut corrupt = 0usize;
    let mut wild = 0usize;
    let mut truncate = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--app" => {
                app = Some(argv.next().ok_or("--app needs an application name")?);
            }
            "--streams" => {
                let value = argv
                    .next()
                    .ok_or("--streams needs a comma-separated list")?;
                streams = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if streams.is_empty() {
                    return Err("--streams needs at least one stream".to_owned());
                }
            }
            "--quantum" => {
                let value = argv.next().ok_or("--quantum needs a value")?;
                quantum = value
                    .parse::<u64>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad quantum {value:?} (want an integer >= 1)"))?;
            }
            "--flush-on-switch" => {
                flush_on_switch = true;
            }
            "--quarantine" => {
                let value = argv.next().ok_or("--quarantine needs <n|unlimited>")?;
                policy = match value.as_str() {
                    "unlimited" => DecodePolicy::lenient(),
                    n => DecodePolicy::quarantine(n.parse::<u64>().map_err(|_| {
                        format!("bad quarantine budget {n:?} (want an integer or \"unlimited\")")
                    })?),
                };
            }
            "--seed" => {
                let value = argv.next().ok_or("--seed needs a value")?;
                seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed {value:?}"))?;
            }
            "--corrupt" => {
                let value = argv.next().ok_or("--corrupt needs a count")?;
                corrupt = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad corrupt count {value:?}"))?;
            }
            "--wild" => {
                let value = argv.next().ok_or("--wild needs a count")?;
                wild = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad wild count {value:?}"))?;
            }
            "--truncate" => {
                truncate = true;
            }
            "--trace" => {
                trace = Some(PathBuf::from(
                    argv.next().ok_or("--trace needs a trace file path")?,
                ));
            }
            "--limit" => {
                let value = argv.next().ok_or("--limit needs a value")?;
                limit = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| format!("bad limit {value:?} (want an integer >= 1)"))?,
                );
            }
            "--scale" => {
                let value = argv.next().ok_or("--scale needs a value")?;
                scale = match value.as_str() {
                    "tiny" => Scale::TINY,
                    "small" => Scale::SMALL,
                    "standard" => Scale::STANDARD,
                    n => Scale::new(
                        n.parse::<u32>()
                            .map_err(|_| format!("bad scale {n:?}"))?
                            .max(1),
                    ),
                };
            }
            "--shards" => {
                let value = argv.next().ok_or("--shards needs a value")?;
                shards = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad shard count {value:?} (want an integer >= 1)"))?;
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(argv.next().ok_or("--csv needs a directory")?));
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out needs a path")?));
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        experiment: experiment.unwrap_or_else(|| "all".to_owned()),
        scale,
        shards,
        csv_dir,
        out,
        app,
        trace,
        limit,
        streams,
        quantum,
        flush_on_switch,
        policy,
        seed,
        corrupt,
        wild,
        truncate,
    })
}

fn run_record(args: &Args) -> Result<(), String> {
    let app = args
        .app
        .as_deref()
        .ok_or_else(|| format!("record needs --app <name>\n{}", usage()))?;
    let path = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("{app}.tlbt")));
    let summary =
        replay::record(app, args.scale, args.limit, &path).map_err(|e| format!("record: {e}"))?;
    println!("{}", summary.render());
    Ok(())
}

fn run_replay(args: &Args) -> Result<(), String> {
    let trace = args
        .trace
        .as_deref()
        .ok_or_else(|| format!("replay needs --trace <path>\n{}", usage()))?;
    let report = replay::replay_with_policy(trace, args.shards, args.policy)
        .map_err(|e| format!("replay: {e}"))?;
    emit("replay", report.render(), report.to_csv(), &args.csv_dir)
}

fn run_mix(args: &Args) -> Result<(), String> {
    if args.streams.is_empty() {
        return Err(format!("mix needs --streams <a,b,...>\n{}", usage()));
    }
    let report = mix::mix_with_policy(
        &args.streams,
        args.scale,
        args.quantum,
        args.flush_on_switch,
        args.shards,
        args.policy,
    )
    .map_err(|e| format!("mix: {e}"))?;
    emit("mix", report.render(), report.to_csv(), &args.csv_dir)
}

fn run_check(args: &Args) -> Result<(), String> {
    let trace = args
        .trace
        .as_deref()
        .ok_or_else(|| format!("check needs --trace <path>\n{}", usage()))?;
    let report = health::check(trace, args.policy).map_err(|e| format!("check: {e}"))?;
    println!("{}", report.render());
    if report.admitted {
        Ok(())
    } else {
        Err(format!(
            "check: {} fails the {} policy ({})",
            trace.display(),
            report.policy,
            report.health
        ))
    }
}

fn run_chaos(args: &Args) -> Result<(), String> {
    let trace = args
        .trace
        .as_deref()
        .ok_or_else(|| format!("chaos needs --trace <path>\n{}", usage()))?;
    let out = args
        .out
        .as_deref()
        .ok_or_else(|| format!("chaos needs --out <path>\n{}", usage()))?;
    if args.corrupt == 0 && args.wild == 0 && !args.truncate {
        return Err(format!(
            "chaos needs at least one of --corrupt/--wild/--truncate\n{}",
            usage()
        ));
    }
    let summary = health::bake(
        trace,
        out,
        args.seed,
        args.corrupt,
        args.wild,
        args.truncate,
    )
    .map_err(|e| format!("chaos: {e}"))?;
    println!("{}", summary.render());
    Ok(())
}

fn run_bench_json(out: &Option<PathBuf>) -> Result<(), String> {
    let report = throughput::run().map_err(|e| format!("bench-json: {e}"))?;
    println!("{}", report.render());
    let path = out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_throughput.json"));
    std::fs::write(&path, report.to_json()).map_err(|e| format!("writing {path:?}: {e}"))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

fn emit(
    name: &str,
    rendered: String,
    csv: String,
    csv_dir: &Option<PathBuf>,
) -> Result<(), String> {
    println!("{rendered}");
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn run_one(
    name: &str,
    scale: Scale,
    shards: usize,
    csv_dir: &Option<PathBuf>,
) -> Result<(), String> {
    let fail = |e: tlbsim_sim::SimError| format!("{name}: {e}");
    match name {
        "table1" => {
            let t = table1::run();
            emit(name, t.render(), t.to_csv(), csv_dir)
        }
        "table2" => {
            let t = table2::run_sharded(scale, shards).map_err(fail)?;
            emit(name, t.render(), t.to_csv(), csv_dir)
        }
        "table3" => {
            let t = table3::run(scale).map_err(fail)?;
            emit(name, t.render(), t.to_csv(), csv_dir)
        }
        "figure7" => {
            let f = figure7::run_sharded(scale, shards).map_err(fail)?;
            emit(name, f.render(), f.to_csv(), csv_dir)
        }
        "figure8" => {
            let f = figure8::run_sharded(scale, shards).map_err(fail)?;
            emit(name, f.render(), f.to_csv(), csv_dir)
        }
        "figure9" => {
            let f = figure9::run(scale).map_err(fail)?;
            emit(name, f.render(), f.to_csv(), csv_dir)
        }
        "extras" => {
            let e = extras::run(scale).map_err(fail)?;
            emit(name, e.render(), e.to_csv(), csv_dir)
        }
        other => Err(format!("unknown experiment {other:?}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(outcome) = match args.experiment.as_str() {
        "bench-json" => Some(run_bench_json(&args.out)),
        "record" => Some(run_record(&args)),
        "replay" => Some(run_replay(&args)),
        "mix" => Some(run_mix(&args)),
        "check" => Some(run_check(&args)),
        "chaos" => Some(run_chaos(&args)),
        _ => None,
    } {
        return match outcome {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    let experiments: Vec<&str> = if args.experiment == "all" {
        vec![
            "table1", "figure7", "figure8", "table2", "table3", "figure9", "extras",
        ]
    } else {
        vec![args.experiment.as_str()]
    };
    let sharding = if args.shards > 1 {
        format!(" with {} shards per run", args.shards)
    } else {
        String::new()
    };
    eprintln!(
        "running {} at scale {}{sharding} …",
        experiments.join(", "),
        args.scale
    );
    for name in experiments {
        let started = std::time::Instant::now();
        if let Err(message) = run_one(name, args.scale, args.shards, &args.csv_dir) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
        eprintln!("{name} done in {:.1?}", started.elapsed());
    }
    ExitCode::SUCCESS
}
