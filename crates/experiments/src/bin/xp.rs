//! `xp` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! xp <table1|table2|table3|figure7|figure8|figure9|extras|all>
//!    [--scale tiny|small|standard|<factor>]
//!    [--shards <n>]
//!    [--csv <dir>]
//! xp record --app <name> [--scale <s>] [--limit <n>] [--out <path>]
//!           [--format v1|v2] [--block-len <n>]
//! xp replay --trace <path> [--shards <n>] [--quarantine <n|unlimited>]
//!           [--stream-window <blocks>] [--csv <dir>]
//! xp mix --streams <a,b,…> [--quantum <n>] [--switch-policy none|flush|asid]
//!        [--asid-contexts <n>] [--table-policy shared|partitioned]
//!        [--scale <s>] [--shards <n>] [--quarantine <n|unlimited>] [--csv <dir>]
//! xp check --trace <path> [--quarantine <n|unlimited>]
//! xp chaos --trace <path> --out <path> [--seed <n>] [--corrupt <k>]
//!          [--wild <k>] [--truncate]
//! xp bench-json [--out <path>]
//! xp serve [--socket <path>] [--workers <n>] [--queue-depth <n>]
//! xp submit (--trace <path> | --app <name>) [--socket <path>]
//!           [--scheme none|sp|asp|mp|rp|dp] [--scale <s>] [--shards <n|auto>]
//!           [--quarantine <n|unlimited>] [--snapshot-every <n>]
//! xp shutdown [--socket <path>] [--no-drain]
//! xp convert --trace <path> --out <path> [--format v1|v2|text] [--block-len <n>]
//! xp tracestat <paths...> [--quarantine <n|unlimited>] [--csv <dir>]
//! ```
//!
//! `--shards <n|auto>` switches the accuracy-grid drivers (figure7,
//! figure8, table2) — and `replay`/`mix` — from job-level parallelism to
//! intra-run sharding: jobs run one at a time, each partitioned across
//! `n` worker shards (`tlbsim_sim::run_app_sharded`) — the mode for very
//! large `--scale` runs where a single job should own the whole machine.
//! `auto` resolves per run from the machine's available parallelism,
//! clamped so no shard's slice falls below a useful minimum
//! (`tlbsim_sim::auto_shard_count`). The other experiments ignore the
//! flag. `--shards 1` is bit-identical to the default.
//!
//! `serve` runs the simulation daemon (`tlbsim_service::Server`) on a
//! Unix-domain socket until a client asks it to shut down; `submit`
//! connects as a client, runs one job (a recorded trace or a registered
//! application under the chosen scheme) and prints the final statistics
//! plus any incremental snapshots; `shutdown` stops a running daemon,
//! draining queued jobs unless `--no-drain`. The framing and job model
//! are specified normatively in `docs/PROTOCOL.md`.
//!
//! `convert` translates traces between the three on-disk formats (flat
//! v1 binary, block-compressed v2 binary, line-oriented text). The
//! *input* format is sniffed from the file's magic bytes and version;
//! the *output* format is `--format v1|v2|text`, defaulting to the old
//! sniffed behaviour (any binary becomes text, text becomes v1) so the
//! bare command stays its own inverse.
//!
//! `record` dumps a registered application model's reference stream to
//! the binary `TLBT` trace format — flat v1 by default, or delta-block
//! v2 with `--format v2 [--block-len <records>]`; `replay` runs the
//! figure grids' 30-scheme sweep over any such trace, mmap-replayed
//! zero-copy (v1) or block-decoded (v2, sniffed). `--stream-window
//! <blocks>` replays a v2 trace through a sliding window of mapped
//! blocks instead of one whole-file mapping, so traces larger than RAM
//! replay in bounded memory.
//!
//! `tracestat` summarizes a trace corpus file-by-file: records and kind
//! mix, unique-page footprint, bytes/record against the flat encoding,
//! and the damage census under the selected `--quarantine` policy.
//!
//! `mix` interleaves several streams — registered application names
//! and/or `TLBT` trace paths, comma-separated — into one multiprogrammed
//! stream under a round-robin `--quantum` (default 50000 accesses) and
//! runs the same 30-scheme sweep over the interleave, printing aggregate
//! and per-stream prediction accuracy. `--switch-policy` picks the
//! context-switch semantics: `none` keeps all state across switches,
//! `flush` empties the TLB, prefetch buffer and prediction tables at
//! every switch (the paper's §4 scenario; `--flush-on-switch` is the
//! older spelling), and `asid` retags state per stream so switches are
//! flush-free — `--asid-contexts <n>` caps the live contexts (default:
//! all streams) and `--table-policy partitioned` gives each stream
//! private prediction tables instead of shared competitive ones.
//! `--shards` partitions each run across workers at switch boundaries
//! (or whole streams, for eviction-free partitioned ASID runs).
//!
//! `--quarantine <n|unlimited>` replays a damaged trace anyway: up to
//! `n` unparseable records are skipped (and counted in the report)
//! instead of aborting the run. The default is strict decode — any
//! damage is a one-line typed error and a nonzero exit.
//!
//! `check` censuses a trace's damage (decodable records, bad records,
//! torn tail) and exits nonzero if the selected policy would reject it
//! — the CI preflight for trace artifacts. `chaos` bakes a
//! deterministic seeded fault plan into a copy of a clean trace, so a
//! corrupt input can be manufactured reproducibly from the command
//! line.
//!
//! `bench-json` measures simulator throughput (accesses/sec per scheme,
//! the DP miss-path microbench, sharded-vs-sequential scaling of a
//! figure-scale DP run, mmap trace replay vs the generator, and
//! daemon-served trace ingest vs in-process batch replay) and writes
//! `BENCH_throughput.json` — the perf-trajectory telemetry successive
//! PRs compare against.

use std::path::PathBuf;
use std::process::ExitCode;

use tlbsim_core::{ConfidenceConfig, PrefetcherConfig, PrefetcherKind};
use tlbsim_experiments::{
    extras, figure7, figure8, figure9, health, mix, replay, table1, table2, table3, throughput,
    tracestat,
};
use tlbsim_service::{Client, JobSpec, Server, ServerConfig};
use tlbsim_sim::{SwitchPolicy, TablePolicy};
use tlbsim_trace::{
    BinaryTraceReader, BinaryTraceWriter, DecodePolicy, TextTraceReader, TextTraceWriter, V2Trace,
    V2TraceWriter, DEFAULT_BLOCK_LEN, MAGIC, V2_VERSION,
};
use tlbsim_workloads::Scale;

struct Args {
    experiment: String,
    scale: Scale,
    shards: usize,
    csv_dir: Option<PathBuf>,
    out: Option<PathBuf>,
    app: Option<String>,
    trace: Option<PathBuf>,
    limit: Option<u64>,
    streams: Vec<String>,
    quantum: u64,
    switch_policy: String,
    asid_contexts: usize,
    table_policy: String,
    policy: DecodePolicy,
    seed: u64,
    corrupt: usize,
    wild: usize,
    truncate: bool,
    socket: PathBuf,
    workers: usize,
    queue_depth: usize,
    scheme: String,
    snapshot_every: u64,
    no_drain: bool,
    format: Option<String>,
    block_len: Option<u32>,
    stream_window: Option<u64>,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: xp <table1|table2|table3|figure7|figure8|figure9|extras|all> \
     [--scale tiny|small|standard|<factor>] [--shards <n|auto>] [--csv <dir>]\n       \
     xp record --app <name> [--scale <s>] [--limit <n>] [--out <path>] \
     [--format v1|v2] [--block-len <n>]\n       \
     xp replay --trace <path> [--shards <n|auto>] [--quarantine <n|unlimited>] \
     [--stream-window <blocks>] [--csv <dir>]\n       \
     xp mix --streams <a,b,...> [--quantum <n>] [--switch-policy none|flush|asid] \
     [--asid-contexts <n>] [--table-policy shared|partitioned] \
     [--scale <s>] [--shards <n|auto>] [--quarantine <n|unlimited>] [--csv <dir>]\n       \
     xp check --trace <path> [--quarantine <n|unlimited>]\n       \
     xp chaos --trace <path> --out <path> [--seed <n>] [--corrupt <k>] \
     [--wild <k>] [--truncate]\n       \
     xp bench-json [--out <path>]\n       \
     xp serve [--socket <path>] [--workers <n>] [--queue-depth <n>]\n       \
     xp submit (--trace <path> | --app <name>) [--socket <path>] \
     [--scheme none|sp|asp|mp|rp|dp|tp[,<w>]|ep[:a+b]|c+<base>] [--scale <s>] [--shards <n|auto>] \
     [--quarantine <n|unlimited>] [--snapshot-every <n>]\n       \
     xp shutdown [--socket <path>] [--no-drain]\n       \
     xp convert --trace <path> --out <path> [--format v1|v2|text] [--block-len <n>]\n       \
     xp tracestat <paths...> [--quarantine <n|unlimited>] [--csv <dir>]"
}

/// Default daemon socket: stable per user+machine, in the temp dir.
fn default_socket() -> PathBuf {
    std::env::temp_dir().join("tlbsim.sock")
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut scale = Scale::STANDARD;
    let mut shards = 1usize;
    let mut csv_dir = None;
    let mut out = None;
    let mut app = None;
    let mut trace = None;
    let mut limit = None;
    let mut streams = Vec::new();
    let mut quantum = 50_000u64;
    let mut switch_policy = "none".to_owned();
    let mut asid_contexts = 0usize;
    let mut table_policy = "shared".to_owned();
    let mut policy = DecodePolicy::Strict;
    let mut seed = 1u64;
    let mut corrupt = 0usize;
    let mut wild = 0usize;
    let mut truncate = false;
    let mut socket = default_socket();
    let mut workers = 0usize;
    let mut queue_depth = 64usize;
    let mut scheme = "dp".to_owned();
    let mut snapshot_every = 0u64;
    let mut no_drain = false;
    let mut format = None;
    let mut block_len = None;
    let mut stream_window = None;
    let mut paths = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--app" => {
                app = Some(argv.next().ok_or("--app needs an application name")?);
            }
            "--streams" => {
                let value = argv
                    .next()
                    .ok_or("--streams needs a comma-separated list")?;
                streams = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if streams.is_empty() {
                    return Err("--streams needs at least one stream".to_owned());
                }
            }
            "--quantum" => {
                let value = argv.next().ok_or("--quantum needs a value")?;
                quantum = value
                    .parse::<u64>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad quantum {value:?} (want an integer >= 1)"))?;
            }
            "--switch-policy" => {
                let value = argv
                    .next()
                    .ok_or("--switch-policy needs <none|flush|asid>")?;
                match value.as_str() {
                    "none" | "flush" | "asid" => switch_policy = value,
                    other => {
                        return Err(format!(
                            "bad switch policy {other:?} (want \"none\", \"flush\" or \"asid\")"
                        ))
                    }
                }
            }
            // Older spelling of `--switch-policy flush`, kept for scripts.
            "--flush-on-switch" => {
                switch_policy = "flush".to_owned();
            }
            "--asid-contexts" => {
                let value = argv.next().ok_or("--asid-contexts needs a count")?;
                asid_contexts = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad context count {value:?} (want an integer >= 1)"))?;
            }
            "--table-policy" => {
                let value = argv
                    .next()
                    .ok_or("--table-policy needs <shared|partitioned>")?;
                match value.as_str() {
                    "shared" | "partitioned" => table_policy = value,
                    other => {
                        return Err(format!(
                            "bad table policy {other:?} (want \"shared\" or \"partitioned\")"
                        ))
                    }
                }
            }
            "--quarantine" => {
                let value = argv.next().ok_or("--quarantine needs <n|unlimited>")?;
                policy = match value.as_str() {
                    "unlimited" => DecodePolicy::lenient(),
                    n => DecodePolicy::quarantine(n.parse::<u64>().map_err(|_| {
                        format!("bad quarantine budget {n:?} (want an integer or \"unlimited\")")
                    })?),
                };
            }
            "--seed" => {
                let value = argv.next().ok_or("--seed needs a value")?;
                seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed {value:?}"))?;
            }
            "--corrupt" => {
                let value = argv.next().ok_or("--corrupt needs a count")?;
                corrupt = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad corrupt count {value:?}"))?;
            }
            "--wild" => {
                let value = argv.next().ok_or("--wild needs a count")?;
                wild = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad wild count {value:?}"))?;
            }
            "--truncate" => {
                truncate = true;
            }
            "--trace" => {
                trace = Some(PathBuf::from(
                    argv.next().ok_or("--trace needs a trace file path")?,
                ));
            }
            "--limit" => {
                let value = argv.next().ok_or("--limit needs a value")?;
                limit = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| format!("bad limit {value:?} (want an integer >= 1)"))?,
                );
            }
            "--scale" => {
                let value = argv.next().ok_or("--scale needs a value")?;
                scale = match value.as_str() {
                    "tiny" => Scale::TINY,
                    "small" => Scale::SMALL,
                    "standard" => Scale::STANDARD,
                    n => Scale::new(
                        n.parse::<u32>()
                            .map_err(|_| format!("bad scale {n:?}"))?
                            .max(1),
                    ),
                };
            }
            "--shards" => {
                let value = argv.next().ok_or("--shards needs <n|auto>")?;
                // 0 is the internal "auto" sentinel (resolved per run by
                // `tlbsim_sim::resolve_shards`); only the word spells it.
                shards = match value.as_str() {
                    "auto" => 0,
                    n => n.parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("bad shard count {n:?} (want an integer >= 1, or \"auto\")")
                    })?,
                };
            }
            "--socket" => {
                socket = PathBuf::from(argv.next().ok_or("--socket needs a path")?);
            }
            "--workers" => {
                let value = argv.next().ok_or("--workers needs a count")?;
                workers = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad worker count {value:?}"))?;
            }
            "--queue-depth" => {
                let value = argv.next().ok_or("--queue-depth needs a count")?;
                queue_depth = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad queue depth {value:?} (want an integer >= 1)"))?;
            }
            "--scheme" => {
                scheme = argv.next().ok_or("--scheme needs a scheme name")?;
            }
            "--snapshot-every" => {
                let value = argv.next().ok_or("--snapshot-every needs a cadence")?;
                snapshot_every = value
                    .parse::<u64>()
                    .map_err(|_| format!("bad snapshot cadence {value:?}"))?;
            }
            "--no-drain" => {
                no_drain = true;
            }
            "--format" => {
                let value = argv.next().ok_or("--format needs <v1|v2|text>")?;
                match value.as_str() {
                    "v1" | "v2" | "text" => format = Some(value),
                    other => {
                        return Err(format!(
                            "bad format {other:?} (want \"v1\", \"v2\" or \"text\")"
                        ))
                    }
                }
            }
            "--block-len" => {
                let value = argv.next().ok_or("--block-len needs a record count")?;
                block_len = Some(
                    value
                        .parse::<u32>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| {
                            format!("bad block length {value:?} (want an integer >= 1)")
                        })?,
                );
            }
            "--stream-window" => {
                let value = argv.next().ok_or("--stream-window needs a block count")?;
                stream_window = Some(value.parse::<u64>().ok().filter(|n| *n >= 1).ok_or_else(
                    || format!("bad stream window {value:?} (want an integer >= 1)"),
                )?);
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(argv.next().ok_or("--csv needs a directory")?));
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out needs a path")?));
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_owned());
            }
            // `tracestat` takes trailing bare paths: every later
            // non-flag word is a trace file to summarize.
            other if experiment.as_deref() == Some("tracestat") && !other.starts_with('-') => {
                paths.push(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        experiment: experiment.unwrap_or_else(|| "all".to_owned()),
        scale,
        shards,
        csv_dir,
        out,
        app,
        trace,
        limit,
        streams,
        quantum,
        switch_policy,
        asid_contexts,
        table_policy,
        policy,
        seed,
        corrupt,
        wild,
        truncate,
        socket,
        workers,
        queue_depth,
        scheme,
        snapshot_every,
        no_drain,
        format,
        block_len,
        stream_window,
        paths,
    })
}

/// Resolves `--format`/`--block-len` into a [`replay::RecordFormat`]
/// for the binary-writing commands (`record`, and `convert`'s binary
/// outputs). `--block-len` without v2 is a contradiction, not a silent
/// no-op.
fn parse_record_format(args: &Args) -> Result<replay::RecordFormat, String> {
    match args.format.as_deref() {
        Some("v2") => Ok(replay::RecordFormat::V2 {
            block_len: args.block_len.unwrap_or(DEFAULT_BLOCK_LEN),
        }),
        None | Some("v1") => {
            if args.block_len.is_some() {
                Err("--block-len only applies to --format v2".to_owned())
            } else {
                Ok(replay::RecordFormat::V1)
            }
        }
        Some(other) => Err(format!("--format {other} is not a binary trace format")),
    }
}

fn run_record(args: &Args) -> Result<(), String> {
    let app = args
        .app
        .as_deref()
        .ok_or_else(|| format!("record needs --app <name>\n{}", usage()))?;
    let path = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("{app}.tlbt")));
    if args.format.as_deref() == Some("text") {
        return Err(format!(
            "record writes binary traces (use `xp convert` for text)\n{}",
            usage()
        ));
    }
    let format = parse_record_format(args)?;
    let summary = replay::record_with_format(app, args.scale, args.limit, &path, format)
        .map_err(|e| format!("record: {e}"))?;
    println!("{}", summary.render());
    Ok(())
}

fn run_replay(args: &Args) -> Result<(), String> {
    let trace = args
        .trace
        .as_deref()
        .ok_or_else(|| format!("replay needs --trace <path>\n{}", usage()))?;
    let report = replay::replay_with_options(trace, args.shards, args.policy, args.stream_window)
        .map_err(|e| format!("replay: {e}"))?;
    emit("replay", report.render(), report.to_csv(), &args.csv_dir)
}

fn run_tracestat(args: &Args) -> Result<(), String> {
    if args.paths.is_empty() {
        return Err(format!("tracestat needs at least one path\n{}", usage()));
    }
    let mut rows = vec![tracestat::csv_header().to_owned()];
    let mut stats = Vec::with_capacity(args.paths.len());
    for path in &args.paths {
        let stat = tracestat::stat(path, args.policy)
            .map_err(|e| format!("tracestat: {}: {e}", path.display()))?;
        println!("{}", stat.render());
        rows.push(stat.to_csv_row());
        stats.push(stat);
    }
    if stats.len() > 1 {
        let corpus = tracestat::CorpusStat::from_stats(&stats);
        println!("{}", corpus.render());
        rows.push(corpus.to_csv_row());
    }
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
        let path = dir.join("tracestat.csv");
        let mut csv = rows.join("\n");
        csv.push('\n');
        std::fs::write(&path, csv).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn run_mix(args: &Args) -> Result<(), String> {
    if args.streams.is_empty() {
        return Err(format!("mix needs --streams <a,b,...>\n{}", usage()));
    }
    let switch_policy = match args.switch_policy.as_str() {
        "none" => SwitchPolicy::None,
        "flush" => SwitchPolicy::FlushOnSwitch,
        "asid" => SwitchPolicy::Asid {
            // Default: every stream keeps a live context — fully
            // flush-free. `--asid-contexts` squeezes that down.
            contexts: if args.asid_contexts == 0 {
                args.streams.len()
            } else {
                args.asid_contexts
            },
            tables: match args.table_policy.as_str() {
                "partitioned" => TablePolicy::Partitioned,
                _ => TablePolicy::Shared,
            },
        },
        other => return Err(format!("bad switch policy {other:?}\n{}", usage())),
    };
    let report = mix::mix_with_policy(
        &args.streams,
        args.scale,
        args.quantum,
        switch_policy,
        args.shards,
        args.policy,
    )
    .map_err(|e| format!("mix: {e}"))?;
    emit("mix", report.render(), report.to_csv(), &args.csv_dir)
}

fn run_check(args: &Args) -> Result<(), String> {
    let trace = args
        .trace
        .as_deref()
        .ok_or_else(|| format!("check needs --trace <path>\n{}", usage()))?;
    let report = health::check(trace, args.policy).map_err(|e| format!("check: {e}"))?;
    println!("{}", report.render());
    if report.admitted {
        Ok(())
    } else {
        Err(format!(
            "check: {} fails the {} policy ({})",
            trace.display(),
            report.policy,
            report.health
        ))
    }
}

fn run_chaos(args: &Args) -> Result<(), String> {
    let trace = args
        .trace
        .as_deref()
        .ok_or_else(|| format!("chaos needs --trace <path>\n{}", usage()))?;
    let out = args
        .out
        .as_deref()
        .ok_or_else(|| format!("chaos needs --out <path>\n{}", usage()))?;
    if args.corrupt == 0 && args.wild == 0 && !args.truncate {
        return Err(format!(
            "chaos needs at least one of --corrupt/--wild/--truncate\n{}",
            usage()
        ));
    }
    let summary = health::bake(
        trace,
        out,
        args.seed,
        args.corrupt,
        args.wild,
        args.truncate,
    )
    .map_err(|e| format!("chaos: {e}"))?;
    println!("{}", summary.render());
    Ok(())
}

fn run_bench_json(out: &Option<PathBuf>) -> Result<(), String> {
    let report = throughput::run().map_err(|e| format!("bench-json: {e}"))?;
    println!("{}", report.render());
    let path = out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_throughput.json"));
    std::fs::write(&path, report.to_json()).map_err(|e| format!("writing {path:?}: {e}"))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

const SCHEME_HINT: &str = "want none|sp|asp|mp|rp|dp|tp[,<window>]|ep[:<a>+<b>+...]|c+<base>";

/// Base mechanism kinds addressable as ensemble components.
fn parse_base_kind(name: &str) -> Option<PrefetcherKind> {
    match name {
        "sp" | "sequential" => Some(PrefetcherKind::Sequential),
        "asp" | "stride" => Some(PrefetcherKind::Stride),
        "mp" | "markov" => Some(PrefetcherKind::Markov),
        "rp" | "recency" => Some(PrefetcherKind::Recency),
        "dp" | "distance" => Some(PrefetcherKind::Distance),
        _ => None,
    }
}

fn parse_scheme(name: &str) -> Result<PrefetcherConfig, String> {
    let lower = name.to_ascii_lowercase();
    if let Some(base) = lower.strip_prefix("c+") {
        let mut cfg = parse_scheme(base)?;
        cfg.confidence(ConfidenceConfig::adaptive());
        return Ok(cfg);
    }
    if lower == "ep" {
        // Default duel: the paper's two strongest contenders.
        return Ok(PrefetcherConfig::ensemble_of(&[
            PrefetcherKind::Distance,
            PrefetcherKind::Stride,
        ]));
    }
    if let Some(list) = lower.strip_prefix("ep:") {
        let mut kinds = Vec::new();
        for part in list.split('+') {
            kinds.push(
                parse_base_kind(part).ok_or_else(|| {
                    format!("unknown ensemble component {part:?} ({SCHEME_HINT})")
                })?,
            );
        }
        return Ok(PrefetcherConfig::ensemble_of(&kinds));
    }
    if lower == "tp" || lower.starts_with("tp,") {
        let mut cfg = PrefetcherConfig::trend_stride();
        if let Some(w) = lower.strip_prefix("tp,") {
            let window = w
                .parse::<usize>()
                .map_err(|_| format!("bad trend window {w:?} ({SCHEME_HINT})"))?;
            cfg.window(window);
        }
        return Ok(cfg);
    }
    match lower.as_str() {
        "none" => Ok(PrefetcherConfig::none()),
        "trend" => Ok(PrefetcherConfig::trend_stride()),
        other => match parse_base_kind(other) {
            Some(kind) => Ok(PrefetcherConfig::new(kind)),
            None => Err(format!("unknown scheme {other:?} ({SCHEME_HINT})")),
        },
    }
}

fn run_serve(args: &Args) -> Result<(), String> {
    let server = Server::bind(
        &args.socket,
        ServerConfig {
            workers: args.workers,
            queue_depth: args.queue_depth,
        },
    )
    .map_err(|e| format!("serve: binding {}: {e}", args.socket.display()))?;
    let workers = if args.workers == 0 {
        "auto".to_owned()
    } else {
        args.workers.to_string()
    };
    eprintln!(
        "tlbsim daemon listening on {} (workers {workers}, queue depth {})",
        server.path().display(),
        args.queue_depth
    );
    server.run().map_err(|e| format!("serve: {e}"))
}

fn run_submit(args: &Args) -> Result<(), String> {
    let mut job = match (&args.trace, &args.app) {
        (Some(trace), None) => JobSpec::trace(trace.display().to_string()),
        (None, Some(app)) => JobSpec::app(app.clone()),
        _ => {
            return Err(format!(
                "submit needs exactly one of --trace <path> / --app <name>\n{}",
                usage()
            ))
        }
    };
    job.scheme = parse_scheme(&args.scheme)?;
    job.scale = args.scale;
    job.shards = u32::try_from(args.shards).map_err(|_| "shard count overflows u32".to_owned())?;
    job.policy = args.policy;
    job.snapshot_every = args.snapshot_every;
    let mut client = Client::connect(&args.socket)
        .map_err(|e| format!("submit: connecting {}: {e}", args.socket.display()))?;
    let outcome = client
        .run_job(1, &job)
        .map_err(|e| format!("submit: {e}"))?;
    println!(
        "job done: {} accesses across {} shard(s), scheme {}",
        outcome.stream_len,
        outcome.shards,
        job.scheme.label()
    );
    println!(
        "accuracy {:.3}  miss rate {:.4}  (misses {}, prefetch buffer hits {})",
        outcome.stats.accuracy(),
        outcome.stats.miss_rate(),
        outcome.stats.misses,
        outcome.stats.prefetch_buffer_hits
    );
    if !outcome.snapshots.is_empty() {
        println!(
            "snapshots: {} (cadence {})",
            outcome.snapshots.len(),
            job.snapshot_every
        );
    }
    let health = &outcome.health;
    if health.retries != 0 || health.degraded_shards != 0 || health.quarantined_records != 0 {
        println!(
            "health: {} retries, {} degraded shards, {} quarantined records",
            health.retries, health.degraded_shards, health.quarantined_records
        );
    }
    Ok(())
}

fn run_shutdown(args: &Args) -> Result<(), String> {
    let mut client = Client::connect(&args.socket)
        .map_err(|e| format!("shutdown: connecting {}: {e}", args.socket.display()))?;
    client
        .shutdown(!args.no_drain)
        .map_err(|e| format!("shutdown: {e}"))?;
    eprintln!(
        "daemon at {} shutting down ({})",
        args.socket.display(),
        if args.no_drain {
            "queued jobs failed"
        } else {
            "draining queued jobs"
        }
    );
    Ok(())
}

fn run_convert(args: &Args) -> Result<(), String> {
    use std::io::{BufWriter, Read as _};
    use tlbsim_core::MemoryAccess;
    use tlbsim_trace::TraceError;

    enum Sink {
        Text(TextTraceWriter<BufWriter<std::fs::File>>),
        V1(BinaryTraceWriter<BufWriter<std::fs::File>>),
        V2(V2TraceWriter<std::fs::File>),
    }

    let input = args
        .trace
        .as_deref()
        .ok_or_else(|| format!("convert needs --trace <path>\n{}", usage()))?;
    let out = args
        .out
        .as_deref()
        .ok_or_else(|| format!("convert needs --out <path>\n{}", usage()))?;
    let open = |path: &std::path::Path| {
        std::fs::File::open(path).map_err(|e| format!("convert: opening {}: {e}", path.display()))
    };
    let create = |path: &std::path::Path| {
        std::fs::File::create(path)
            .map_err(|e| format!("convert: creating {}: {e}", path.display()))
    };
    let read_fail = |e: TraceError| format!("convert: reading {}: {e}", input.display());
    let write_fail = |e: TraceError| format!("convert: writing {}: {e}", out.display());

    // Sniff the input: the TLBT magic plus its version word, anything
    // else is text (version 0 stands for "text" below — no binary
    // format ever used it).
    let mut head = [0u8; 6];
    let sniffed: u16 = {
        let mut file = open(input)?;
        if file.read_exact(&mut head).is_ok() && head[0..4] == MAGIC {
            u16::from_le_bytes([head[4], head[5]])
        } else {
            0
        }
    };
    let src_label = match sniffed {
        0 => "text",
        1 => "TLBT v1",
        V2_VERSION => "TLBT v2",
        _ => "TLBT",
    };

    // Output format: explicit --format, else the legacy sniffed
    // default (binary -> text, text -> v1) that keeps the bare command
    // its own inverse.
    let target = match args.format.as_deref() {
        Some(f) => f,
        None if sniffed == 0 => "v1",
        None => "text",
    };
    if target != "v2" && args.block_len.is_some() {
        return Err("--block-len only applies to --format v2".to_owned());
    }

    let source: Box<dyn Iterator<Item = Result<MemoryAccess, TraceError>>> = match sniffed {
        0 => Box::new(TextTraceReader::open(open(input)?)),
        V2_VERSION => Box::new(V2Trace::open(input).map_err(read_fail)?.cursor()),
        // v1 — and any future version, which the reader rejects with a
        // typed "unsupported trace version" instead of us guessing.
        _ => Box::new(BinaryTraceReader::open(open(input)?).map_err(read_fail)?),
    };

    let mut sink = match target {
        "text" => {
            let mut writer = TextTraceWriter::create(BufWriter::new(create(out)?));
            writer
                .comment(&format!("converted from {}", input.display()))
                .map_err(write_fail)?;
            Sink::Text(writer)
        }
        "v1" => {
            Sink::V1(BinaryTraceWriter::create(BufWriter::new(create(out)?)).map_err(write_fail)?)
        }
        "v2" => Sink::V2(
            V2TraceWriter::create_with_block_len(
                create(out)?,
                args.block_len.unwrap_or(DEFAULT_BLOCK_LEN),
            )
            .map_err(write_fail)?,
        ),
        other => return Err(format!("bad format {other:?}\n{}", usage())),
    };

    for record in source {
        let record = record.map_err(read_fail)?;
        match &mut sink {
            Sink::Text(w) => w.write(&record).map_err(write_fail)?,
            Sink::V1(w) => w.write(&record).map_err(write_fail)?,
            Sink::V2(w) => w.write(&record).map_err(write_fail)?,
        }
    }
    let records = match sink {
        Sink::Text(w) => {
            let records = w.records_written();
            w.finish().map_err(write_fail)?;
            records
        }
        Sink::V1(w) => {
            let records = w.records_written();
            w.finish().map_err(write_fail)?;
            records
        }
        Sink::V2(w) => {
            let records = w.records_written();
            w.finish().map_err(write_fail)?;
            records
        }
    };
    println!(
        "converted {} -> {} ({src_label} -> {target}, {records} records)",
        input.display(),
        out.display()
    );
    Ok(())
}

fn emit(
    name: &str,
    rendered: String,
    csv: String,
    csv_dir: &Option<PathBuf>,
) -> Result<(), String> {
    println!("{rendered}");
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn run_one(
    name: &str,
    scale: Scale,
    shards: usize,
    csv_dir: &Option<PathBuf>,
) -> Result<(), String> {
    let fail = |e: tlbsim_sim::SimError| format!("{name}: {e}");
    // Grid streams at any real --scale sit far past the auto clamp's
    // minimum slice, so "auto" resolves to the machine's parallelism.
    let shards = tlbsim_sim::resolve_shards(shards, u64::MAX);
    match name {
        "table1" => {
            let t = table1::run();
            emit(name, t.render(), t.to_csv(), csv_dir)
        }
        "table2" => {
            let t = table2::run_sharded(scale, shards).map_err(fail)?;
            emit(name, t.render(), t.to_csv(), csv_dir)
        }
        "table3" => {
            let t = table3::run(scale).map_err(fail)?;
            emit(name, t.render(), t.to_csv(), csv_dir)
        }
        "figure7" => {
            let f = figure7::run_sharded(scale, shards).map_err(fail)?;
            emit(name, f.render(), f.to_csv(), csv_dir)
        }
        "figure8" => {
            let f = figure8::run_sharded(scale, shards).map_err(fail)?;
            emit(name, f.render(), f.to_csv(), csv_dir)
        }
        "figure9" => {
            let f = figure9::run(scale).map_err(fail)?;
            emit(name, f.render(), f.to_csv(), csv_dir)
        }
        "extras" => {
            let e = extras::run(scale).map_err(fail)?;
            emit(name, e.render(), e.to_csv(), csv_dir)
        }
        other => Err(format!("unknown experiment {other:?}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(outcome) = match args.experiment.as_str() {
        "bench-json" => Some(run_bench_json(&args.out)),
        "record" => Some(run_record(&args)),
        "replay" => Some(run_replay(&args)),
        "mix" => Some(run_mix(&args)),
        "check" => Some(run_check(&args)),
        "chaos" => Some(run_chaos(&args)),
        "serve" => Some(run_serve(&args)),
        "submit" => Some(run_submit(&args)),
        "shutdown" => Some(run_shutdown(&args)),
        "convert" => Some(run_convert(&args)),
        "tracestat" => Some(run_tracestat(&args)),
        _ => None,
    } {
        return match outcome {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    let experiments: Vec<&str> = if args.experiment == "all" {
        vec![
            "table1", "figure7", "figure8", "table2", "table3", "figure9", "extras",
        ]
    } else {
        vec![args.experiment.as_str()]
    };
    let sharding = match args.shards {
        0 => " with auto worker shards per run".to_owned(),
        1 => String::new(),
        n => format!(" with {n} shards per run"),
    };
    eprintln!(
        "running {} at scale {}{sharding} …",
        experiments.join(", "),
        args.scale
    );
    for name in experiments {
        let started = std::time::Instant::now();
        if let Err(message) = run_one(name, args.scale, args.shards, &args.csv_dir) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
        eprintln!("{name} done in {:.1?}", started.elapsed());
    }
    ExitCode::SUCCESS
}
