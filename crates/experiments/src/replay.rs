//! Trace recording and replay drivers (`xp record` / `xp replay`).
//!
//! The paper's methodology is trace-driven: applications are traced,
//! fast-forwarded, then simulated. This module closes that loop for the
//! reproduction — [`record`] dumps any registered [`AppSpec`] model to
//! the binary `TLBT` format, and [`replay`] runs the figure grids'
//! scheme sweep over a recorded trace, mmap-replayed at generator speed
//! (sequential job-parallel, or intra-run sharded with `--shards`).
//! A trace produced by an external tracer replays identically: the
//! format is the contract, not the generator.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tlbsim_core::MemoryAccess;
use tlbsim_sim::{resolve_shards, run_app_sharded, sweep, SimConfig, SimError, SweepJob};
use tlbsim_trace::{BinaryTraceWriter, DecodePolicy, TraceError, TraceHealth, V2TraceWriter};
use tlbsim_workloads::{find_app, AppSpec, Scale, TraceWorkload};

use crate::grid::{paper_scheme_grid, GridCell};
use crate::report::{fmt3, fmt4, TextTable};

/// Errors from the record/replay/mix drivers.
#[derive(Debug)]
pub enum ReplayError {
    /// The named application is not registered.
    UnknownApp(String),
    /// A simulation error (invalid configuration).
    Sim(SimError),
    /// A trace encode/decode error.
    Trace(TraceError),
    /// An I/O failure on the trace file.
    Io(io::Error),
    /// A malformed multiprogrammed mix (see [`crate::mix`]).
    Mix(tlbsim_workloads::MixError),
    /// An unsatisfiable chaos plan (see [`crate::health::bake`]).
    Chaos(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownApp(name) => {
                write!(f, "unknown application {name:?} (see `all_apps`)")
            }
            ReplayError::Sim(e) => write!(f, "{e}"),
            ReplayError::Trace(e) => write!(f, "{e}"),
            ReplayError::Io(e) => write!(f, "trace file i/o: {e}"),
            ReplayError::Mix(e) => write!(f, "{e}"),
            ReplayError::Chaos(why) => write!(f, "unsatisfiable chaos plan: {why}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SimError> for ReplayError {
    fn from(e: SimError) -> Self {
        ReplayError::Sim(e)
    }
}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Trace(e)
    }
}

impl From<io::Error> for ReplayError {
    fn from(e: io::Error) -> Self {
        ReplayError::Io(e)
    }
}

/// On-disk format selector for [`record`] (`xp record --format`) and
/// `xp convert --format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordFormat {
    /// Flat v1 `TLBT`: 17 bytes per record, byte-addressable.
    V1,
    /// Block-compressed v2 `TLBT` with the given records per block.
    V2 {
        /// Records per block (restart cadence). ≥ 1.
        block_len: u32,
    },
}

impl RecordFormat {
    /// The default v2 selector ([`tlbsim_trace::DEFAULT_BLOCK_LEN`]
    /// records per block).
    pub fn v2_default() -> Self {
        RecordFormat::V2 {
            block_len: tlbsim_trace::DEFAULT_BLOCK_LEN,
        }
    }
}

/// What [`record`] wrote.
#[derive(Debug, Clone)]
pub struct RecordSummary {
    /// Application recorded.
    pub app: &'static str,
    /// Scale the generator ran at.
    pub scale: Scale,
    /// Records written.
    pub records: u64,
    /// File size in bytes (for v1, 8-byte header + 17 bytes per
    /// record; for v2, whatever the delta blocks compressed to).
    pub bytes: u64,
    /// Destination path.
    pub path: PathBuf,
}

impl RecordSummary {
    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "recorded {} at {} -> {} ({} records, {} bytes)",
            self.app,
            self.scale,
            self.path.display(),
            self.records,
            self.bytes
        )
    }
}

/// Records `app`'s reference stream at `scale` to `path` in the binary
/// `TLBT` format, stopping after `limit` accesses if one is given.
///
/// # Errors
///
/// [`ReplayError::UnknownApp`] for an unregistered name, otherwise the
/// underlying I/O or trace error.
pub fn record(
    app: &str,
    scale: Scale,
    limit: Option<u64>,
    path: impl AsRef<Path>,
) -> Result<RecordSummary, ReplayError> {
    record_with_format(app, scale, limit, path, RecordFormat::V1)
}

/// [`record`] with an explicit on-disk format (`xp record --format`).
///
/// # Errors
///
/// As [`record`].
pub fn record_with_format(
    app: &str,
    scale: Scale,
    limit: Option<u64>,
    path: impl AsRef<Path>,
    format: RecordFormat,
) -> Result<RecordSummary, ReplayError> {
    let spec = find_app(app).ok_or_else(|| ReplayError::UnknownApp(app.to_owned()))?;
    let path = path.as_ref();
    let summary = record_spec_with_format(spec, scale, limit, path, format)?;
    Ok(summary)
}

/// [`record`] with the spec already resolved (also used by the bench
/// fixtures).
pub fn record_spec(
    spec: &AppSpec,
    scale: Scale,
    limit: Option<u64>,
    path: &Path,
) -> Result<RecordSummary, ReplayError> {
    record_spec_with_format(spec, scale, limit, path, RecordFormat::V1)
}

/// [`record_spec`] with an explicit on-disk format.
pub fn record_spec_with_format(
    spec: &AppSpec,
    scale: Scale,
    limit: Option<u64>,
    path: &Path,
    format: RecordFormat,
) -> Result<RecordSummary, ReplayError> {
    enum Sink {
        V1(BinaryTraceWriter<std::fs::File>),
        V2(V2TraceWriter<std::fs::File>),
    }
    let file = std::fs::File::create(path)?;
    let mut sink = match format {
        RecordFormat::V1 => Sink::V1(BinaryTraceWriter::create(file)?),
        RecordFormat::V2 { block_len } => {
            Sink::V2(V2TraceWriter::create_with_block_len(file, block_len)?)
        }
    };
    let mut workload = spec.workload(scale);
    let mut remaining = limit.unwrap_or(u64::MAX);
    let mut buf = vec![MemoryAccess::read(0, 0); 4096];
    while remaining > 0 {
        let want = remaining.min(buf.len() as u64) as usize;
        let filled = workload.fill_batch(&mut buf[..want]);
        if filled == 0 {
            break;
        }
        for access in &buf[..filled] {
            match &mut sink {
                Sink::V1(w) => w.write(access)?,
                Sink::V2(w) => w.write(access)?,
            }
        }
        remaining -= filled as u64;
    }
    let records = match sink {
        Sink::V1(w) => {
            let records = w.records_written();
            w.finish()?;
            records
        }
        Sink::V2(w) => {
            let records = w.records_written();
            w.finish()?;
            records
        }
    };
    Ok(RecordSummary {
        app: spec.name,
        scale,
        records,
        bytes: std::fs::metadata(path)?.len(),
        path: path.to_owned(),
    })
}

/// The scheme sweep of one replayed trace: the figure grids' 21
/// configurations, accuracy and miss rate per scheme.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Trace name (the file stem).
    pub trace: String,
    /// Records replayed per scheme.
    pub records: u64,
    /// `"mmap"` (zero-copy) or `"read"` (fallback) backend.
    pub backend: &'static str,
    /// Worker shards per run (1 = sequential, job-parallel sweep).
    pub shards: usize,
    /// Decode health of the trace: what quarantine skipped, if
    /// anything. Clean under [`DecodePolicy::Strict`] by construction.
    pub health: TraceHealth,
    /// One cell per scheme configuration, in grid order.
    pub cells: Vec<GridCell>,
}

/// Replays a recorded trace under the full figure-grid scheme sweep
/// ([`paper_scheme_grid`]).
///
/// With `shards <= 1` the 30 scheme runs execute job-parallel through
/// [`sweep`], all sharing one mapping of the trace. With more, each run
/// is itself partitioned across `shards` workers via
/// [`run_app_sharded`] — sharded trace replay seeks each worker's
/// cursor in O(1). `shards == 0` means auto: resolved against the
/// trace's record count via [`resolve_shards`].
///
/// # Errors
///
/// Trace errors from opening/validating the file, or [`SimError`] from
/// an invalid configuration.
pub fn replay(path: impl AsRef<Path>, shards: usize) -> Result<ReplayReport, ReplayError> {
    replay_with_policy(path, shards, DecodePolicy::Strict)
}

/// [`replay`] under an explicit [`DecodePolicy`]: strict replay aborts
/// on the first damaged record, quarantine replay skips up to the
/// policy's budget and reports what was lost in
/// [`ReplayReport::health`].
///
/// # Errors
///
/// As [`replay`]; additionally `TraceError::QuarantineExceeded` when
/// the damage overruns a quarantine budget.
pub fn replay_with_policy(
    path: impl AsRef<Path>,
    shards: usize,
    policy: DecodePolicy,
) -> Result<ReplayReport, ReplayError> {
    replay_with_options(path, shards, policy, None)
}

/// [`replay_with_policy`] with an optional streaming window (`xp replay
/// --stream-window <blocks>`): instead of mapping the whole trace, each
/// replay cursor holds a sliding `window` of v2 blocks mapped at a
/// time, so traces larger than RAM replay in bounded memory. `None`
/// (and any v1 trace) maps the whole file. The window size never
/// changes *what* is replayed — only how many bytes are resident.
///
/// # Errors
///
/// As [`replay_with_policy`].
pub fn replay_with_options(
    path: impl AsRef<Path>,
    shards: usize,
    policy: DecodePolicy,
    stream_window: Option<u64>,
) -> Result<ReplayReport, ReplayError> {
    let trace = match stream_window {
        Some(window) => TraceWorkload::open_streaming(path.as_ref(), policy, window)?,
        None => TraceWorkload::open_with_policy(path.as_ref(), policy)?,
    };
    let schemes = paper_scheme_grid();
    let base = SimConfig::paper_default();
    let scale = Scale::TINY; // ignored by fixed-length traces
    let shards = resolve_shards(shards, trace.stream_len());
    let mut cells = Vec::with_capacity(schemes.len());
    if shards <= 1 {
        let jobs: Vec<SweepJob> = schemes
            .iter()
            .map(|scheme| SweepJob {
                tag: scheme.label(),
                spec: Arc::new(trace.clone()),
                scale,
                config: base.clone().with_prefetcher(scheme.clone()),
            })
            .collect();
        for result in sweep(jobs)? {
            cells.push(GridCell {
                label: result.tag,
                accuracy: result.stats.accuracy(),
                miss_rate: result.stats.miss_rate(),
            });
        }
    } else {
        for scheme in &schemes {
            let config = base.clone().with_prefetcher(scheme.clone());
            let run = run_app_sharded(&trace, scale, &config, shards)?;
            cells.push(GridCell {
                label: scheme.label(),
                accuracy: run.merged.accuracy(),
                miss_rate: run.merged.miss_rate(),
            });
        }
    }
    Ok(ReplayReport {
        trace: trace.name().to_owned(),
        records: trace.stream_len(),
        backend: trace.backend(),
        shards,
        health: trace.health(),
        cells,
    })
}

impl ReplayReport {
    /// The report as a [`TextTable`].
    pub fn to_table(&self) -> TextTable {
        let quarantined = if self.health.is_clean() {
            String::new()
        } else {
            format!(", quarantined {} bad", self.health.records_bad)
        };
        let mut table = TextTable::new(
            format!(
                "Replay: {} ({} records, {} backend, {} shard{}{quarantined})",
                self.trace,
                self.records,
                self.backend,
                self.shards,
                if self.shards == 1 { "" } else { "s" }
            ),
            vec!["scheme".into(), "accuracy".into(), "miss rate".into()],
        );
        for cell in &self.cells {
            table.row(vec![
                cell.label.clone(),
                fmt3(cell.accuracy),
                fmt4(cell.miss_rate),
            ]);
        }
        table
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        self.to_table().render()
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_sim::run_app;

    fn temp_trace(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tlbsim-replay-{}-{tag}.tlbt", std::process::id()))
    }

    #[test]
    fn record_writes_the_exact_stream_length() {
        let path = temp_trace("record");
        let summary = record("gap", Scale::TINY, None, &path).unwrap();
        assert_eq!(summary.app, "gap");
        let expected = find_app("gap").unwrap().stream_len(Scale::TINY);
        assert_eq!(summary.records, expected);
        assert_eq!(summary.bytes, std::fs::metadata(&path).unwrap().len());
        assert!(summary.render().contains("gap"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn record_honours_the_limit() {
        let path = temp_trace("limit");
        let summary = record("gap", Scale::TINY, Some(5000), &path).unwrap();
        assert_eq!(summary.records, 5000);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_app_is_a_typed_error() {
        let err = record("not-an-app", Scale::TINY, None, temp_trace("unknown")).unwrap_err();
        assert!(matches!(err, ReplayError::UnknownApp(_)));
        assert!(err.to_string().contains("not-an-app"));
    }

    #[test]
    fn replay_covers_the_scheme_grid_and_matches_direct_runs() {
        let path = temp_trace("grid");
        record("gap", Scale::TINY, Some(20_000), &path).unwrap();
        let report = replay(&path, 1).unwrap();
        assert_eq!(report.cells.len(), paper_scheme_grid().len());
        assert_eq!(report.records, 20_000);

        // Spot-check one scheme against a direct trace run: the sweep
        // path and the plain runner must agree exactly.
        let trace = TraceWorkload::open(&path).unwrap();
        let dp = SimConfig::paper_default();
        let direct = run_app(&trace, Scale::TINY, &dp).unwrap();
        let cell = report
            .cells
            .iter()
            .find(|c| c.label.starts_with("DP,256"))
            .expect("representative DP cell present");
        assert_eq!(cell.accuracy, direct.accuracy());
        assert_eq!(cell.miss_rate, direct.miss_rate());

        let rendered = report.render();
        assert!(rendered.contains("Replay:"));
        assert!(rendered.contains("DP,256,D"));
        assert!(report.to_csv().contains("scheme,accuracy,miss rate"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_replay_produces_full_reports() {
        let path = temp_trace("sharded");
        record("gap", Scale::TINY, Some(20_000), &path).unwrap();
        let sequential = replay(&path, 1).unwrap();
        let sharded = replay(&path, 4).unwrap();
        assert_eq!(sharded.shards, 4);
        assert_eq!(sharded.cells.len(), sequential.cells.len());
        for (s, q) in sharded.cells.iter().zip(&sequential.cells) {
            assert_eq!(s.label, q.label);
            assert!((0.0..=1.0).contains(&s.accuracy), "{}", s.label);
        }
        // The sharded report is exactly what a direct sharded trace run
        // produces (boundary effects and all): spot-check DP.
        let trace = TraceWorkload::open(&path).unwrap();
        let direct = run_app_sharded(&trace, Scale::TINY, &SimConfig::paper_default(), 4).unwrap();
        let cell = sharded
            .cells
            .iter()
            .find(|c| c.label.starts_with("DP,256"))
            .expect("representative DP cell present");
        assert_eq!(cell.accuracy, direct.merged.accuracy());
        assert_eq!(cell.miss_rate, direct.merged.miss_rate());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replaying_a_missing_file_is_an_io_error() {
        let err = replay(temp_trace("missing-never-written"), 1).unwrap_err();
        assert!(matches!(err, ReplayError::Trace(TraceError::Io(_))));
    }
}
