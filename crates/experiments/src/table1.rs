//! Table 1: the hardware comparison of the four table-driven schemes.
//!
//! This table is qualitative in the paper; here it is generated from the
//! mechanisms' own [`HardwareProfile`]s so it can never drift from the
//! implementation.
//!
//! [`HardwareProfile`]: tlbsim_core::HardwareProfile

use tlbsim_core::{PrefetcherConfig, PrefetcherKind};

use crate::report::TextTable;

/// The generated Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    table: TextTable,
}

impl Table1 {
    /// Renders the table.
    pub fn render(&self) -> String {
        self.table.render()
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        self.table.to_csv()
    }
}

/// Builds Table 1 from the implementations (ASP, MP, RP, DP with the
/// paper's `r = 256`, `s = 2`).
pub fn run() -> Table1 {
    let kinds = [
        PrefetcherKind::Stride,
        PrefetcherKind::Markov,
        PrefetcherKind::Recency,
        PrefetcherKind::Distance,
    ];
    let mut table = TextTable::new(
        "Table 1: hardware comparison (r = 256, s = 2)",
        vec![
            "question".into(),
            "ASP".into(),
            "MP".into(),
            "RP".into(),
            "DP".into(),
        ],
    );
    let profiles: Vec<_> = kinds
        .iter()
        .map(|k| {
            PrefetcherConfig::new(*k)
                .build()
                .expect("paper defaults are valid")
                .profile()
        })
        .collect();
    let mut push = |question: &str, f: &dyn Fn(&tlbsim_core::HardwareProfile) -> String| {
        let mut row = vec![question.to_owned()];
        row.extend(profiles.iter().map(f));
        table.row(row);
    };
    push("How many rows?", &|p| p.rows.to_string());
    push("Contents of a row", &|p| p.row_contents.to_owned());
    push("Where is the table?", &|p| p.location.to_string());
    push("How is it indexed?", &|p| p.index.to_string());
    push("Memory ops per miss (excl. prefetch)", &|p| {
        p.memory_ops_per_miss.to_string()
    });
    push("Prefetches per miss", &|p| {
        let (lo, hi) = p.max_prefetches;
        if lo == hi {
            lo.to_string()
        } else {
            format!("{lo}-{hi}")
        }
    });
    Table1 { table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_facts() {
        let rendered = run().render();
        // RP keeps state in memory, everyone else on chip.
        assert!(rendered.contains("In Memory"));
        assert!(rendered.contains("On-Chip"));
        // RP pays 4 memory ops per miss; the on-chip schemes pay 0.
        let ops_line = rendered
            .lines()
            .find(|l| l.starts_with("Memory ops"))
            .unwrap();
        assert!(ops_line.contains('4'));
        assert!(ops_line.contains('0'));
        // Indexing row matches Table 1.
        let idx_line = rendered
            .lines()
            .find(|l| l.starts_with("How is it"))
            .unwrap();
        assert!(idx_line.contains("PC"));
        assert!(idx_line.contains("Distance"));
        assert!(idx_line.contains("Page #"));
    }

    #[test]
    fn csv_has_five_columns() {
        let csv = run().to_csv();
        assert!(csv.lines().all(|l| l.split(',').count() >= 5));
    }
}
