//! The prefetcher-configuration grids the paper sweeps, and the shared
//! accuracy-grid runner behind Figures 7 and 8.

use std::sync::Arc;

use tlbsim_core::{Associativity, ConfidenceConfig, PrefetcherConfig, PrefetcherKind};
use tlbsim_sim::{run_app_sharded, sweep, SimConfig, SimError, SweepJob};
use tlbsim_workloads::{AppSpec, Scale};

/// The per-application scheme grid of Figures 7 and 8, plus the
/// adaptive extension: RP; MP with r ∈ {1024, 512, 256} across
/// associativities; DP and ASP with r ∈ {1024 … 32} direct-mapped —
/// exactly the paper's legend order — followed by the adaptive block:
/// TP at windows {4, 8, 16}, the confidence-throttled C+DP / C+ASP /
/// C+MP at the representative geometry, and three set-dueling
/// ensembles.
pub fn paper_scheme_grid() -> Vec<PrefetcherConfig> {
    let mut grid = Vec::new();
    grid.push(PrefetcherConfig::recency());
    for (rows, assoc) in [
        (1024, Associativity::Direct),
        (1024, Associativity::ways_of(4)),
        (1024, Associativity::ways_of(2)),
        (512, Associativity::Direct),
        (512, Associativity::ways_of(4)),
        (256, Associativity::Direct),
        (256, Associativity::ways_of(4)),
        (256, Associativity::Full),
    ] {
        let mut cfg = PrefetcherConfig::markov();
        cfg.rows(rows).assoc(assoc);
        grid.push(cfg);
    }
    for rows in [1024, 512, 256, 128, 64, 32] {
        let mut cfg = PrefetcherConfig::distance();
        cfg.rows(rows);
        grid.push(cfg);
    }
    for rows in [1024, 512, 256, 128, 64, 32] {
        let mut cfg = PrefetcherConfig::stride();
        cfg.rows(rows);
        grid.push(cfg);
    }
    grid.extend(adaptive_scheme_block());
    grid
}

/// The adaptive cells appended to [`paper_scheme_grid`]: 3 trend-vote
/// windows, 3 confidence-throttled bases, 3 set-dueling ensembles.
pub fn adaptive_scheme_block() -> Vec<PrefetcherConfig> {
    let mut block = Vec::new();
    for window in [4, 8, 16] {
        let mut cfg = PrefetcherConfig::trend_stride();
        cfg.window(window);
        block.push(cfg);
    }
    for base in [
        PrefetcherKind::Distance,
        PrefetcherKind::Stride,
        PrefetcherKind::Markov,
    ] {
        let mut cfg = PrefetcherConfig::new(base);
        cfg.confidence(ConfidenceConfig::adaptive());
        block.push(cfg);
    }
    for components in [
        &[PrefetcherKind::Distance, PrefetcherKind::Stride][..],
        &[PrefetcherKind::Recency, PrefetcherKind::Distance][..],
        &[
            PrefetcherKind::Distance,
            PrefetcherKind::Stride,
            PrefetcherKind::Markov,
        ][..],
    ] {
        block.push(PrefetcherConfig::ensemble_of(components));
    }
    block
}

/// The four schemes of Table 2 at the paper's representative
/// configuration (`r = 256`, `s = 2`, direct-mapped).
pub fn table2_schemes() -> Vec<PrefetcherConfig> {
    vec![
        PrefetcherConfig::distance(),
        PrefetcherConfig::recency(),
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
    ]
}

/// Accuracy of one application under one configuration.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Scheme label in the paper's legend style (e.g. `DP,256,D`).
    pub label: String,
    /// Prediction accuracy.
    pub accuracy: f64,
    /// TLB miss rate of the run.
    pub miss_rate: f64,
}

/// One application's row of a figure.
#[derive(Debug, Clone)]
pub struct GridRow {
    /// Application name.
    pub app: &'static str,
    /// One cell per configuration, in grid order.
    pub cells: Vec<GridCell>,
}

impl GridRow {
    /// The cell with the given label.
    pub fn cell(&self, label: &str) -> Option<&GridCell> {
        self.cells.iter().find(|c| c.label == label)
    }

    /// The best accuracy across all configurations in the row.
    pub fn best_accuracy(&self) -> f64 {
        self.cells.iter().map(|c| c.accuracy).fold(0.0, f64::max)
    }
}

/// Runs `apps × schemes` through the functional engine in parallel.
///
/// # Errors
///
/// Returns [`SimError`] if any configuration is invalid.
pub fn accuracy_grid(
    apps: &[&'static AppSpec],
    schemes: &[PrefetcherConfig],
    scale: Scale,
) -> Result<Vec<GridRow>, SimError> {
    let base = SimConfig::paper_default();
    let mut jobs = Vec::with_capacity(apps.len() * schemes.len());
    for app in apps {
        for scheme in schemes {
            jobs.push(SweepJob {
                tag: scheme.label(),
                spec: Arc::new(*app),
                scale,
                config: base.clone().with_prefetcher(scheme.clone()),
            });
        }
    }
    let results = sweep(jobs)?;
    let mut rows = Vec::with_capacity(apps.len());
    let mut iter = results.into_iter();
    for app in apps {
        let mut cells = Vec::with_capacity(schemes.len());
        for _ in 0..schemes.len() {
            let r = iter.next().expect("sweep returns one result per job");
            debug_assert_eq!(r.app, app.name);
            cells.push(GridCell {
                label: r.tag,
                accuracy: r.stats.accuracy(),
                miss_rate: r.stats.miss_rate(),
            });
        }
        rows.push(GridRow {
            app: app.name,
            cells,
        });
    }
    Ok(rows)
}

/// Like [`accuracy_grid`], but with **intra-run** parallelism: jobs run
/// one after another, and each run is itself partitioned across `shards`
/// worker shards via [`run_app_sharded`] — the mode for grids whose
/// individual runs are large enough to own the whole machine (e.g. a
/// figure driver at a high `--scale`).
///
/// `shards <= 1` delegates to the job-parallel [`accuracy_grid`]; the
/// two paths produce identical cells there, since a one-shard run is
/// bit-identical to a sequential run. With more shards, cell metrics can
/// differ from the sequential grid by the cold-boundary effects
/// documented on [`tlbsim_sim::run_app_sharded`].
///
/// # Errors
///
/// Returns [`SimError`] if any configuration is invalid.
pub fn accuracy_grid_sharded(
    apps: &[&'static AppSpec],
    schemes: &[PrefetcherConfig],
    scale: Scale,
    shards: usize,
) -> Result<Vec<GridRow>, SimError> {
    if shards <= 1 {
        return accuracy_grid(apps, schemes, scale);
    }
    let base = SimConfig::paper_default();
    let mut rows = Vec::with_capacity(apps.len());
    for app in apps {
        let mut cells = Vec::with_capacity(schemes.len());
        for scheme in schemes {
            let config = base.clone().with_prefetcher(scheme.clone());
            let run = run_app_sharded(app, scale, &config, shards)?;
            cells.push(GridCell {
                label: scheme.label(),
                accuracy: run.merged.accuracy(),
                miss_rate: run.merged.miss_rate(),
            });
        }
        rows.push(GridRow {
            app: app.name,
            cells,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_workloads::find_app;

    #[test]
    fn grid_matches_paper_legend_count() {
        // RP + 8 MP + 6 DP + 6 ASP = 21 paper configurations, plus the
        // 9-cell adaptive block (3 TP + 3 C+ + 3 EP) = 30.
        assert_eq!(paper_scheme_grid().len(), 30);
        assert_eq!(paper_scheme_grid()[0].label(), "RP");
        assert_eq!(paper_scheme_grid()[1].label(), "MP,1024,D");
        assert_eq!(paper_scheme_grid()[9].label(), "DP,1024,D");
        assert_eq!(paper_scheme_grid()[15].label(), "ASP,1024");
        assert_eq!(paper_scheme_grid()[21].label(), "TP,4");
        assert_eq!(paper_scheme_grid()[24].label(), "C+DP,256,D");
        assert_eq!(paper_scheme_grid()[27].label(), "EP:DP+ASP");
        assert_eq!(paper_scheme_grid()[29].label(), "EP:DP+ASP+MP");
    }

    #[test]
    fn every_grid_cell_validates_and_builds() {
        for cfg in paper_scheme_grid() {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
            cfg.build()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
        }
    }

    #[test]
    fn adaptive_block_labels_are_unique() {
        let labels: Vec<String> = adaptive_scheme_block().iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), 9);
        assert_eq!(dedup.len(), labels.len(), "{labels:?}");
    }

    #[test]
    fn table2_schemes_are_the_four_contenders() {
        let labels: Vec<String> = table2_schemes().iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["DP,256,D", "RP", "ASP,256", "MP,256,D"]);
    }

    #[test]
    fn sharded_grid_with_one_shard_matches_the_parallel_grid() {
        let apps = vec![find_app("gap").unwrap()];
        let schemes = vec![
            tlbsim_core::PrefetcherConfig::distance(),
            tlbsim_core::PrefetcherConfig::recency(),
        ];
        let parallel = accuracy_grid(&apps, &schemes, Scale::TINY).unwrap();
        let sharded = accuracy_grid_sharded(&apps, &schemes, Scale::TINY, 1).unwrap();
        for (p, s) in parallel.iter().zip(&sharded) {
            assert_eq!(p.app, s.app);
            for (pc, sc) in p.cells.iter().zip(&s.cells) {
                assert_eq!(pc.label, sc.label);
                assert_eq!(pc.accuracy, sc.accuracy);
                assert_eq!(pc.miss_rate, sc.miss_rate);
            }
        }
    }

    #[test]
    fn sharded_grid_produces_full_rows() {
        let apps = vec![find_app("gap").unwrap()];
        let schemes = vec![tlbsim_core::PrefetcherConfig::distance()];
        let rows = accuracy_grid_sharded(&apps, &schemes, Scale::TINY, 3).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 1);
        assert!(rows[0].best_accuracy() > 0.0);
    }

    #[test]
    fn accuracy_grid_produces_full_rows() {
        let apps = vec![find_app("gap").unwrap()];
        let schemes = vec![
            tlbsim_core::PrefetcherConfig::distance(),
            tlbsim_core::PrefetcherConfig::recency(),
        ];
        let rows = accuracy_grid(&apps, &schemes, Scale::TINY).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 2);
        assert!(rows[0].cell("RP").is_some());
        assert!(rows[0].best_accuracy() > 0.0);
    }
}
