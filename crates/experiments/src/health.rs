//! Trace health inspection and chaos baking (`xp check` / `xp chaos`).
//!
//! `check` is the preflight a damaged trace deserves: it censuses the
//! file's full damage under an unbounded quarantine scan
//! ([`DecodePolicy::lenient`]) and then says whether the *requested*
//! policy would admit it — strict for clean-or-die pipelines, a
//! quarantine budget for salvage runs. `chaos` is the other half of the
//! loop: it bakes a deterministic [`FaultPlan`] into a copy of a trace
//! so CI (and anyone reproducing a failure) can manufacture a corrupt
//! input with a one-line command instead of a hex editor.

use std::path::{Path, PathBuf};

use tlbsim_trace::{
    DecodePolicy, FaultKind, FaultPlan, MmapTrace, TraceError, TraceHealth, V2Trace,
};

use crate::replay::ReplayError;

/// What `xp check` found: the trace's damage census and the verdict of
/// the policy the caller asked about.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Trace file checked.
    pub path: PathBuf,
    /// Record grid size (including unparseable cells).
    pub grid_records: u64,
    /// Full damage census from an unbounded quarantine scan.
    pub health: TraceHealth,
    /// The policy the verdict is rendered under.
    pub policy: DecodePolicy,
    /// Whether `policy` admits this trace.
    pub admitted: bool,
}

impl CheckReport {
    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        format!(
            "Check: {}\n  records   {} on the grid, {} decodable\n  health    {}\n  policy    {} -> {}",
            self.path.display(),
            self.grid_records,
            self.health.records_ok,
            self.health,
            self.policy,
            if self.admitted { "admitted" } else { "REJECTED" },
        )
    }
}

/// Censuses `path`'s damage and judges it under `policy`.
///
/// The scan itself always runs with an unbounded quarantine, so the
/// report covers *all* the damage even when the requested policy would
/// have aborted earlier; only the header must be intact.
///
/// # Errors
///
/// [`ReplayError`] if the file cannot be opened or its header is not a
/// valid `TLBT` header (a bad header means there is no record grid to
/// census).
pub fn check(path: impl AsRef<Path>, policy: DecodePolicy) -> Result<CheckReport, ReplayError> {
    let path = path.as_ref();
    let (grid_records, health) = match MmapTrace::open_with_policy(path, DecodePolicy::lenient()) {
        Ok(trace) => (trace.record_count(), trace.scan_health()?),
        // Version sniffing: a v2 header censuses through the block
        // decoder instead (bad records tally in whole blocks there).
        Err(TraceError::UnsupportedVersion { found: 2 }) => {
            let trace = V2Trace::open_with_policy(path, DecodePolicy::lenient())?;
            (trace.record_count(), trace.scan_health()?)
        }
        Err(e) => return Err(e.into()),
    };
    Ok(CheckReport {
        path: path.to_owned(),
        grid_records,
        health,
        policy,
        admitted: policy.admits(&health),
    })
}

/// What `xp chaos` baked: the plan's shape and where the damaged copy
/// went.
#[derive(Debug, Clone)]
pub struct ChaosSummary {
    /// Source trace.
    pub source: PathBuf,
    /// Damaged copy written.
    pub out: PathBuf,
    /// Seed the plan was drawn from.
    pub seed: u64,
    /// Faults baked, per kind.
    pub planned: Vec<(FaultKind, usize)>,
    /// Records in the source trace.
    pub records: u64,
    /// Bytes written to `out`.
    pub bytes: u64,
}

impl ChaosSummary {
    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        let faults: Vec<String> = self
            .planned
            .iter()
            .map(|(kind, n)| format!("{n} {kind:?}"))
            .collect();
        format!(
            "baked [{}] (seed {}) into {} -> {} ({} records, {} bytes)",
            faults.join(", "),
            self.seed,
            self.source.display(),
            self.out.display(),
            self.records,
            self.bytes
        )
    }
}

/// Bakes a seeded fault plan into a copy of `trace` at `out`: `corrupt`
/// kind-byte corruptions, `wild` out-of-range vaddr rewrites, and
/// optionally one torn tail, at positions drawn deterministically from
/// `seed`.
///
/// The source is validated strictly first — chaos is injected into a
/// known-good image, so every bad record in the output is one the plan
/// put there.
///
/// # Errors
///
/// [`ReplayError`] if the source is unreadable or not a clean trace, if
/// the plan asks for more faults than there are records, or if the copy
/// cannot be written.
pub fn bake(
    trace: impl AsRef<Path>,
    out: impl AsRef<Path>,
    seed: u64,
    corrupt: usize,
    wild: usize,
    truncate: bool,
) -> Result<ChaosSummary, ReplayError> {
    let trace = trace.as_ref();
    let out = out.as_ref();
    let records = match MmapTrace::open(trace) {
        Ok(source) => {
            source.validate_records()?;
            source.record_count()
        }
        Err(TraceError::UnsupportedVersion { found: 2 }) => {
            // A torn tail cannot be baked into a v2 trace: the block
            // index and footer live at the end of the file, so cutting
            // bytes there destroys the whole layout (a fatal torn
            // index, not a quarantinable record) — refuse the plan
            // instead of baking an unreplayable file.
            if truncate {
                return Err(ReplayError::Chaos(
                    "--truncate tears the v2 block index (fatal under every policy); \
                     use --corrupt/--wild on v2 traces"
                        .to_owned(),
                ));
            }
            let source = V2Trace::open(trace)?;
            source.validate_records()?;
            source.record_count()
        }
        Err(e) => return Err(e.into()),
    };

    let planned: Vec<(FaultKind, usize)> = [
        (FaultKind::CorruptKind, corrupt),
        (FaultKind::WildVaddr, wild),
        (FaultKind::TruncateTail, usize::from(truncate)),
    ]
    .into_iter()
    .filter(|(_, n)| *n > 0)
    .collect();
    let total: usize = planned.iter().map(|(_, n)| n).sum();
    if total as u64 > records {
        return Err(ReplayError::Chaos(format!(
            "plan wants {total} faults but the trace has only {records} records"
        )));
    }

    let mut bytes = std::fs::read(trace)?;
    FaultPlan::seeded(seed, records, &planned).apply_to_bytes(&mut bytes);
    let written = bytes.len() as u64;
    std::fs::write(out, bytes)?;
    Ok(ChaosSummary {
        source: trace.to_owned(),
        out: out.to_owned(),
        seed,
        planned,
        records,
        bytes: written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::record;
    use tlbsim_workloads::{Scale, TraceWorkload};

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tlbsim-health-{}-{tag}.tlbt", std::process::id()))
    }

    #[test]
    fn check_reports_a_clean_trace_as_admitted_everywhere() {
        let path = temp("clean");
        record("gap", Scale::TINY, Some(2000), &path).unwrap();
        let strict = check(&path, DecodePolicy::Strict).unwrap();
        assert!(strict.admitted);
        assert!(strict.health.is_clean());
        assert_eq!(strict.health.records_ok, 2000);
        assert!(strict.render().contains("admitted"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn baked_chaos_is_censused_and_judged_per_policy() {
        let clean = temp("bake-src");
        let dirty = temp("bake-dst");
        record("gap", Scale::TINY, Some(2000), &clean).unwrap();
        let summary = bake(&clean, &dirty, 42, 5, 0, false).unwrap();
        assert_eq!(summary.records, 2000);
        assert!(summary.render().contains("5 CorruptKind"));

        let strict = check(&dirty, DecodePolicy::Strict).unwrap();
        assert!(!strict.admitted, "corruption must fail strict");
        assert_eq!(strict.health.records_bad, 5);
        assert_eq!(strict.health.records_ok, 1995);
        assert!(strict.render().contains("REJECTED"));

        let salvage = check(&dirty, DecodePolicy::quarantine(5)).unwrap();
        assert!(salvage.admitted, "budget 5 covers 5 bad records");
        let tight = check(&dirty, DecodePolicy::quarantine(4)).unwrap();
        assert!(!tight.admitted);

        // The damaged copy actually replays under quarantine.
        let replayed =
            TraceWorkload::open_with_policy(&dirty, DecodePolicy::quarantine(5)).unwrap();
        assert_eq!(replayed.stream_len(), 1995);
        std::fs::remove_file(&clean).unwrap();
        std::fs::remove_file(&dirty).unwrap();
    }

    #[test]
    fn a_torn_tail_is_reported_and_strict_rejects_it() {
        let clean = temp("tear-src");
        let dirty = temp("tear-dst");
        record("gap", Scale::TINY, Some(500), &clean).unwrap();
        bake(&clean, &dirty, 7, 0, 0, true).unwrap();
        let report = check(&dirty, DecodePolicy::Strict).unwrap();
        assert!(!report.admitted);
        assert!(report.health.torn_tail_bytes > 0);
        assert!(check(&dirty, DecodePolicy::lenient()).unwrap().admitted);
        std::fs::remove_file(&clean).unwrap();
        std::fs::remove_file(&dirty).unwrap();
    }

    #[test]
    fn v2_traces_check_and_bake_block_granular() {
        use crate::replay::{record_with_format, RecordFormat};
        let clean = temp("v2-src");
        let dirty = temp("v2-dst");
        record_with_format(
            "gap",
            Scale::TINY,
            Some(2000),
            &clean,
            RecordFormat::V2 { block_len: 16 },
        )
        .unwrap();

        // Tearing the tail of a v2 trace would destroy the block index,
        // so the plan is refused outright.
        let err = bake(&clean, &dirty, 1, 0, 0, true).unwrap_err();
        assert!(matches!(err, ReplayError::Chaos(_)));
        assert!(err.to_string().contains("block index"));

        let summary = bake(&clean, &dirty, 42, 2, 1, false).unwrap();
        assert_eq!(summary.records, 2000);

        let strict = check(&dirty, DecodePolicy::Strict).unwrap();
        assert!(!strict.admitted);
        assert_eq!(strict.grid_records, 2000);
        // v2 quarantine is block-granular: each corrupted record costs
        // its whole 16-record block.
        assert!(strict.health.blocks_bad >= 1 && strict.health.blocks_bad <= 3);
        assert_eq!(strict.health.records_bad, strict.health.blocks_bad * 16);

        let salvage = check(&dirty, DecodePolicy::quarantine(strict.health.records_bad)).unwrap();
        assert!(salvage.admitted);
        let replayed = TraceWorkload::open_with_policy(
            &dirty,
            DecodePolicy::quarantine(strict.health.records_bad),
        )
        .unwrap();
        assert_eq!(replayed.stream_len(), 2000 - strict.health.records_bad);
        std::fs::remove_file(&clean).unwrap();
        std::fs::remove_file(&dirty).unwrap();
    }

    #[test]
    fn overfull_plans_and_damaged_sources_are_typed_errors() {
        let clean = temp("overfull");
        record("gap", Scale::TINY, Some(10), &clean).unwrap();
        let err = bake(&clean, temp("overfull-dst"), 1, 11, 0, false).unwrap_err();
        assert!(matches!(err, ReplayError::Chaos(_)));
        assert!(err.to_string().contains("11 faults"));

        // Chaos only bakes into clean sources.
        let dirty = temp("overfull-dirty");
        bake(&clean, &dirty, 1, 2, 0, false).unwrap();
        assert!(matches!(
            bake(&dirty, temp("never"), 1, 1, 0, false),
            Err(ReplayError::Trace(_))
        ));
        std::fs::remove_file(&clean).unwrap();
        std::fs::remove_file(&dirty).unwrap();
    }
}
