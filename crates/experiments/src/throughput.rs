//! Simulator throughput telemetry (`xp bench-json`).
//!
//! Measures end-to-end engine throughput (accesses/sec) per prefetching
//! scheme on a deterministic miss-heavy stream, the DP miss-path
//! microbenchmark comparing the reusable-sink hot path against the
//! allocating legacy `decide()` path, sharded-vs-sequential scaling,
//! mmap trace replay against the generator that recorded it, flat-v1
//! against block-compressed-v2 replay of the same stream, and
//! daemon-served trace ingest against in-process batch replay. The
//! results serialise to `BENCH_throughput.json`, giving successive PRs
//! a machine-readable performance trajectory for the hot loop.
//!
//! Timing methodology: each kernel is repeated until it has run for at
//! least `MIN_MEASURE` (150 ms) in total, and the **best** per-run time
//! is reported — minimum-of-N is the standard way to suppress scheduler
//! noise for short deterministic kernels. Note the Criterion benches in
//! `tlbsim-bench` report median-of-samples over the same stream
//! fixtures: compare trends within one methodology, not absolute
//! numbers across the two.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use std::sync::Arc;

use tlbsim_core::{CandidateBuf, MemoryAccess, MissContext, Pc, PrefetcherConfig, VirtPage};
use tlbsim_service::{Client, JobSpec, Server, ServerConfig};
use tlbsim_sim::{
    run_app, run_app_sharded, run_mix, Engine, SimConfig, SimError, SwitchPolicy, TablePolicy,
};
use tlbsim_workloads::{
    find_app, AppSpec, MultiStreamSpec, Scale, Schedule, StreamSpec, TraceWorkload,
};

/// Minimum accumulated measurement time per kernel.
const MIN_MEASURE: Duration = Duration::from_millis(150);

/// Throughput of one scheme through the functional engine.
#[derive(Debug, Clone)]
pub struct SchemeThroughput {
    /// Scheme label (`none`, `SP`, `ASP`, `MP`, `RP`, `DP`).
    pub scheme: &'static str,
    /// Accesses simulated per run.
    pub accesses: u64,
    /// Best observed nanoseconds per access.
    pub ns_per_access: f64,
    /// Derived accesses per second.
    pub accesses_per_sec: f64,
    /// Prediction accuracy on the measurement stream (sanity anchor: a
    /// "fast" run that stopped predicting would be a regression too).
    pub accuracy: f64,
}

/// The DP miss-path microbenchmark: sink versus legacy `Vec` path.
#[derive(Debug, Clone)]
pub struct MissPathComparison {
    /// Best nanoseconds per miss through the reusable sink.
    pub sink_ns_per_miss: f64,
    /// Best nanoseconds per miss through the allocating `decide()` path.
    pub legacy_ns_per_miss: f64,
}

impl MissPathComparison {
    /// Speedup of the sink path over the legacy path.
    pub fn speedup(&self) -> f64 {
        self.legacy_ns_per_miss / self.sink_ns_per_miss
    }
}

/// Sharded-versus-sequential scaling of one figure-scale DP run
/// ([`tlbsim_sim::run_app_sharded`] against [`tlbsim_sim::run_app`]).
///
/// The speedups here are what *this machine* delivers: intra-run
/// sharding can only beat the sequential path when
/// [`cpus`](ShardScaling::cpus) exceeds 1, so the CPU count is part of
/// the snapshot and the hard ≥2×@4-shards gate lives in the
/// parallelism-guarded `cargo bench` group (`tlbsim-bench`,
/// `benches/sharding.rs`), not here.
#[derive(Debug, Clone)]
pub struct ShardScaling {
    /// Application simulated (a high-miss DP workload).
    pub app: &'static str,
    /// Accesses in the measured stream.
    pub accesses: u64,
    /// Worker threads the host can actually run in parallel.
    pub cpus: usize,
    /// Best sequential nanoseconds per access.
    pub sequential_ns_per_access: f64,
    /// `(shards, best ns/access, speedup-vs-sequential)` per shard
    /// count measured.
    pub shard_points: Vec<(usize, f64, f64)>,
}

/// Generator-driven versus mmap-trace-replay throughput of the same
/// reference stream through the same DP engine.
///
/// The gate (replay ≥ 0.8× generator throughput) lives in `cargo
/// bench`'s `trace_replay` group (`tlbsim-bench`,
/// `benches/trace_replay.rs`); this snapshot records what the host
/// measured so successive PRs can diff the trajectory.
#[derive(Debug, Clone)]
pub struct TraceReplayThroughput {
    /// Application whose stream was recorded (the shard-scaling DP
    /// fixture at a bench-friendly scale).
    pub app: &'static str,
    /// Accesses per replay (= records in the trace).
    pub accesses: u64,
    /// Trace file size in bytes.
    pub trace_bytes: u64,
    /// `"mmap"` (zero-copy) or `"read"` (fallback) replay backend.
    pub backend: &'static str,
    /// Best generator-driven nanoseconds per access.
    pub generator_ns_per_access: f64,
    /// Best trace-replay nanoseconds per access.
    pub replay_ns_per_access: f64,
}

impl TraceReplayThroughput {
    /// Replay throughput as a fraction of generator throughput (1.0 =
    /// parity; the bench gate requires ≥ 0.8).
    pub fn replay_vs_generator(&self) -> f64 {
        self.generator_ns_per_access / self.replay_ns_per_access
    }
}

/// Flat-v1 versus block-compressed-v2 replay of the same recorded
/// stream through the same DP engine, plus the size the v2 delta
/// blocks compressed the trace to.
///
/// The gate (compressed replay ≥ 1/1.2× of raw-mmap replay, ≤ 6
/// bytes/record on the fixture) lives in `cargo bench`'s `trace_v2`
/// group (`tlbsim-bench`, `benches/trace_v2.rs`); this snapshot records
/// what the host measured.
#[derive(Debug, Clone)]
pub struct TraceV2Throughput {
    /// Application whose stream was recorded (the trace-replay
    /// fixture).
    pub app: &'static str,
    /// Accesses per replay (= records in either trace).
    pub accesses: u64,
    /// Flat v1 file size in bytes.
    pub v1_bytes: u64,
    /// Block-compressed v2 file size in bytes.
    pub v2_bytes: u64,
    /// Best raw (v1 mmap) replay nanoseconds per access.
    pub raw_replay_ns_per_access: f64,
    /// Best compressed (v2 block-decode) replay nanoseconds per access.
    pub compressed_replay_ns_per_access: f64,
}

impl TraceV2Throughput {
    /// Stored bytes per record in the v2 encoding (17.0 flat).
    pub fn bytes_per_record(&self) -> f64 {
        self.v2_bytes as f64 / self.accesses as f64
    }

    /// v1 size over v2 size (> 1 means v2 is smaller).
    pub fn compression_ratio(&self) -> f64 {
        self.v1_bytes as f64 / self.v2_bytes as f64
    }

    /// Compressed-replay throughput as a fraction of raw-replay
    /// throughput (1.0 = parity; the bench gate requires ≥ 1/1.2).
    pub fn compressed_vs_raw(&self) -> f64 {
        self.raw_replay_ns_per_access / self.compressed_replay_ns_per_access
    }
}

/// Single-stream versus multiprogrammed-interleave throughput of the
/// same two reference streams through the same DP engine.
///
/// The single-stream path runs the component streams back-to-back
/// (`run_app` twice); the interleaved path runs the identical accesses
/// as one multiprogrammed stream through the switch-aware
/// [`tlbsim_sim::run_mix`] — segment bookkeeping plus per-stream
/// attribution are the only extra work, so the ratio measures the cost
/// of multiprogrammed execution itself. The gate (interleave ≥ 0.8× the
/// single-stream path) lives in `cargo bench`'s `multiprogram` group
/// (`tlbsim-bench`, `benches/multiprogram.rs`); this snapshot records
/// what the host measured.
#[derive(Debug, Clone)]
pub struct MultiprogramThroughput {
    /// Component stream names, in rotation order.
    pub streams: Vec<String>,
    /// Total accesses per measured run (sum of both streams).
    pub accesses: u64,
    /// Round-robin quantum of the interleave, in accesses.
    pub quantum: u64,
    /// Best back-to-back single-stream nanoseconds per access.
    pub single_stream_ns_per_access: f64,
    /// Best interleaved (no-flush) nanoseconds per access.
    pub interleaved_ns_per_access: f64,
    /// Best interleaved nanoseconds per access with flush-on-switch.
    pub flush_interleaved_ns_per_access: f64,
    /// Best interleaved nanoseconds per access with flush-free ASID
    /// switching (shared tables, one live context per stream).
    pub asid_interleaved_ns_per_access: f64,
}

impl MultiprogramThroughput {
    /// Interleaved throughput as a fraction of single-stream throughput
    /// (1.0 = parity; the bench gate requires ≥ 0.8).
    pub fn interleave_vs_single_stream(&self) -> f64 {
        self.single_stream_ns_per_access / self.interleaved_ns_per_access
    }
}

/// Served-versus-batch throughput of the same recorded trace through
/// the same DP engine.
///
/// The batch path opens the trace in-process and replays it
/// ([`tlbsim_sim::run_app`]); the served path submits the identical
/// trace as a job to a real daemon over its Unix-domain socket and
/// waits for the result — so the served time prices the whole service
/// round trip: framing, admission, the per-job trace open, sequential
/// execution and result marshalling. Both runs produce bit-identical
/// statistics; the ratio is the cost of serving itself.
#[derive(Debug, Clone)]
pub struct ServiceThroughput {
    /// Application whose recorded stream was served (the trace-replay
    /// fixture).
    pub app: &'static str,
    /// Accesses per job (= records in the trace).
    pub accesses: u64,
    /// Best in-process batch-replay nanoseconds per access.
    pub batch_ns_per_access: f64,
    /// Best daemon-served nanoseconds per access, submit to `Done`.
    pub served_ns_per_access: f64,
}

impl ServiceThroughput {
    /// Served ingest throughput as a fraction of batch-replay
    /// throughput (1.0 = parity).
    pub fn served_vs_batch(&self) -> f64 {
        self.batch_ns_per_access / self.served_ns_per_access
    }
}

/// Adaptive-family engine throughput against the plain DP baseline on
/// the identical miss-heavy stream.
///
/// Confidence throttling wraps the distance prefetcher in a counter
/// bank consulted on every miss, so its cost is the price of adaptivity
/// itself; the trend-vote and ensemble numbers place the other two
/// families on the same axis. The gate (confidence-wrapped DP ≥ 0.8×
/// plain DP throughput) lives in `cargo bench`'s `adaptive` group
/// (`tlbsim-bench`, `benches/throughput.rs`); this snapshot records
/// what the host measured.
#[derive(Debug, Clone)]
pub struct AdaptiveThroughput {
    /// Accesses simulated per run.
    pub accesses: u64,
    /// Best plain-DP nanoseconds per access (the baseline).
    pub dp_ns_per_access: f64,
    /// Best confidence-wrapped DP (`C+DP`, adaptive default)
    /// nanoseconds per access.
    pub confidence_dp_ns_per_access: f64,
    /// Best trend-vote stride (`TP,8`) nanoseconds per access.
    pub trend_ns_per_access: f64,
    /// Best two-way set-dueling ensemble (`EP:DP+ASP`) nanoseconds per
    /// access.
    pub ensemble_ns_per_access: f64,
}

impl AdaptiveThroughput {
    /// Confidence-wrapped DP throughput as a fraction of plain DP
    /// throughput (1.0 = parity; the bench gate requires ≥ 0.8).
    pub fn confidence_vs_base(&self) -> f64 {
        self.dp_ns_per_access / self.confidence_dp_ns_per_access
    }
}

/// The full telemetry snapshot.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Per-scheme engine throughput.
    pub schemes: Vec<SchemeThroughput>,
    /// The DP miss-path comparison.
    pub miss_path: MissPathComparison,
    /// Intra-run shard scaling on the figure-scale DP run.
    pub shard_scaling: ShardScaling,
    /// Generator vs mmap-trace-replay throughput.
    pub trace_replay: TraceReplayThroughput,
    /// Flat-v1 vs block-compressed-v2 replay throughput and size.
    pub trace_v2: TraceV2Throughput,
    /// Single-stream vs multiprogrammed-interleave throughput.
    pub multiprogram: MultiprogramThroughput,
    /// Daemon-served vs in-process batch trace ingest throughput.
    pub service: ServiceThroughput,
    /// Adaptive families vs the plain DP baseline.
    pub adaptive: AdaptiveThroughput,
}

/// A deterministic synthetic miss stream mixing strided runs with
/// repeating jumps — exercises every mechanism's table paths without
/// degenerating into a single hot row. This is the **canonical**
/// fixture: the Criterion benches in `tlbsim-bench` re-export it, so
/// `cargo bench` numbers and `xp bench-json` telemetry stay comparable.
pub fn mixed_miss_stream(len: usize) -> Vec<MissContext> {
    let mut out = Vec::with_capacity(len);
    let mut page = 0x10_0000u64;
    for i in 0..len {
        page += match i % 7 {
            0..=3 => 1,
            4 => 13,
            5 => 1,
            _ => 97,
        };
        out.push(MissContext {
            page: VirtPage::new(page),
            pc: Pc::new(0x400 + (i as u64 % 4) * 4),
            prefetch_buffer_hit: i % 3 == 0,
            evicted_tlb_entry: if i % 2 == 0 {
                Some(VirtPage::new(page - 200))
            } else {
                None
            },
        });
    }
    out
}

/// A deterministic access stream for whole-engine benchmarks (also the
/// canonical copy re-exported by `tlbsim-bench`).
pub fn looping_access_stream(pages: u64, refs: u64, laps: u64) -> Vec<MemoryAccess> {
    let mut out = Vec::with_capacity((pages * refs * laps) as usize);
    for _ in 0..laps {
        for p in 0..pages {
            for r in 0..refs {
                out.push(MemoryAccess::read(0x400, (0x10_0000 + p) * 4096 + r * 64));
            }
        }
    }
    out
}

/// The miss-heavy measurement stream: 600 pages (> 128 TLB entries)
/// visited twice each over six laps, so every lap after the first
/// misses on every page and the miss path dominates.
fn engine_stream() -> Vec<MemoryAccess> {
    looping_access_stream(600, 2, 6)
}

/// Runs `kernel` repeatedly until [`MIN_MEASURE`] accumulates and
/// returns the best single-run duration.
fn best_time(mut kernel: impl FnMut()) -> Duration {
    kernel(); // warm-up
    let mut best = Duration::MAX;
    let mut spent = Duration::ZERO;
    while spent < MIN_MEASURE {
        let start = Instant::now();
        kernel();
        let elapsed = start.elapsed();
        spent += elapsed;
        best = best.min(elapsed);
    }
    best
}

/// Measures every scheme plus the DP miss-path comparison.
///
/// # Errors
///
/// Returns [`SimError`] if a scheme configuration is invalid.
pub fn run() -> Result<ThroughputReport, SimError> {
    let stream = engine_stream();
    let labelled = [
        ("none", PrefetcherConfig::none()),
        ("SP", PrefetcherConfig::sequential()),
        ("ASP", PrefetcherConfig::stride()),
        ("MP", PrefetcherConfig::markov()),
        ("RP", PrefetcherConfig::recency()),
        ("DP", PrefetcherConfig::distance()),
    ];

    let mut schemes = Vec::new();
    for (label, prefetcher) in labelled {
        let config = SimConfig::paper_default().with_prefetcher(prefetcher);
        let mut engine = Engine::new(&config)?;
        let best = best_time(|| {
            engine.try_recycle(&config);
            engine.run(stream.iter().copied());
        });
        let ns_per_access = best.as_nanos() as f64 / stream.len() as f64;
        schemes.push(SchemeThroughput {
            scheme: label,
            accesses: stream.len() as u64,
            ns_per_access,
            accesses_per_sec: 1e9 / ns_per_access,
            accuracy: engine.stats().accuracy(),
        });
    }

    let shard_scaling = measure_shard_scaling()?;
    let trace_replay = measure_trace_replay()?;
    let trace_v2 = measure_trace_v2()?;
    let multiprogram = measure_multiprogram()?;
    let service = measure_service()?;
    let adaptive = measure_adaptive()?;

    let misses = mixed_miss_stream(10_000);
    let mut dp = PrefetcherConfig::distance().build()?;
    let mut sink = CandidateBuf::new();
    let sink_best = best_time(|| {
        dp.flush();
        for ctx in &misses {
            sink.clear();
            dp.on_miss(ctx, &mut sink);
        }
    });
    let mut dp_legacy = PrefetcherConfig::distance().build()?;
    let legacy_best = best_time(|| {
        dp_legacy.flush();
        for ctx in &misses {
            std::hint::black_box(dp_legacy.decide(ctx));
        }
    });

    Ok(ThroughputReport {
        schemes,
        miss_path: MissPathComparison {
            sink_ns_per_miss: sink_best.as_nanos() as f64 / misses.len() as f64,
            legacy_ns_per_miss: legacy_best.as_nanos() as f64 / misses.len() as f64,
        },
        shard_scaling,
        trace_replay,
        trace_v2,
        multiprogram,
        service,
        adaptive,
    })
}

/// Times the adaptive families against the plain DP baseline on the
/// miss-heavy engine stream (the same fixture as the scheme table, so
/// the numbers compose).
fn measure_adaptive() -> Result<AdaptiveThroughput, SimError> {
    use tlbsim_core::{ConfidenceConfig, PrefetcherKind};

    let stream = engine_stream();
    let mut confidence_dp = PrefetcherConfig::distance();
    confidence_dp.confidence(ConfidenceConfig::adaptive());
    let mut trend = PrefetcherConfig::trend_stride();
    trend.window(8);
    let ensemble =
        PrefetcherConfig::ensemble_of(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);

    let measure = |prefetcher: PrefetcherConfig| -> Result<f64, SimError> {
        let config = SimConfig::paper_default().with_prefetcher(prefetcher);
        let mut engine = Engine::new(&config)?;
        let best = best_time(|| {
            engine.try_recycle(&config);
            engine.run(stream.iter().copied());
        });
        Ok(best.as_nanos() as f64 / stream.len() as f64)
    };

    Ok(AdaptiveThroughput {
        accesses: stream.len() as u64,
        dp_ns_per_access: measure(PrefetcherConfig::distance())?,
        confidence_dp_ns_per_access: measure(confidence_dp)?,
        trend_ns_per_access: measure(trend)?,
        ensemble_ns_per_access: measure(ensemble)?,
    })
}

/// The shard-scaling fixture: galgel — the paper's highest-miss-rate
/// SPEC application — under the representative DP configuration, at the
/// figure-driver default scale.
fn shard_scaling_fixture() -> (&'static AppSpec, Scale, SimConfig) {
    let app = find_app("galgel").expect("galgel is registered");
    (app, Scale::STANDARD, SimConfig::paper_default())
}

/// The trace-replay fixture: the shard-scaling application at the
/// `SMALL` scale (the recorded file stays a few MiB), under the same DP
/// configuration. `tlbsim-bench`'s `trace_replay` group measures the
/// identical fixture so the gate and this telemetry stay comparable.
pub fn trace_replay_fixture() -> (&'static AppSpec, Scale, SimConfig) {
    let app = find_app("galgel").expect("galgel is registered");
    (app, Scale::SMALL, SimConfig::paper_default())
}

/// Removes a temp file when dropped, so a panic between recording and
/// the end of the measurement cannot strand multi-MiB traces in the
/// temp dir.
pub struct TempFileGuard(pub std::path::PathBuf);

impl Drop for TempFileGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// Times a generator-driven run against an mmap replay of the recorded
/// stream (identical accesses, identical engine configuration).
///
/// Recording to the temp dir can only fail for environmental reasons
/// ([`SimError`] has no I/O variant to carry them), so those failures
/// panic with context; the guard cleans the temp trace up either way.
fn measure_trace_replay() -> Result<TraceReplayThroughput, SimError> {
    let (app, scale, config) = trace_replay_fixture();
    let path = std::env::temp_dir().join(format!(
        "tlbsim-bench-trace-{}-{}.tlbt",
        std::process::id(),
        app.name
    ));
    let guard = TempFileGuard(path.clone());
    let summary = crate::replay::record_spec(app, scale, None, &path)
        .unwrap_or_else(|e| panic!("recording {} to {}: {e}", app.name, path.display()));
    let trace = TraceWorkload::open(&path)
        .unwrap_or_else(|e| panic!("opening just-recorded {}: {e}", path.display()));

    run_app(app, scale, &config)?;
    let generator = best_time(|| {
        std::hint::black_box(run_app(app, scale, &config).expect("validated"));
    });
    let replay = best_time(|| {
        std::hint::black_box(run_app(&trace, scale, &config).expect("validated"));
    });
    let backend = trace.backend();
    drop(trace);
    drop(guard);

    Ok(TraceReplayThroughput {
        app: app.name,
        accesses: summary.records,
        trace_bytes: summary.bytes,
        backend,
        generator_ns_per_access: generator.as_nanos() as f64 / summary.records as f64,
        replay_ns_per_access: replay.as_nanos() as f64 / summary.records as f64,
    })
}

/// Times a flat-v1 mmap replay against a block-compressed-v2 replay of
/// the identical recorded stream (same accesses, same engine
/// configuration), and records what the delta blocks compressed the
/// trace to.
///
/// Environmental failures panic with context, as in
/// [`measure_trace_replay`].
fn measure_trace_v2() -> Result<TraceV2Throughput, SimError> {
    let (app, scale, config) = trace_replay_fixture();
    let v1_path = std::env::temp_dir().join(format!(
        "tlbsim-bench-v1-{}-{}.tlbt",
        std::process::id(),
        app.name
    ));
    let v2_path = std::env::temp_dir().join(format!(
        "tlbsim-bench-v2-{}-{}.tlbt",
        std::process::id(),
        app.name
    ));
    let v1_guard = TempFileGuard(v1_path.clone());
    let v2_guard = TempFileGuard(v2_path.clone());
    let v1 = crate::replay::record_spec(app, scale, None, &v1_path)
        .unwrap_or_else(|e| panic!("recording {} to {}: {e}", app.name, v1_path.display()));
    let v2 = crate::replay::record_spec_with_format(
        app,
        scale,
        None,
        &v2_path,
        crate::replay::RecordFormat::v2_default(),
    )
    .unwrap_or_else(|e| panic!("recording {} to {}: {e}", app.name, v2_path.display()));
    assert_eq!(v1.records, v2.records, "both formats hold the same stream");
    let raw_trace = TraceWorkload::open(&v1_path)
        .unwrap_or_else(|e| panic!("opening just-recorded {}: {e}", v1_path.display()));
    let v2_trace = TraceWorkload::open(&v2_path)
        .unwrap_or_else(|e| panic!("opening just-recorded {}: {e}", v2_path.display()));

    run_app(&raw_trace, scale, &config)?;
    run_app(&v2_trace, scale, &config)?;
    let raw = best_time(|| {
        std::hint::black_box(run_app(&raw_trace, scale, &config).expect("validated"));
    });
    let compressed = best_time(|| {
        std::hint::black_box(run_app(&v2_trace, scale, &config).expect("validated"));
    });
    drop(raw_trace);
    drop(v2_trace);
    drop(v1_guard);
    drop(v2_guard);

    Ok(TraceV2Throughput {
        app: app.name,
        accesses: v1.records,
        v1_bytes: v1.bytes,
        v2_bytes: v2.bytes,
        raw_replay_ns_per_access: raw.as_nanos() as f64 / v1.records as f64,
        compressed_replay_ns_per_access: compressed.as_nanos() as f64 / v1.records as f64,
    })
}

/// The multiprogram fixture: the two highest-profile pointer/graph
/// miss streams (gap + mcf) interleaved round-robin at a realistic
/// preemption quantum, under the representative DP configuration.
/// `tlbsim-bench`'s `multiprogram` group measures the identical fixture
/// so the gate and this telemetry stay comparable.
pub fn multiprogram_fixture() -> (MultiStreamSpec, Scale, SimConfig) {
    let streams: Vec<Arc<dyn StreamSpec>> = ["gap", "mcf"]
        .iter()
        .map(|name| Arc::new(find_app(name).expect("registered")) as Arc<dyn StreamSpec>)
        .collect();
    let mix = MultiStreamSpec::new(streams, Schedule::RoundRobin { quantum: 4096 })
        .expect("two-stream fixture is a valid mix");
    (mix, Scale::SMALL, SimConfig::paper_default())
}

/// Times the component streams back-to-back against the multiprogrammed
/// interleave of the identical accesses (with and without
/// flush-on-switch).
fn measure_multiprogram() -> Result<MultiprogramThroughput, SimError> {
    let (mix, scale, config) = multiprogram_fixture();
    let accesses = mix.stream_len(scale);
    // Describe what the fixture actually is, so an edit to
    // multiprogram_fixture can never leave this snapshot mislabelled.
    let streams = mix.stream_names().iter().map(|s| s.to_string()).collect();
    let Schedule::RoundRobin { quantum } = *mix.schedule() else {
        unreachable!("the multiprogram fixture is round-robin");
    };

    let asid_policy = SwitchPolicy::Asid {
        contexts: mix.streams().len(),
        tables: TablePolicy::Shared,
    };
    // Validate once so the timed kernels can unwrap.
    run_mix(&mix, scale, &config, SwitchPolicy::None)?;
    let single = best_time(|| {
        for stream in mix.streams() {
            std::hint::black_box(run_app(stream, scale, &config).expect("validated"));
        }
    });
    let interleaved = best_time(|| {
        std::hint::black_box(run_mix(&mix, scale, &config, SwitchPolicy::None).expect("validated"));
    });
    let flushed = best_time(|| {
        std::hint::black_box(
            run_mix(&mix, scale, &config, SwitchPolicy::FlushOnSwitch).expect("validated"),
        );
    });
    let asid = best_time(|| {
        std::hint::black_box(run_mix(&mix, scale, &config, asid_policy).expect("validated"));
    });

    Ok(MultiprogramThroughput {
        streams,
        accesses,
        quantum,
        single_stream_ns_per_access: single.as_nanos() as f64 / accesses as f64,
        interleaved_ns_per_access: interleaved.as_nanos() as f64 / accesses as f64,
        flush_interleaved_ns_per_access: flushed.as_nanos() as f64 / accesses as f64,
        asid_interleaved_ns_per_access: asid.as_nanos() as f64 / accesses as f64,
    })
}

/// Times an in-process batch replay of the trace-replay fixture against
/// the identical trace served as jobs by a real daemon over a
/// Unix-domain socket.
///
/// Environmental failures (recording the temp trace, binding the
/// socket, a client-visible protocol error) panic with context, as in
/// [`measure_trace_replay`] — [`SimError`] cannot carry them and the
/// bench host is answerable for its own temp dir.
fn measure_service() -> Result<ServiceThroughput, SimError> {
    let (app, scale, config) = trace_replay_fixture();
    let path = std::env::temp_dir().join(format!(
        "tlbsim-bench-service-{}-{}.tlbt",
        std::process::id(),
        app.name
    ));
    let guard = TempFileGuard(path.clone());
    let summary = crate::replay::record_spec(app, scale, None, &path)
        .unwrap_or_else(|e| panic!("recording {} to {}: {e}", app.name, path.display()));
    let trace = TraceWorkload::open(&path)
        .unwrap_or_else(|e| panic!("opening just-recorded {}: {e}", path.display()));

    run_app(&trace, scale, &config)?;
    let batch = best_time(|| {
        std::hint::black_box(run_app(&trace, scale, &config).expect("validated"));
    });
    drop(trace);

    let socket = std::env::temp_dir().join(format!("tlbsim-bench-{}.sock", std::process::id()));
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: 1,
            queue_depth: 4,
        },
    )
    .unwrap_or_else(|e| panic!("binding bench daemon at {}: {e}", socket.display()));
    let daemon = std::thread::spawn(move || server.run());

    let mut client =
        Client::connect(&socket).unwrap_or_else(|e| panic!("connecting bench daemon: {e}"));
    // Sequential service jobs, so the ratio against the sequential
    // batch path isolates service overhead from shard parallelism.
    let mut job = JobSpec::trace(path.display().to_string());
    job.shards = 1;
    let outcome = client
        .run_job(1, &job)
        .unwrap_or_else(|e| panic!("bench job failed: {e}"));
    assert_eq!(
        outcome.stream_len, summary.records,
        "daemon served the fixture"
    );
    let served = best_time(|| {
        std::hint::black_box(client.run_job(1, &job).expect("validated"));
    });
    client
        .shutdown(true)
        .unwrap_or_else(|e| panic!("bench daemon shutdown failed: {e}"));
    daemon
        .join()
        .expect("bench daemon thread panicked")
        .unwrap_or_else(|e| panic!("bench daemon failed: {e}"));
    drop(guard);

    Ok(ServiceThroughput {
        app: app.name,
        accesses: summary.records,
        batch_ns_per_access: batch.as_nanos() as f64 / summary.records as f64,
        served_ns_per_access: served.as_nanos() as f64 / summary.records as f64,
    })
}

/// Times the sequential path against sharded runs at 2 and 4 shards on
/// the figure-scale DP fixture.
fn measure_shard_scaling() -> Result<ShardScaling, SimError> {
    let (app, scale, config) = shard_scaling_fixture();
    let accesses = app.stream_len(scale);

    // Validate once so the timed kernels can unwrap.
    run_app(app, scale, &config)?;
    let sequential = best_time(|| {
        std::hint::black_box(run_app(app, scale, &config).expect("validated"));
    });
    let sequential_ns = sequential.as_nanos() as f64 / accesses as f64;

    let mut shard_points = Vec::new();
    for shards in [2usize, 4] {
        let best = best_time(|| {
            std::hint::black_box(run_app_sharded(app, scale, &config, shards).expect("validated"));
        });
        let ns = best.as_nanos() as f64 / accesses as f64;
        shard_points.push((shards, ns, sequential_ns / ns));
    }

    Ok(ShardScaling {
        app: app.name,
        accesses,
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        sequential_ns_per_access: sequential_ns,
        shard_points,
    })
}

impl ThroughputReport {
    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Engine throughput (miss-heavy stream)");
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>12} {:>10}",
            "scheme", "accesses/sec", "ns/access", "accuracy"
        );
        for s in &self.schemes {
            let _ = writeln!(
                out,
                "{:<8} {:>14.0} {:>12.2} {:>10.3}",
                s.scheme, s.accesses_per_sec, s.ns_per_access, s.accuracy
            );
        }
        let _ = writeln!(
            out,
            "DP miss path: sink {:.2} ns/miss vs legacy Vec {:.2} ns/miss ({:.2}x)",
            self.miss_path.sink_ns_per_miss,
            self.miss_path.legacy_ns_per_miss,
            self.miss_path.speedup()
        );
        let ss = &self.shard_scaling;
        let _ = writeln!(
            out,
            "Sharded run ({}, {} accesses, {} cpus): sequential {:.2} ns/access",
            ss.app, ss.accesses, ss.cpus, ss.sequential_ns_per_access
        );
        for (shards, ns, speedup) in &ss.shard_points {
            let _ = writeln!(
                out,
                "  {shards} shards: {ns:.2} ns/access ({speedup:.2}x vs sequential)"
            );
        }
        let tr = &self.trace_replay;
        let _ = writeln!(
            out,
            "Trace replay ({}, {} accesses, {} backend): generator {:.2} ns/access, \
             replay {:.2} ns/access ({:.2}x of generator throughput)",
            tr.app,
            tr.accesses,
            tr.backend,
            tr.generator_ns_per_access,
            tr.replay_ns_per_access,
            tr.replay_vs_generator()
        );
        let v2 = &self.trace_v2;
        let _ = writeln!(
            out,
            "Trace v2 ({}, {} accesses): {} -> {} bytes ({:.2}x smaller, {:.2} bytes/record), \
             raw replay {:.2} ns/access, compressed replay {:.2} ns/access \
             ({:.2}x of raw throughput)",
            v2.app,
            v2.accesses,
            v2.v1_bytes,
            v2.v2_bytes,
            v2.compression_ratio(),
            v2.bytes_per_record(),
            v2.raw_replay_ns_per_access,
            v2.compressed_replay_ns_per_access,
            v2.compressed_vs_raw()
        );
        let mp = &self.multiprogram;
        let _ = writeln!(
            out,
            "Multiprogram ({}, {} accesses, quantum {}): single-stream {:.2} ns/access, \
             interleaved {:.2} ns/access ({:.2}x of single-stream throughput), \
             flush-on-switch {:.2} ns/access, asid {:.2} ns/access",
            mp.streams.join("+"),
            mp.accesses,
            mp.quantum,
            mp.single_stream_ns_per_access,
            mp.interleaved_ns_per_access,
            mp.interleave_vs_single_stream(),
            mp.flush_interleaved_ns_per_access,
            mp.asid_interleaved_ns_per_access
        );
        let sv = &self.service;
        let _ = writeln!(
            out,
            "Service ({}, {} accesses): batch {:.2} ns/access, served {:.2} ns/access \
             ({:.2}x of batch throughput)",
            sv.app,
            sv.accesses,
            sv.batch_ns_per_access,
            sv.served_ns_per_access,
            sv.served_vs_batch()
        );
        let ad = &self.adaptive;
        let _ = writeln!(
            out,
            "Adaptive ({} accesses): DP {:.2} ns/access, C+DP {:.2} ns/access \
             ({:.2}x of DP throughput), TP,8 {:.2} ns/access, EP:DP+ASP {:.2} ns/access",
            ad.accesses,
            ad.dp_ns_per_access,
            ad.confidence_dp_ns_per_access,
            ad.confidence_vs_base(),
            ad.trend_ns_per_access,
            ad.ensemble_ns_per_access
        );
        out
    }

    /// Serialises the report as pretty-printed JSON (hand-rolled — the
    /// numbers are all finite floats and the labels are static ASCII).
    pub fn to_json(&self) -> String {
        let mut out =
            String::from("{\n  \"benchmark\": \"tlbsim_throughput\",\n  \"schemes\": [\n");
        for (i, s) in self.schemes.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"scheme\": \"{}\", \"accesses\": {}, \"ns_per_access\": {:.3}, \
                 \"accesses_per_sec\": {:.0}, \"accuracy\": {:.6}}}",
                s.scheme, s.accesses, s.ns_per_access, s.accesses_per_sec, s.accuracy
            );
            out.push_str(if i + 1 < self.schemes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = writeln!(
            out,
            "  ],\n  \"dp_miss_path\": {{\"sink_ns_per_miss\": {:.3}, \
             \"legacy_vec_ns_per_miss\": {:.3}, \"speedup\": {:.3}}},",
            self.miss_path.sink_ns_per_miss,
            self.miss_path.legacy_ns_per_miss,
            self.miss_path.speedup()
        );
        let ss = &self.shard_scaling;
        let _ = writeln!(
            out,
            "  \"sharded_run\": {{\"app\": \"{}\", \"accesses\": {}, \"cpus\": {}, \
             \"sequential_ns_per_access\": {:.3}, \"shards\": [",
            ss.app, ss.accesses, ss.cpus, ss.sequential_ns_per_access
        );
        for (i, (shards, ns, speedup)) in ss.shard_points.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"shards\": {shards}, \"ns_per_access\": {ns:.3}, \
                 \"speedup_vs_sequential\": {speedup:.3}}}"
            );
            out.push_str(if i + 1 < ss.shard_points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]},\n");
        let tr = &self.trace_replay;
        let _ = writeln!(
            out,
            "  \"trace_replay\": {{\"app\": \"{}\", \"accesses\": {}, \"trace_bytes\": {}, \
             \"backend\": \"{}\", \"generator_ns_per_access\": {:.3}, \
             \"replay_ns_per_access\": {:.3}, \"replay_vs_generator\": {:.3}}},",
            tr.app,
            tr.accesses,
            tr.trace_bytes,
            tr.backend,
            tr.generator_ns_per_access,
            tr.replay_ns_per_access,
            tr.replay_vs_generator()
        );
        let v2 = &self.trace_v2;
        let _ = writeln!(
            out,
            "  \"trace_v2\": {{\"app\": \"{}\", \"accesses\": {}, \"v1_bytes\": {}, \
             \"v2_bytes\": {}, \"bytes_per_record\": {:.3}, \"compression_ratio\": {:.3}, \
             \"raw_replay_ns_per_access\": {:.3}, \"compressed_replay_ns_per_access\": {:.3}, \
             \"compressed_vs_raw\": {:.3}}},",
            v2.app,
            v2.accesses,
            v2.v1_bytes,
            v2.v2_bytes,
            v2.bytes_per_record(),
            v2.compression_ratio(),
            v2.raw_replay_ns_per_access,
            v2.compressed_replay_ns_per_access,
            v2.compressed_vs_raw()
        );
        let mp = &self.multiprogram;
        let streams: Vec<String> = mp.streams.iter().map(|s| format!("\"{s}\"")).collect();
        let _ = writeln!(
            out,
            "  \"multiprogram\": {{\"streams\": [{}], \"accesses\": {}, \"quantum\": {}, \
             \"single_stream_ns_per_access\": {:.3}, \"interleaved_ns_per_access\": {:.3}, \
             \"flush_interleaved_ns_per_access\": {:.3}, \
             \"asid_interleaved_ns_per_access\": {:.3}, \
             \"interleave_vs_single_stream\": {:.3}}},",
            streams.join(", "),
            mp.accesses,
            mp.quantum,
            mp.single_stream_ns_per_access,
            mp.interleaved_ns_per_access,
            mp.flush_interleaved_ns_per_access,
            mp.asid_interleaved_ns_per_access,
            mp.interleave_vs_single_stream()
        );
        let sv = &self.service;
        let _ = writeln!(
            out,
            "  \"service\": {{\"app\": \"{}\", \"accesses\": {}, \
             \"batch_ns_per_access\": {:.3}, \"served_ns_per_access\": {:.3}, \
             \"served_vs_batch\": {:.3}}},",
            sv.app,
            sv.accesses,
            sv.batch_ns_per_access,
            sv.served_ns_per_access,
            sv.served_vs_batch()
        );
        let ad = &self.adaptive;
        let _ = writeln!(
            out,
            "  \"adaptive\": {{\"accesses\": {}, \"dp_ns_per_access\": {:.3}, \
             \"confidence_dp_ns_per_access\": {:.3}, \"trend_ns_per_access\": {:.3}, \
             \"ensemble_ns_per_access\": {:.3}, \"confidence_vs_base\": {:.3}}}",
            ad.accesses,
            ad.dp_ns_per_access,
            ad.confidence_dp_ns_per_access,
            ad.trend_ns_per_access,
            ad.ensemble_ns_per_access,
            ad.confidence_vs_base()
        );
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_all_schemes_and_valid_json_shape() {
        let report = run().unwrap();
        assert_eq!(report.schemes.len(), 6);
        for s in &report.schemes {
            assert!(
                s.accesses_per_sec > 0.0,
                "{}: non-positive throughput",
                s.scheme
            );
        }
        assert!(report.miss_path.speedup() > 0.0);
        let ss = &report.shard_scaling;
        assert_eq!(ss.app, "galgel");
        assert!(ss.cpus >= 1);
        assert_eq!(
            ss.shard_points.iter().map(|p| p.0).collect::<Vec<_>>(),
            [2, 4]
        );
        for (shards, ns, speedup) in &ss.shard_points {
            assert!(*ns > 0.0 && *speedup > 0.0, "{shards} shards mis-measured");
        }
        let tr = &report.trace_replay;
        assert_eq!(tr.app, "galgel");
        assert!(tr.accesses > 0);
        assert_eq!(
            tr.trace_bytes,
            tlbsim_trace::HEADER_BYTES as u64 + tr.accesses * tlbsim_trace::RECORD_BYTES as u64
        );
        assert!(tr.backend == "mmap" || tr.backend == "read");
        assert!(tr.replay_vs_generator() > 0.0);
        let v2 = &report.trace_v2;
        assert_eq!(v2.app, "galgel");
        assert_eq!(v2.accesses, tr.accesses);
        assert_eq!(v2.v1_bytes, tr.trace_bytes);
        assert!(v2.v2_bytes < v2.v1_bytes, "v2 must compress the fixture");
        assert!(v2.bytes_per_record() < 17.0);
        assert!(v2.compression_ratio() > 1.0);
        assert!(v2.compressed_vs_raw() > 0.0);
        let mp = &report.multiprogram;
        assert_eq!(mp.streams, vec!["gap", "mcf"]);
        assert!(mp.accesses > 0);
        assert!(mp.interleave_vs_single_stream() > 0.0);
        assert!(mp.flush_interleaved_ns_per_access > 0.0);
        assert!(mp.asid_interleaved_ns_per_access > 0.0);
        let sv = &report.service;
        assert_eq!(sv.app, "galgel");
        assert_eq!(sv.accesses, report.trace_replay.accesses);
        assert!(sv.served_vs_batch() > 0.0);
        let ad = &report.adaptive;
        assert_eq!(ad.accesses, report.schemes[0].accesses);
        assert!(ad.dp_ns_per_access > 0.0);
        assert!(ad.confidence_dp_ns_per_access > 0.0);
        assert!(ad.trend_ns_per_access > 0.0);
        assert!(ad.ensemble_ns_per_access > 0.0);
        assert!(ad.confidence_vs_base() > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"scheme\": \"DP\""));
        assert!(json.contains("dp_miss_path"));
        assert!(json.contains("\"sharded_run\""));
        assert!(json.contains("\"speedup_vs_sequential\""));
        assert!(json.contains("\"trace_replay\""));
        assert!(json.contains("\"replay_vs_generator\""));
        assert!(json.contains("\"trace_v2\""));
        assert!(json.contains("\"compressed_vs_raw\""));
        assert!(json.contains("\"multiprogram\""));
        assert!(json.contains("\"interleave_vs_single_stream\""));
        assert!(json.contains("\"service\""));
        assert!(json.contains("\"served_vs_batch\""));
        assert!(json.contains("\"adaptive\""));
        assert!(json.contains("\"confidence_vs_base\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let rendered = report.render();
        assert!(rendered.contains("DP miss path"));
        assert!(rendered.contains("Trace replay"));
        assert!(rendered.contains("Trace v2"));
        assert!(rendered.contains("Multiprogram"));
        assert!(rendered.contains("Service"));
        assert!(rendered.contains("Adaptive"));
    }
}
