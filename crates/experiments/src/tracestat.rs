//! Trace corpus summarizer (`xp tracestat`).
//!
//! One decode pass per trace file — v1 or v2, sniffed from the header —
//! producing the numbers an experimenter wants before committing hours
//! of simulation to a corpus: record count and kind mix, the page-level
//! footprint (unique 4 KiB pages touched — the quantity a TLB actually
//! contends with), bytes on disk against the flat v1 encoding (the
//! compression the v2 delta blocks bought), and the damage census under
//! the chosen [`DecodePolicy`] (bad records, and for v2 the bad
//! *blocks* that quarantine drops as a unit).

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use tlbsim_core::{AccessKind, MemoryAccess, PageSize};
use tlbsim_trace::{DecodePolicy, TraceHealth};
use tlbsim_workloads::{StreamSpec, TraceWorkload};

use crate::replay::ReplayError;

/// The summary of one trace file (`xp tracestat`).
#[derive(Debug, Clone)]
pub struct TraceStat {
    /// The file summarized.
    pub path: PathBuf,
    /// On-disk format version (1 = flat, 2 = delta blocks).
    pub format_version: u16,
    /// Replay backend the open chose (`"mmap"` / `"read"` / …).
    pub backend: &'static str,
    /// Bytes on disk.
    pub file_bytes: u64,
    /// Records decodable under the policy (what a replay would see).
    pub records: u64,
    /// Data loads among the decodable records.
    pub reads: u64,
    /// Data stores among the decodable records.
    pub writes: u64,
    /// Distinct 4 KiB virtual pages touched.
    pub unique_pages: u64,
    /// Records per v2 block (1 for flat v1).
    pub block_len: u64,
    /// Damage census under `policy`.
    pub health: TraceHealth,
    /// Policy the file was decoded under.
    pub policy: DecodePolicy,
}

impl TraceStat {
    /// Records on the grid: decodable plus quarantined.
    pub fn grid_records(&self) -> u64 {
        self.records + self.health.records_bad
    }

    /// Bytes per grid record as stored (v1 is exactly 17 plus header
    /// amortization; v2 is whatever the deltas compressed to).
    pub fn bytes_per_record(&self) -> f64 {
        if self.grid_records() == 0 {
            0.0
        } else {
            self.file_bytes as f64 / self.grid_records() as f64
        }
    }

    /// What the same grid would occupy in the flat v1 encoding.
    pub fn v1_equivalent_bytes(&self) -> u64 {
        tlbsim_trace::HEADER_BYTES as u64 + self.grid_records() * tlbsim_trace::RECORD_BYTES as u64
    }

    /// Flat-v1 size over actual size (> 1 means the file is smaller
    /// than its flat encoding; exactly ~1 for v1 files).
    pub fn compression_ratio(&self) -> f64 {
        if self.file_bytes == 0 {
            0.0
        } else {
            self.v1_equivalent_bytes() as f64 / self.file_bytes as f64
        }
    }

    /// Bytes of the 4 KiB-page footprint.
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_pages * PageSize::DEFAULT.bytes()
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let pct = |n: u64| {
            if self.records == 0 {
                0.0
            } else {
                100.0 * n as f64 / self.records as f64
            }
        };
        let damage = if self.health.is_clean() {
            "clean".to_owned()
        } else {
            format!("{}", self.health)
        };
        format!(
            "Trace: {} (v{}, {} backend, block {})\n  \
             records   {} decodable of {} on the grid ({} under {})\n  \
             kinds     {} reads ({:.1}%), {} writes ({:.1}%)\n  \
             footprint {} unique pages, {} KiB touched\n  \
             size      {} bytes on disk, {:.2} bytes/record, {:.2}x vs flat v1",
            self.path.display(),
            self.format_version,
            self.backend,
            self.block_len,
            self.records,
            self.grid_records(),
            damage,
            self.policy,
            self.reads,
            pct(self.reads),
            self.writes,
            pct(self.writes),
            self.unique_pages,
            self.footprint_bytes() / 1024,
            self.file_bytes,
            self.bytes_per_record(),
            self.compression_ratio(),
        )
    }

    /// One CSV row (see [`csv_header`]).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3}",
            self.path.display(),
            self.format_version,
            self.block_len,
            self.grid_records(),
            self.records,
            self.health.records_bad,
            self.health.blocks_bad,
            self.reads,
            self.writes,
            self.unique_pages,
            self.file_bytes,
            self.bytes_per_record(),
            self.compression_ratio(),
        )
    }
}

/// Aggregate roll-up of a trace corpus — the summary row `xp
/// tracestat` appends when it is given more than one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusStat {
    /// Files summarized.
    pub files: u64,
    /// Decodable records across the corpus.
    pub records: u64,
    /// Records on the grid (decodable plus quarantined).
    pub grid_records: u64,
    /// Data loads across the corpus.
    pub reads: u64,
    /// Data stores across the corpus.
    pub writes: u64,
    /// Summed per-file page footprints. Files may share pages, so this
    /// is an upper bound on the corpus-wide union.
    pub unique_pages: u64,
    /// Bytes on disk across the corpus.
    pub file_bytes: u64,
    /// What the corpus would occupy in the flat v1 encoding.
    pub v1_equivalent_bytes: u64,
    /// Quarantined records across the corpus.
    pub records_bad: u64,
    /// Quarantined v2 blocks across the corpus.
    pub blocks_bad: u64,
}

impl CorpusStat {
    /// Rolls up per-file summaries into one corpus row.
    pub fn from_stats<'a>(stats: impl IntoIterator<Item = &'a TraceStat>) -> CorpusStat {
        let mut corpus = CorpusStat::default();
        for s in stats {
            corpus.files += 1;
            corpus.records += s.records;
            corpus.grid_records += s.grid_records();
            corpus.reads += s.reads;
            corpus.writes += s.writes;
            corpus.unique_pages += s.unique_pages;
            corpus.file_bytes += s.file_bytes;
            corpus.v1_equivalent_bytes += s.v1_equivalent_bytes();
            corpus.records_bad += s.health.records_bad;
            corpus.blocks_bad += s.health.blocks_bad;
        }
        corpus
    }

    /// Bytes per grid record as stored, corpus-wide.
    pub fn bytes_per_record(&self) -> f64 {
        if self.grid_records == 0 {
            0.0
        } else {
            self.file_bytes as f64 / self.grid_records as f64
        }
    }

    /// Flat-v1 size over actual size, corpus-wide.
    pub fn compression_ratio(&self) -> f64 {
        if self.file_bytes == 0 {
            0.0
        } else {
            self.v1_equivalent_bytes as f64 / self.file_bytes as f64
        }
    }

    /// Multi-line human-readable corpus summary.
    pub fn render(&self) -> String {
        format!(
            "Corpus: {} files\n  \
             records   {} decodable of {} on the grid ({} bad records, {} bad blocks)\n  \
             kinds     {} reads, {} writes\n  \
             footprint {} summed unique pages (union is at most this)\n  \
             size      {} bytes on disk, {:.2} bytes/record, {:.2}x vs flat v1",
            self.files,
            self.records,
            self.grid_records,
            self.records_bad,
            self.blocks_bad,
            self.reads,
            self.writes,
            self.unique_pages,
            self.file_bytes,
            self.bytes_per_record(),
            self.compression_ratio(),
        )
    }

    /// One CSV row in the same column order as [`csv_header`], with
    /// `TOTAL` in the path column and the corpus-invariant version /
    /// block-length columns blanked.
    pub fn to_csv_row(&self) -> String {
        format!(
            "TOTAL,,,{},{},{},{},{},{},{},{},{:.3},{:.3}",
            self.grid_records,
            self.records,
            self.records_bad,
            self.blocks_bad,
            self.reads,
            self.writes,
            self.unique_pages,
            self.file_bytes,
            self.bytes_per_record(),
            self.compression_ratio(),
        )
    }
}

/// Header for [`TraceStat::to_csv_row`].
pub fn csv_header() -> &'static str {
    "path,version,block_len,grid_records,records_ok,records_bad,blocks_bad,\
     reads,writes,unique_pages,file_bytes,bytes_per_record,compression_ratio"
}

/// Summarizes one trace file under `policy` in a single decode pass.
///
/// # Errors
///
/// [`ReplayError`] if the file cannot be opened, or if its damage
/// exceeds what `policy` tolerates (strict rejects any damage — pass a
/// quarantine policy to census a damaged file).
pub fn stat(path: impl AsRef<Path>, policy: DecodePolicy) -> Result<TraceStat, ReplayError> {
    let path = path.as_ref();
    let trace = TraceWorkload::open_with_policy(path, policy)?;
    let file_bytes = std::fs::metadata(path)?.len();

    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut pages: HashSet<u64> = HashSet::new();
    let mut workload = trace.workload();
    let mut buf = vec![MemoryAccess::read(0, 0); 4096];
    loop {
        let filled = workload.fill_batch(&mut buf);
        if filled == 0 {
            break;
        }
        for access in &buf[..filled] {
            match access.kind {
                AccessKind::Read => reads += 1,
                AccessKind::Write => writes += 1,
            }
            pages.insert(PageSize::DEFAULT.page_of(access.vaddr).number());
        }
    }

    Ok(TraceStat {
        path: path.to_owned(),
        format_version: trace.format_version(),
        backend: trace.backend(),
        file_bytes,
        records: trace.stream_len(),
        reads,
        writes,
        unique_pages: pages.len() as u64,
        block_len: trace.seek_alignment(),
        health: trace.health(),
        policy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{record_with_format, RecordFormat};
    use tlbsim_trace::TraceError;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "tlbsim-tracestat-{}-{tag}.tlbt",
            std::process::id()
        ))
    }

    #[test]
    fn v1_and_v2_recordings_census_identically_except_size() {
        let v1 = temp("v1");
        let v2 = temp("v2");
        record_with_format("gap", tlbsim_workloads::Scale::TINY, Some(5000), &v1, {
            RecordFormat::V1
        })
        .unwrap();
        record_with_format(
            "gap",
            tlbsim_workloads::Scale::TINY,
            Some(5000),
            &v2,
            RecordFormat::V2 { block_len: 256 },
        )
        .unwrap();
        let s1 = stat(&v1, DecodePolicy::Strict).unwrap();
        let s2 = stat(&v2, DecodePolicy::Strict).unwrap();
        assert_eq!(s1.format_version, 1);
        assert_eq!(s2.format_version, 2);
        assert_eq!(s2.block_len, 256);
        assert_eq!(s1.records, 5000);
        assert_eq!(
            (s1.records, s1.reads, s1.writes),
            (s2.records, s2.reads, s2.writes)
        );
        assert_eq!(s1.unique_pages, s2.unique_pages);
        assert_eq!(s1.reads + s1.writes, s1.records);
        assert!(s1.unique_pages > 0);
        // v1 bytes are exact; v2 must be strictly smaller (that is the
        // entire point of the format).
        assert_eq!(s1.file_bytes, s1.v1_equivalent_bytes());
        assert!(s2.file_bytes < s1.file_bytes);
        assert!(s2.compression_ratio() > 1.0);
        assert!(s2.bytes_per_record() < 17.0);
        assert!(s1.render().contains("clean"));
        assert!(s2.render().contains("v2"));
        assert_eq!(
            csv_header().split(',').count(),
            s2.to_csv_row().split(',').count()
        );
        std::fs::remove_file(&v1).unwrap();
        std::fs::remove_file(&v2).unwrap();
    }

    #[test]
    fn corpus_rollup_sums_three_tiny_traces() {
        let mut stats = Vec::new();
        for (i, (app, records)) in [("gap", 400u64), ("mcf", 300), ("gap", 200)]
            .iter()
            .enumerate()
        {
            let path = temp(&format!("corpus-{i}"));
            let format = if i == 1 {
                RecordFormat::V2 { block_len: 64 }
            } else {
                RecordFormat::V1
            };
            record_with_format(app, tlbsim_workloads::Scale::TINY, Some(*records), &path, {
                format
            })
            .unwrap();
            stats.push(stat(&path, DecodePolicy::Strict).unwrap());
            std::fs::remove_file(&path).unwrap();
        }

        let corpus = CorpusStat::from_stats(&stats);
        assert_eq!(corpus.files, 3);
        assert_eq!(corpus.records, 900);
        assert_eq!(corpus.grid_records, 900);
        assert_eq!(corpus.reads + corpus.writes, 900);
        assert_eq!(corpus.records_bad, 0);
        assert_eq!(
            corpus.file_bytes,
            stats.iter().map(|s| s.file_bytes).sum::<u64>()
        );
        assert_eq!(
            corpus.v1_equivalent_bytes,
            stats.iter().map(|s| s.v1_equivalent_bytes()).sum::<u64>()
        );
        assert_eq!(
            corpus.unique_pages,
            stats.iter().map(|s| s.unique_pages).sum::<u64>()
        );
        // One member is v2-compressed, so the corpus as a whole sits
        // below its flat encoding.
        assert!(corpus.compression_ratio() > 1.0);
        assert!(corpus.bytes_per_record() < 17.5);
        assert!(corpus.render().contains("Corpus: 3 files"));
        // The TOTAL row lines up with the per-file CSV columns.
        assert_eq!(
            corpus.to_csv_row().split(',').count(),
            csv_header().split(',').count()
        );
        // An empty corpus renders without dividing by zero.
        let empty = CorpusStat::from_stats([]);
        assert_eq!(empty.files, 0);
        assert_eq!(empty.bytes_per_record(), 0.0);
        assert_eq!(empty.compression_ratio(), 0.0);
    }

    #[test]
    fn damaged_v2_census_counts_bad_blocks_under_quarantine() {
        use tlbsim_trace::{FaultKind, FaultPlan};
        let path = temp("damaged");
        record_with_format(
            "gap",
            tlbsim_workloads::Scale::TINY,
            Some(2000),
            &path,
            RecordFormat::V2 { block_len: 16 },
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        FaultPlan::seeded(9, 2000, &[(FaultKind::CorruptKind, 3)]).apply_to_bytes(&mut bytes);
        std::fs::write(&path, bytes).unwrap();

        let err = stat(&path, DecodePolicy::Strict).unwrap_err();
        assert!(matches!(
            err,
            ReplayError::Trace(TraceError::InvalidKind { .. })
        ));

        let s = stat(&path, DecodePolicy::lenient()).unwrap();
        assert!(s.health.blocks_bad >= 1 && s.health.blocks_bad <= 3);
        assert_eq!(s.health.records_bad, s.health.blocks_bad * 16);
        assert_eq!(s.records, 2000 - s.health.records_bad);
        assert_eq!(s.grid_records(), 2000);
        assert!(s.render().contains("bad block"));
        std::fs::remove_file(&path).unwrap();
    }
}
