//! A simple data cache model (extension).
//!
//! The paper positions distance prefetching as "a fairly generic
//! mechanism, that can possibly be used in the context of caches, I/O
//! etc." (§4). This single-level data cache provides the substrate for
//! evaluating the mechanisms at cache-line granularity: the prefetchers
//! are granularity-agnostic (they see opaque block numbers), so the
//! same implementations drive both the TLB and this cache.

use serde::{Deserialize, Serialize};
use tlbsim_core::{Associativity, InvalidGeometry, VirtAddr, VirtPage};

use crate::cache::AssocCache;

/// Geometry of a data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataCacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Set organisation.
    pub assoc: Associativity,
}

impl DataCacheConfig {
    /// A 32 KiB, 64-byte-line, 4-way L1D — a typical configuration of
    /// the paper's era scaled slightly forward.
    pub fn typical_l1d() -> Self {
        DataCacheConfig {
            capacity_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: Associativity::ways_of(4),
        }
    }

    /// Number of lines the cache holds.
    pub fn lines(&self) -> usize {
        (self.capacity_bytes / self.line_bytes.max(1)) as usize
    }
}

impl Default for DataCacheConfig {
    fn default() -> Self {
        DataCacheConfig::typical_l1d()
    }
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// Resident line, demand-fetched or already referenced.
    Hit,
    /// First reference to a line installed by a prefetch — the event
    /// that re-arms tagged prefetching.
    PrefetchedHit,
    /// Not resident; the line is installed (allocate-on-miss).
    Miss,
}

/// A single-level, true-LRU data cache tracking residency and a
/// prefetched tag per line (no payloads — the simulator never needs the
/// data).
///
/// # Examples
///
/// ```
/// use tlbsim_core::VirtAddr;
/// use tlbsim_mmu::{CacheAccess, DataCache, DataCacheConfig};
///
/// let mut cache = DataCache::new(DataCacheConfig::typical_l1d())?;
/// assert_eq!(cache.access(VirtAddr::new(0x1000)), CacheAccess::Miss);
/// assert_eq!(cache.access(VirtAddr::new(0x1008)), CacheAccess::Hit);
/// # Ok::<(), tlbsim_core::InvalidGeometry>(())
/// ```
#[derive(Debug, Clone)]
pub struct DataCache {
    cache: AssocCache<LineState>,
    config: DataCacheConfig,
    line_bits: u32,
    lookups: u64,
    hits: u64,
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    prefetched: bool,
}

impl DataCache {
    /// Creates a cache.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if the line count and associativity
    /// are inconsistent or the line size is not a power of two.
    pub fn new(config: DataCacheConfig) -> Result<Self, InvalidGeometry> {
        // A non-power-of-two line size would break the address split;
        // surface it through the same error type as the set geometry by
        // validating the line count instead.
        let lines = if config.line_bytes.is_power_of_two() {
            config.lines()
        } else {
            0
        };
        Ok(DataCache {
            cache: AssocCache::new(lines, config.assoc)?,
            config,
            line_bits: config.line_bytes.trailing_zeros(),
            lookups: 0,
            hits: 0,
        })
    }

    /// The line ("block number") containing `addr`, in the same keyspace
    /// the prefetchers use for pages.
    pub fn line_of(&self, addr: VirtAddr) -> VirtPage {
        VirtPage::new(addr.raw() >> self.line_bits)
    }

    /// Accesses `addr`; a miss installs the line (allocate-on-miss), and
    /// the first hit to a prefetched line is reported distinctly so
    /// tagged prefetching can re-arm.
    pub fn access(&mut self, addr: VirtAddr) -> CacheAccess {
        self.lookups += 1;
        let line = self.line_of(addr);
        if let Some(state) = self.cache.touch(line) {
            self.hits += 1;
            if state.prefetched {
                state.prefetched = false;
                return CacheAccess::PrefetchedHit;
            }
            return CacheAccess::Hit;
        }
        self.cache.insert(line, LineState { prefetched: false });
        CacheAccess::Miss
    }

    /// Installs `line` as a prefetch, without counting an access.
    pub fn fill_line(&mut self, line: VirtPage) {
        self.cache.insert(line, LineState { prefetched: true });
    }

    /// Returns `true` if `line` is resident (no LRU update).
    pub fn contains_line(&self, line: VirtPage) -> bool {
        self.cache.contains(line)
    }

    /// Configured geometry.
    pub fn config(&self) -> DataCacheConfig {
        self.config
    }

    /// Lookups so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses() as f64 / self.lookups as f64
        }
    }

    /// Invalidates every line.
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_hits_after_fill() {
        let mut c = DataCache::new(DataCacheConfig::typical_l1d()).unwrap();
        assert_eq!(c.access(VirtAddr::new(0x40)), CacheAccess::Miss);
        assert_eq!(c.access(VirtAddr::new(0x7f)), CacheAccess::Hit);
        assert_eq!(c.access(VirtAddr::new(0x80)), CacheAccess::Miss); // next line
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        // 4 lines, fully associative.
        let cfg = DataCacheConfig {
            capacity_bytes: 256,
            line_bytes: 64,
            assoc: Associativity::Full,
        };
        let mut c = DataCache::new(cfg).unwrap();
        for i in 0..4u64 {
            c.access(VirtAddr::new(i * 64));
        }
        c.access(VirtAddr::new(0)); // touch line 0
        c.access(VirtAddr::new(4 * 64)); // evicts line 1
        assert!(c.contains_line(VirtPage::new(0)));
        assert!(!c.contains_line(VirtPage::new(1)));
    }

    #[test]
    fn prefetch_fill_avoids_a_miss_and_tags_once() {
        let mut c = DataCache::new(DataCacheConfig::typical_l1d()).unwrap();
        c.fill_line(VirtPage::new(0x99));
        assert_eq!(
            c.access(VirtAddr::new(0x99 * 64)),
            CacheAccess::PrefetchedHit
        );
        assert_eq!(c.access(VirtAddr::new(0x99 * 64)), CacheAccess::Hit);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn bad_line_size_is_rejected() {
        let cfg = DataCacheConfig {
            capacity_bytes: 1024,
            line_bytes: 48,
            assoc: Associativity::Direct,
        };
        assert!(DataCache::new(cfg).is_err());
    }

    #[test]
    fn typical_l1d_shape() {
        let cfg = DataCacheConfig::typical_l1d();
        assert_eq!(cfg.lines(), 512);
        let c = DataCache::new(cfg).unwrap();
        assert_eq!(c.miss_rate(), 0.0);
    }
}
