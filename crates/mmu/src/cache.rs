//! A generic set-associative, true-LRU cache of virtual-page keyed
//! entries.
//!
//! Both the TLB and the prefetch buffer are instances of this structure
//! (the prefetch buffer is simply fully associative); sharing the
//! implementation keeps their replacement semantics identical, which the
//! paper assumes implicitly by giving a single LRU description for both.

use tlbsim_core::{Asid, Associativity, InvalidGeometry, VirtPage};

#[derive(Debug, Clone)]
struct Way<V> {
    asid: Asid,
    page: VirtPage,
    value: V,
    last_used: u64,
}

/// What [`AssocCache::insert`] displaced.
///
/// `same_asid` distinguishes a victim belonging to the inserting context
/// from one stolen across contexts: a mechanism that tracks evicted TLB
/// entries (recency prefetching) must only see its own context's
/// victims, while capacity accounting wants both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted<V> {
    /// The displaced entry's page.
    pub page: VirtPage,
    /// The displaced entry's value.
    pub value: V,
    /// `true` if the victim was tagged with the inserting context's ASID.
    pub same_asid: bool,
}

/// A fixed-capacity set-associative cache mapping [`VirtPage`] to `V`
/// with true-LRU replacement per set.
///
/// Every entry carries the [`Asid`] that was current when it was
/// installed; lookups match on `(asid, page)` against the cache's
/// current-context register ([`set_asid`](AssocCache::set_asid)), so two
/// contexts can hold the same virtual page side by side. The set index
/// stays a pure function of the page — like hardware ASID-tagged TLBs,
/// the context lives in the tag, not the index — which is what makes a
/// fully evicted context indistinguishable from a flushed cache.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{Associativity, VirtPage};
/// use tlbsim_mmu::AssocCache;
///
/// let mut cache: AssocCache<u32> = AssocCache::new(2, Associativity::Full)?;
/// cache.insert(VirtPage::new(1), 10);
/// cache.insert(VirtPage::new(2), 20);
/// cache.touch(VirtPage::new(1));
/// // 2 is now least recently used and gets evicted.
/// let evicted = cache.insert(VirtPage::new(3), 30);
/// assert_eq!(evicted.map(|e| e.page), Some(VirtPage::new(2)));
/// # Ok::<(), tlbsim_core::InvalidGeometry>(())
/// ```
#[derive(Debug, Clone)]
pub struct AssocCache<V> {
    sets: Vec<Vec<Way<V>>>,
    ways: usize,
    capacity: usize,
    assoc: Associativity,
    tick: u64,
    asid: Asid,
}

impl<V> AssocCache<V> {
    /// Creates a cache of `capacity` entries organised by `assoc`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if `capacity` is zero or not divisible
    /// by the way count implied by `assoc`.
    pub fn new(capacity: usize, assoc: Associativity) -> Result<Self, InvalidGeometry> {
        let set_count = assoc.sets(capacity)?;
        let ways = assoc.ways(capacity);
        let mut sets = Vec::with_capacity(set_count);
        for _ in 0..set_count {
            sets.push(Vec::with_capacity(ways));
        }
        Ok(AssocCache {
            sets,
            ways,
            capacity,
            assoc,
            tick: 0,
            asid: Asid::DEFAULT,
        })
    }

    fn set_index(&self, page: VirtPage) -> usize {
        (page.number() % self.sets.len() as u64) as usize
    }

    /// Switches the current context: subsequent lookups and installs are
    /// tagged with `asid`. A pure register write — no entry is touched.
    pub fn set_asid(&mut self, asid: Asid) {
        self.asid = asid;
    }

    /// The current context tag.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Invalidates every entry tagged with `asid`, leaving other
    /// contexts' entries (and the LRU clock) untouched.
    pub fn evict_asid(&mut self, asid: Asid) {
        for set in &mut self.sets {
            set.retain(|w| w.asid != asid);
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `page` in the current context, marking it most recently
    /// used on a hit.
    pub fn touch(&mut self, page: VirtPage) -> Option<&mut V> {
        let tick = self.bump();
        let asid = self.asid;
        let idx = self.set_index(page);
        self.sets[idx]
            .iter_mut()
            .find(|w| w.page == page && w.asid == asid)
            .map(|w| {
                w.last_used = tick;
                &mut w.value
            })
    }

    /// Looks up `page` in the current context without changing recency.
    pub fn peek(&self, page: VirtPage) -> Option<&V> {
        let set = &self.sets[self.set_index(page)];
        set.iter()
            .find(|w| w.page == page && w.asid == self.asid)
            .map(|w| &w.value)
    }

    /// Returns `true` if `page` is resident (no recency update).
    pub fn contains(&self, page: VirtPage) -> bool {
        self.peek(page).is_some()
    }

    /// Inserts `page -> value` under the current context as most
    /// recently used.
    ///
    /// Returns the [`Evicted`] entry if the set was full (LRU across all
    /// contexts in the set), or the previous value under the same
    /// `(asid, page)` if it was already resident.
    pub fn insert(&mut self, page: VirtPage, value: V) -> Option<Evicted<V>> {
        let tick = self.bump();
        let ways = self.ways;
        let asid = self.asid;
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        if let Some(w) = set.iter_mut().find(|w| w.page == page && w.asid == asid) {
            w.last_used = tick;
            let old = std::mem::replace(&mut w.value, value);
            return Some(Evicted {
                page,
                value: old,
                same_asid: true,
            });
        }
        let mut evicted = None;
        if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let w = set.swap_remove(victim);
            evicted = Some(Evicted {
                page: w.page,
                value: w.value,
                same_asid: w.asid == asid,
            });
        }
        set.push(Way {
            asid,
            page,
            value,
            last_used: tick,
        });
        evicted
    }

    /// Removes `page` from the current context, returning its value.
    pub fn remove(&mut self, page: VirtPage) -> Option<V> {
        let asid = self.asid;
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|w| w.page == page && w.asid == asid)?;
        Some(set.swap_remove(pos).value)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Configured associativity.
    pub fn associativity(&self) -> Associativity {
        self.assoc
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Iterates over resident `(page, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPage, &V)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|w| (w.page, &w.value)))
    }

    /// The least recently used page of the set `page` maps to (what an
    /// insert of `page` would evict if the set is full and `page` absent).
    pub fn victim_for(&self, page: VirtPage) -> Option<VirtPage> {
        let set = &self.sets[self.set_index(page)];
        if set.len() < self.ways {
            return None;
        }
        set.iter().min_by_key(|w| w.last_used).map(|w| w.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(cap: usize) -> AssocCache<u64> {
        AssocCache::new(cap, Associativity::Full).unwrap()
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(AssocCache::<()>::new(0, Associativity::Direct).is_err());
        assert!(AssocCache::<()>::new(6, Associativity::ways_of(4)).is_err());
    }

    #[test]
    fn lru_eviction_order_is_exact() {
        let mut c = full(3);
        for p in [1u64, 2, 3] {
            c.insert(VirtPage::new(p), p);
        }
        c.touch(VirtPage::new(1));
        c.touch(VirtPage::new(2));
        // LRU order now: 3, 1, 2.
        assert_eq!(c.victim_for(VirtPage::new(9)), Some(VirtPage::new(3)));
        let ev = c.insert(VirtPage::new(4), 4);
        assert_eq!(
            ev,
            Some(Evicted {
                page: VirtPage::new(3),
                value: 3,
                same_asid: true
            })
        );
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = full(2);
        c.insert(VirtPage::new(1), 10);
        let old = c.insert(VirtPage::new(1), 20);
        assert_eq!(
            old,
            Some(Evicted {
                page: VirtPage::new(1),
                value: 10,
                same_asid: true
            })
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(VirtPage::new(1)), Some(&20));
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = full(2);
        c.insert(VirtPage::new(1), 1);
        c.insert(VirtPage::new(2), 2);
        let _ = c.peek(VirtPage::new(1));
        // 1 is still LRU despite the peek.
        let ev = c.insert(VirtPage::new(3), 3);
        assert_eq!(ev.map(|e| (e.page, e.value)), Some((VirtPage::new(1), 1)));
    }

    #[test]
    fn remove_frees_a_way() {
        let mut c = full(2);
        c.insert(VirtPage::new(1), 1);
        c.insert(VirtPage::new(2), 2);
        assert_eq!(c.remove(VirtPage::new(1)), Some(1));
        assert_eq!(c.len(), 1);
        assert!(c.insert(VirtPage::new(3), 3).is_none());
    }

    #[test]
    fn set_associative_sets_are_independent() {
        // 4 entries, 2-way: 2 sets. Evens in set 0, odds in set 1.
        let mut c: AssocCache<u64> = AssocCache::new(4, Associativity::ways_of(2)).unwrap();
        c.insert(VirtPage::new(0), 0);
        c.insert(VirtPage::new(2), 2);
        c.insert(VirtPage::new(4), 4); // evicts 0, not the odd set
        c.insert(VirtPage::new(1), 1);
        assert!(!c.contains(VirtPage::new(0)));
        assert!(c.contains(VirtPage::new(1)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn direct_mapped_conflicts_are_immediate() {
        let mut c: AssocCache<u64> = AssocCache::new(4, Associativity::Direct).unwrap();
        c.insert(VirtPage::new(0), 0);
        let ev = c.insert(VirtPage::new(4), 4);
        assert_eq!(ev.map(|e| (e.page, e.value)), Some((VirtPage::new(0), 0)));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = full(2);
        c.insert(VirtPage::new(1), 1);
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn len_bounded_under_stress() {
        let mut c: AssocCache<u64> = AssocCache::new(8, Associativity::ways_of(4)).unwrap();
        for i in 0..10_000u64 {
            c.insert(VirtPage::new(i * 7 % 333), i);
            assert!(c.len() <= 8);
        }
    }

    #[test]
    fn contexts_are_isolated_but_share_capacity() {
        let mut c = full(3);
        c.insert(VirtPage::new(1), 10);
        c.set_asid(Asid::new(1));
        // Same page, different context: a distinct entry, not a replace.
        c.insert(VirtPage::new(1), 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(VirtPage::new(1)), Some(&11));
        assert!(c.touch(VirtPage::new(1)).is_some());
        c.set_asid(Asid::DEFAULT);
        assert_eq!(c.peek(VirtPage::new(1)), Some(&10));
        // Capacity is shared: filling from context 0 can steal context
        // 1's way, and the eviction is flagged cross-context.
        c.insert(VirtPage::new(2), 20);
        c.insert(VirtPage::new(3), 30);
        let ev = c.insert(VirtPage::new(4), 40).unwrap();
        assert!(!ev.same_asid);
        assert_eq!(ev.page, VirtPage::new(1));
        assert_eq!(ev.value, 11);
    }

    #[test]
    fn evict_asid_is_a_targeted_flush() {
        let mut c = full(4);
        c.insert(VirtPage::new(1), 1);
        c.set_asid(Asid::new(2));
        c.insert(VirtPage::new(1), 2);
        c.insert(VirtPage::new(9), 9);
        c.evict_asid(Asid::new(2));
        assert!(!c.contains(VirtPage::new(1)));
        assert!(!c.contains(VirtPage::new(9)));
        c.set_asid(Asid::DEFAULT);
        assert_eq!(c.peek(VirtPage::new(1)), Some(&1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_is_scoped_to_the_current_context() {
        let mut c = full(2);
        c.insert(VirtPage::new(5), 50);
        c.set_asid(Asid::new(1));
        assert_eq!(c.remove(VirtPage::new(5)), None);
        c.set_asid(Asid::DEFAULT);
        assert_eq!(c.remove(VirtPage::new(5)), Some(50));
    }

    #[test]
    fn iter_covers_all_residents() {
        let mut c = full(4);
        for p in [5u64, 6, 7] {
            c.insert(VirtPage::new(p), p);
        }
        let mut pages: Vec<u64> = c.iter().map(|(p, _)| p.number()).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![5, 6, 7]);
    }
}
