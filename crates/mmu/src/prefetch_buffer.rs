//! The prefetch buffer shared by every prefetching mechanism.
//!
//! Prefetched translations are *not* inserted into the TLB directly —
//! they land in this small fully-associative buffer that is "concurrently
//! looked up with the TLB, and the entry is moved over to the TLB only on
//! an actual reference" (§2). This guarantees prefetching can never
//! increase the TLB miss count; the price is that an aggressive mechanism
//! can evict its own not-yet-used prefetches from the buffer, which is
//! exactly the effect that degrades ASP at `r = 1024` in Figure 7.

use tlbsim_core::{Asid, Associativity, InvalidGeometry, PhysPage, VirtPage};

use crate::cache::AssocCache;

/// The paper's representative prefetch-buffer size (`b = 16`).
pub const DEFAULT_PREFETCH_BUFFER_ENTRIES: usize = 16;

#[derive(Debug, Clone, Copy)]
struct PbEntry {
    frame: PhysPage,
}

/// A fully-associative LRU buffer of prefetched translations.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{PhysPage, VirtPage};
/// use tlbsim_mmu::PrefetchBuffer;
///
/// let mut pb = PrefetchBuffer::new(16)?;
/// pb.insert(VirtPage::new(7), PhysPage::new(70));
/// // A reference to page 7 promotes the entry out of the buffer.
/// assert_eq!(pb.promote(VirtPage::new(7)), Some(PhysPage::new(70)));
/// assert!(pb.promote(VirtPage::new(7)).is_none());
/// # Ok::<(), tlbsim_core::InvalidGeometry>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    cache: AssocCache<PbEntry>,
    inserted: u64,
    promoted: u64,
    evicted_unused: u64,
}

impl PrefetchBuffer {
    /// Creates a buffer of `entries` translations.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if `entries` is zero.
    pub fn new(entries: usize) -> Result<Self, InvalidGeometry> {
        Ok(PrefetchBuffer {
            cache: AssocCache::new(entries, Associativity::Full)?,
            inserted: 0,
            promoted: 0,
            evicted_unused: 0,
        })
    }

    /// Inserts a prefetched translation, evicting the LRU entry if full.
    ///
    /// Returns the evicted page, which by construction was never used
    /// (used entries leave through [`PrefetchBuffer::promote`]).
    pub fn insert(&mut self, page: VirtPage, frame: PhysPage) -> Option<VirtPage> {
        self.inserted += 1;
        // A capacity victim is wasted traffic whichever context owned
        // it; only a same-(asid, page) overwrite is not an eviction.
        let evicted = self
            .cache
            .insert(page, PbEntry { frame })
            .filter(|e| !(e.same_asid && e.page == page))
            .map(|e| e.page);
        if evicted.is_some() {
            self.evicted_unused += 1;
        }
        evicted
    }

    /// Returns `true` if `page` is buffered (no recency update).
    pub fn contains(&self, page: VirtPage) -> bool {
        self.cache.contains(page)
    }

    /// Removes and returns the translation for `page` on an actual
    /// reference — the "move over to the TLB" step.
    pub fn promote(&mut self, page: VirtPage) -> Option<PhysPage> {
        let entry = self.cache.remove(page)?;
        self.promoted += 1;
        Some(entry.frame)
    }

    /// Invalidates every buffered translation.
    pub fn flush(&mut self) {
        self.cache.flush();
    }

    /// Switches the current context tag (flush-free context switch).
    pub fn set_asid(&mut self, asid: Asid) {
        self.cache.set_asid(asid);
    }

    /// The current context tag.
    pub fn asid(&self) -> Asid {
        self.cache.asid()
    }

    /// Invalidates every buffered translation tagged with `asid` without
    /// counting the drops as wasted prefetches — mirroring
    /// [`flush`](PrefetchBuffer::flush), which the degeneration argument
    /// (one live context ⇒ flush semantics) depends on.
    pub fn evict_asid(&mut self, asid: Asid) {
        self.cache.evict_asid(asid);
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Buffer capacity (`b` in the paper).
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Prefetches inserted since creation.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Prefetches promoted to the TLB (i.e. useful prefetches).
    pub fn promoted(&self) -> u64 {
        self.promoted
    }

    /// Prefetches evicted before ever being used (wasted traffic).
    pub fn evicted_unused(&self) -> u64 {
        self.evicted_unused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pb(n: usize) -> PrefetchBuffer {
        PrefetchBuffer::new(n).unwrap()
    }

    #[test]
    fn promote_removes_the_entry() {
        let mut b = pb(4);
        b.insert(VirtPage::new(1), PhysPage::new(10));
        assert!(b.contains(VirtPage::new(1)));
        assert_eq!(b.promote(VirtPage::new(1)), Some(PhysPage::new(10)));
        assert!(!b.contains(VirtPage::new(1)));
        assert_eq!(b.promoted(), 1);
    }

    #[test]
    fn overflow_evicts_lru_and_counts_waste() {
        let mut b = pb(2);
        b.insert(VirtPage::new(1), PhysPage::new(1));
        b.insert(VirtPage::new(2), PhysPage::new(2));
        let ev = b.insert(VirtPage::new(3), PhysPage::new(3));
        assert_eq!(ev, Some(VirtPage::new(1)));
        assert_eq!(b.evicted_unused(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn reinsert_same_page_is_not_waste() {
        let mut b = pb(2);
        b.insert(VirtPage::new(1), PhysPage::new(1));
        let ev = b.insert(VirtPage::new(1), PhysPage::new(1));
        assert_eq!(ev, None);
        assert_eq!(b.evicted_unused(), 0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.inserted(), 2);
    }

    #[test]
    fn aggressive_insertion_starves_earlier_prefetches() {
        // The Figure-7 ASP-at-1024 effect in miniature: 4 useful entries
        // pushed out by a flood before the reference arrives.
        let mut b = pb(4);
        for p in 1..=4u64 {
            b.insert(VirtPage::new(p), PhysPage::new(p));
        }
        for p in 100..108u64 {
            b.insert(VirtPage::new(p), PhysPage::new(p));
        }
        for p in 1..=4u64 {
            assert_eq!(b.promote(VirtPage::new(p)), None);
        }
        assert_eq!(b.evicted_unused(), 8);
    }

    #[test]
    fn flush_empties_buffer() {
        let mut b = pb(2);
        b.insert(VirtPage::new(1), PhysPage::new(1));
        b.flush();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    fn contexts_buffer_independently() {
        let mut b = pb(4);
        b.insert(VirtPage::new(1), PhysPage::new(10));
        b.set_asid(Asid::new(3));
        assert!(!b.contains(VirtPage::new(1)));
        assert_eq!(b.promote(VirtPage::new(1)), None);
        b.insert(VirtPage::new(1), PhysPage::new(30));
        assert_eq!(b.promote(VirtPage::new(1)), Some(PhysPage::new(30)));
        b.set_asid(Asid::DEFAULT);
        assert_eq!(b.promote(VirtPage::new(1)), Some(PhysPage::new(10)));
    }

    #[test]
    fn evict_asid_does_not_count_waste() {
        let mut b = pb(2);
        b.insert(VirtPage::new(1), PhysPage::new(1));
        b.evict_asid(Asid::DEFAULT);
        assert!(b.is_empty());
        assert_eq!(b.evicted_unused(), 0);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(PrefetchBuffer::new(0).is_err());
    }
}
