//! A two-level TLB hierarchy (extension).
//!
//! The paper's introduction lists "multilevel hierarchies" among the
//! hardware levers for TLB performance; this module implements the
//! standard inclusive two-level arrangement so the simulator can study
//! prefetching into an L2 TLB, one of the §4 future-work directions.

use serde::{Deserialize, Serialize};
use tlbsim_core::{InvalidGeometry, PhysPage, VirtPage};

use crate::tlb::{Tlb, TlbConfig};

/// Geometry of a two-level TLB hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Small, fast first level.
    pub l1: TlbConfig,
    /// Larger second level, looked up on an L1 miss.
    pub l2: TlbConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: TlbConfig::fully_associative(16),
            l2: TlbConfig::paper_default(),
        }
    }
}

/// Where a hierarchy lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyHit {
    /// Found in the first level.
    L1(PhysPage),
    /// Missed L1 but found in the second level (entry promoted to L1).
    L2(PhysPage),
    /// Missed both levels.
    Miss,
}

/// An inclusive two-level TLB.
///
/// Fills go into both levels; L2 hits are promoted into L1. An L2
/// eviction does not back-invalidate L1 (mirroring real designs where
/// strict inclusion is maintained lazily), so "inclusive" here describes
/// the fill policy.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{PhysPage, VirtPage};
/// use tlbsim_mmu::{HierarchyConfig, HierarchyHit, TlbHierarchy};
///
/// let mut h = TlbHierarchy::new(HierarchyConfig::default())?;
/// h.fill(VirtPage::new(1), PhysPage::new(10));
/// assert!(matches!(h.lookup(VirtPage::new(1)), HierarchyHit::L1(_)));
/// # Ok::<(), tlbsim_core::InvalidGeometry>(())
/// ```
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    l1: Tlb,
    l2: Tlb,
}

impl TlbHierarchy {
    /// Creates a hierarchy with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if either level's geometry is invalid.
    pub fn new(config: HierarchyConfig) -> Result<Self, InvalidGeometry> {
        Ok(TlbHierarchy {
            l1: Tlb::new(config.l1)?,
            l2: Tlb::new(config.l2)?,
        })
    }

    /// Looks up both levels, promoting L2 hits into L1.
    pub fn lookup(&mut self, page: VirtPage) -> HierarchyHit {
        if let Some(frame) = self.l1.lookup(page) {
            return HierarchyHit::L1(frame);
        }
        if let Some(frame) = self.l2.lookup(page) {
            self.l1.fill(page, frame);
            return HierarchyHit::L2(frame);
        }
        HierarchyHit::Miss
    }

    /// Installs a translation into both levels.
    pub fn fill(&mut self, page: VirtPage, frame: PhysPage) {
        self.l2.fill(page, frame);
        self.l1.fill(page, frame);
    }

    /// Flushes both levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// First-level statistics.
    pub fn l1(&self) -> &Tlb {
        &self.l1
    }

    /// Second-level statistics.
    pub fn l2(&self) -> &Tlb {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy(l1: usize, l2: usize) -> TlbHierarchy {
        TlbHierarchy::new(HierarchyConfig {
            l1: TlbConfig::fully_associative(l1),
            l2: TlbConfig::fully_associative(l2),
        })
        .unwrap()
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut h = hierarchy(1, 4);
        h.fill(VirtPage::new(1), PhysPage::new(1));
        h.fill(VirtPage::new(2), PhysPage::new(2)); // evicts 1 from L1 only
        assert!(matches!(h.lookup(VirtPage::new(1)), HierarchyHit::L2(_)));
        // Promoted: next lookup hits L1.
        assert!(matches!(h.lookup(VirtPage::new(1)), HierarchyHit::L1(_)));
    }

    #[test]
    fn total_miss_reported() {
        let mut h = hierarchy(1, 2);
        assert!(matches!(h.lookup(VirtPage::new(9)), HierarchyHit::Miss));
    }

    #[test]
    fn l1_filter_reduces_l2_lookups() {
        let mut h = hierarchy(2, 8);
        h.fill(VirtPage::new(1), PhysPage::new(1));
        for _ in 0..10 {
            h.lookup(VirtPage::new(1));
        }
        assert_eq!(h.l2().lookups(), 0);
        assert_eq!(h.l1().hits(), 10);
    }

    #[test]
    fn flush_clears_both_levels() {
        let mut h = hierarchy(2, 4);
        h.fill(VirtPage::new(1), PhysPage::new(1));
        h.flush();
        assert!(matches!(h.lookup(VirtPage::new(1)), HierarchyHit::Miss));
    }
}
