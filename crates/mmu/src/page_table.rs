//! A demand-allocating page table.
//!
//! The simulator never sees real physical memory, so the page table
//! simply hands out physical frames on first touch and remembers the
//! mapping, while counting the walks that a miss handler would perform.
//! Recency prefetching conceptually stores its LRU-stack pointers in
//! these entries (the paper's Figure 5); the pointer state itself lives
//! inside `tlbsim_core::RecencyPrefetcher`, and this table accounts for
//! the capacity those two extra words would occupy via
//! [`PageTable::rp_overhead_bytes`].

use std::collections::HashMap;

use tlbsim_core::{PhysPage, VirtPage};

/// A virtual-to-physical mapping built on demand.
///
/// # Examples
///
/// ```
/// use tlbsim_core::VirtPage;
/// use tlbsim_mmu::PageTable;
///
/// let mut pt = PageTable::new();
/// let f1 = pt.translate(VirtPage::new(42));
/// let f2 = pt.translate(VirtPage::new(42));
/// assert_eq!(f1, f2); // stable mapping
/// assert_eq!(pt.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    map: HashMap<VirtPage, PhysPage>,
    next_frame: u64,
    walks: u64,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Translates `page`, allocating a fresh frame on first touch, and
    /// counts one page walk.
    pub fn translate(&mut self, page: VirtPage) -> PhysPage {
        self.walks += 1;
        if let Some(frame) = self.map.get(&page) {
            return *frame;
        }
        let frame = PhysPage::new(self.next_frame);
        self.next_frame += 1;
        self.map.insert(page, frame);
        frame
    }

    /// Looks up an existing mapping without counting a walk or
    /// allocating.
    pub fn peek(&self, page: VirtPage) -> Option<PhysPage> {
        self.map.get(&page).copied()
    }

    /// Number of mapped pages (the process footprint in pages).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no page has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Page walks performed (TLB miss handler invocations).
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Extra page-table bytes recency prefetching would add: two
    /// pointers (8 bytes each) per PTE — the storage-cost asymmetry the
    /// paper's Table 1 calls out.
    pub fn rp_overhead_bytes(&self) -> u64 {
        self.map.len() as u64 * 16
    }

    /// Allocating snapshot of every mapped page, sorted by page number.
    ///
    /// Off the hot path: the sharded runner calls this once per shard at
    /// the end of a run to compute the exact footprint union across
    /// shards (pages touched by several shards must count once).
    pub fn pages_snapshot(&self) -> Vec<VirtPage> {
        let mut pages: Vec<VirtPage> = self.map.keys().copied().collect();
        pages.sort_unstable();
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_unique_per_page() {
        let mut pt = PageTable::new();
        let a = pt.translate(VirtPage::new(1));
        let b = pt.translate(VirtPage::new(2));
        assert_ne!(a, b);
    }

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new();
        let first = pt.translate(VirtPage::new(7));
        for _ in 0..5 {
            assert_eq!(pt.translate(VirtPage::new(7)), first);
        }
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.walks(), 6);
    }

    #[test]
    fn peek_never_allocates() {
        let mut pt = PageTable::new();
        assert_eq!(pt.peek(VirtPage::new(3)), None);
        assert!(pt.is_empty());
        pt.translate(VirtPage::new(3));
        assert!(pt.peek(VirtPage::new(3)).is_some());
        assert_eq!(pt.walks(), 1);
    }

    #[test]
    fn rp_overhead_scales_with_footprint() {
        let mut pt = PageTable::new();
        for p in 0..100u64 {
            pt.translate(VirtPage::new(p));
        }
        assert_eq!(pt.rp_overhead_bytes(), 1600);
    }
}
