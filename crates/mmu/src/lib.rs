//! # tlbsim-mmu — address-translation substrate
//!
//! The hardware structures around the prefetching mechanisms of
//! `tlbsim-core`:
//!
//! * [`Tlb`] — a true-LRU, set-/fully-associative translation lookaside
//!   buffer with hit/miss accounting (the paper's representative
//!   configuration is 128 entries, fully associative);
//! * [`PrefetchBuffer`] — the small fully-associative buffer prefetched
//!   translations land in, looked up concurrently with the TLB and
//!   drained by promotion on an actual reference (`b = 16` by default);
//! * [`PageTable`] — a demand-allocating VPN→PFN mapping with walk
//!   accounting;
//! * [`TlbHierarchy`] — an optional two-level TLB (extension);
//! * [`AssocCache`] — the shared set-associative LRU machinery.
//!
//! ## Quick start
//!
//! ```
//! use tlbsim_core::VirtPage;
//! use tlbsim_mmu::{PageTable, PrefetchBuffer, Tlb, TlbConfig};
//!
//! let mut tlb = Tlb::new(TlbConfig::paper_default())?;
//! let mut pb = PrefetchBuffer::new(16)?;
//! let mut pt = PageTable::new();
//!
//! let page = VirtPage::new(0x1234);
//! if tlb.lookup(page).is_none() {
//!     // TLB miss: check the prefetch buffer before walking.
//!     let frame = pb.promote(page).unwrap_or_else(|| pt.translate(page));
//!     tlb.fill(page, frame);
//! }
//! # Ok::<(), tlbsim_core::InvalidGeometry>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod data_cache;
mod hierarchy;
mod page_table;
mod prefetch_buffer;
mod tlb;

pub use cache::{AssocCache, Evicted};
pub use data_cache::{CacheAccess, DataCache, DataCacheConfig};
pub use hierarchy::{HierarchyConfig, HierarchyHit, TlbHierarchy};
pub use page_table::PageTable;
pub use prefetch_buffer::{PrefetchBuffer, DEFAULT_PREFETCH_BUFFER_ENTRIES};
pub use tlb::{Tlb, TlbConfig, TlbFill};
