//! The translation lookaside buffer model.
//!
//! A true-LRU, set-associative (or fully-associative) cache of virtual
//! page translations. The paper's representative configuration is a
//! 128-entry fully-associative d-TLB; the sensitivity study also uses 64
//! and 256 entries and 2-/4-way organisations.

use serde::{Deserialize, Serialize};
use tlbsim_core::{Asid, Associativity, InvalidGeometry, PhysPage, VirtPage};

use crate::cache::AssocCache;

/// Geometry of a TLB.
///
/// # Examples
///
/// ```
/// use tlbsim_mmu::TlbConfig;
///
/// let cfg = TlbConfig::paper_default();
/// assert_eq!(cfg.entries, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total translation entries.
    pub entries: usize,
    /// Organisation of those entries.
    pub assoc: Associativity,
}

impl TlbConfig {
    /// The paper's representative 128-entry fully-associative d-TLB.
    pub fn paper_default() -> Self {
        TlbConfig {
            entries: 128,
            assoc: Associativity::Full,
        }
    }

    /// A fully-associative TLB of `entries` entries.
    pub fn fully_associative(entries: usize) -> Self {
        TlbConfig {
            entries,
            assoc: Associativity::Full,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::paper_default()
    }
}

/// The result of a TLB fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbFill {
    /// The translation displaced by the fill, if the set was full. This
    /// is what recency prefetching pushes onto its LRU stack. Victims
    /// belonging to *another* context are reported as `None`: the
    /// mechanism tracking this context must not learn foreign pages.
    pub evicted: Option<VirtPage>,
}

/// A data TLB.
///
/// # Examples
///
/// ```
/// use tlbsim_core::PhysPage;
/// use tlbsim_mmu::{Tlb, TlbConfig};
/// use tlbsim_core::VirtPage;
///
/// let mut tlb = Tlb::new(TlbConfig::fully_associative(2))?;
/// tlb.fill(VirtPage::new(1), PhysPage::new(100));
/// assert!(tlb.lookup(VirtPage::new(1)).is_some());
/// assert!(tlb.lookup(VirtPage::new(9)).is_none());
/// # Ok::<(), tlbsim_core::InvalidGeometry>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cache: AssocCache<PhysPage>,
    config: TlbConfig,
    lookups: u64,
    hits: u64,
}

impl Tlb {
    /// Creates a TLB with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if the entry count and associativity
    /// are inconsistent.
    pub fn new(config: TlbConfig) -> Result<Self, InvalidGeometry> {
        Ok(Tlb {
            cache: AssocCache::new(config.entries, config.assoc)?,
            config,
            lookups: 0,
            hits: 0,
        })
    }

    /// Looks up a translation, updating LRU state and hit counters.
    pub fn lookup(&mut self, page: VirtPage) -> Option<PhysPage> {
        self.lookups += 1;
        match self.cache.touch(page) {
            Some(frame) => {
                self.hits += 1;
                Some(*frame)
            }
            None => None,
        }
    }

    /// Returns `true` if `page` is resident without touching LRU state or
    /// counters (used when filtering prefetch candidates).
    pub fn contains(&self, page: VirtPage) -> bool {
        self.cache.contains(page)
    }

    /// Installs a translation as most recently used.
    pub fn fill(&mut self, page: VirtPage, frame: PhysPage) -> TlbFill {
        // Overwriting an already-resident page is not an eviction, and a
        // cross-context victim is invisible to this context's mechanism.
        let evicted = self
            .cache
            .insert(page, frame)
            .filter(|e| e.same_asid && e.page != page)
            .map(|e| e.page);
        TlbFill { evicted }
    }

    /// Invalidates all entries (flushing context switch), keeping
    /// counters.
    pub fn flush(&mut self) {
        self.cache.flush();
    }

    /// Switches the current context tag (flush-free context switch).
    pub fn set_asid(&mut self, asid: Asid) {
        self.cache.set_asid(asid);
    }

    /// The current context tag.
    pub fn asid(&self) -> Asid {
        self.cache.asid()
    }

    /// Invalidates every translation tagged with `asid`, keeping
    /// counters and other contexts' entries.
    pub fn evict_asid(&mut self, asid: Asid) {
        self.cache.evict_asid(asid);
    }

    /// Number of resident translations.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Returns `true` if the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Configured geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Lookups performed since creation.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since creation.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Miss rate in `[0, 1]`; zero before any lookup.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses() as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: usize) -> Tlb {
        Tlb::new(TlbConfig::fully_associative(entries)).unwrap()
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut t = tlb(2);
        assert!(t.lookup(VirtPage::new(1)).is_none());
        t.fill(VirtPage::new(1), PhysPage::new(10));
        assert_eq!(t.lookup(VirtPage::new(1)), Some(PhysPage::new(10)));
        assert_eq!(t.lookups(), 2);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
        assert!((t.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fill_reports_lru_eviction() {
        let mut t = tlb(2);
        t.fill(VirtPage::new(1), PhysPage::new(1));
        t.fill(VirtPage::new(2), PhysPage::new(2));
        t.lookup(VirtPage::new(1)); // 2 becomes LRU
        let fill = t.fill(VirtPage::new(3), PhysPage::new(3));
        assert_eq!(fill.evicted, Some(VirtPage::new(2)));
    }

    #[test]
    fn refill_of_resident_page_is_not_an_eviction() {
        let mut t = tlb(2);
        t.fill(VirtPage::new(1), PhysPage::new(1));
        let fill = t.fill(VirtPage::new(1), PhysPage::new(99));
        assert_eq!(fill.evicted, None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn contains_does_not_count_as_lookup() {
        let mut t = tlb(2);
        t.fill(VirtPage::new(1), PhysPage::new(1));
        assert!(t.contains(VirtPage::new(1)));
        assert_eq!(t.lookups(), 0);
    }

    #[test]
    fn flush_invalidates_but_keeps_counters() {
        let mut t = tlb(2);
        t.fill(VirtPage::new(1), PhysPage::new(1));
        t.lookup(VirtPage::new(1));
        t.flush();
        assert!(t.is_empty());
        assert_eq!(t.hits(), 1);
        assert!(t.lookup(VirtPage::new(1)).is_none());
    }

    #[test]
    fn set_associative_tlb_respects_sets() {
        let cfg = TlbConfig {
            entries: 4,
            assoc: Associativity::ways_of(2),
        };
        let mut t = Tlb::new(cfg).unwrap();
        // Fill set 0 (even pages).
        t.fill(VirtPage::new(0), PhysPage::new(0));
        t.fill(VirtPage::new(2), PhysPage::new(2));
        let fill = t.fill(VirtPage::new(4), PhysPage::new(4));
        assert_eq!(fill.evicted, Some(VirtPage::new(0)));
        // Odd set untouched.
        t.fill(VirtPage::new(1), PhysPage::new(1));
        assert!(t.contains(VirtPage::new(1)));
    }

    #[test]
    fn paper_default_shape() {
        let t = Tlb::new(TlbConfig::paper_default()).unwrap();
        assert_eq!(t.config().entries, 128);
        assert_eq!(t.config().assoc, Associativity::Full);
    }

    #[test]
    fn asid_switch_hides_translations_without_flushing() {
        let mut t = tlb(4);
        t.fill(VirtPage::new(1), PhysPage::new(10));
        t.set_asid(Asid::new(1));
        // The other context's translation is invisible...
        assert!(t.lookup(VirtPage::new(1)).is_none());
        t.fill(VirtPage::new(1), PhysPage::new(20));
        assert_eq!(t.lookup(VirtPage::new(1)), Some(PhysPage::new(20)));
        // ...and comes straight back on switch-back: no flush happened.
        t.set_asid(Asid::DEFAULT);
        assert_eq!(t.lookup(VirtPage::new(1)), Some(PhysPage::new(10)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cross_context_victim_is_not_reported() {
        let mut t = tlb(2);
        t.fill(VirtPage::new(1), PhysPage::new(1));
        t.fill(VirtPage::new(2), PhysPage::new(2));
        t.set_asid(Asid::new(1));
        // The fill steals context 0's LRU way, but this context's
        // mechanism must not see a page it never referenced.
        let fill = t.fill(VirtPage::new(9), PhysPage::new(9));
        assert_eq!(fill.evicted, None);
        // A same-context victim is still reported.
        t.fill(VirtPage::new(10), PhysPage::new(10));
        let fill = t.fill(VirtPage::new(11), PhysPage::new(11));
        assert_eq!(fill.evicted, Some(VirtPage::new(9)));
    }

    #[test]
    fn evict_asid_equals_flush_when_one_context_is_live() {
        let mut t = tlb(4);
        t.fill(VirtPage::new(1), PhysPage::new(1));
        t.fill(VirtPage::new(2), PhysPage::new(2));
        t.lookup(VirtPage::new(1));
        t.evict_asid(Asid::DEFAULT);
        assert!(t.is_empty());
        assert_eq!(t.hits(), 1, "counters survive like flush()");
    }

    #[test]
    fn working_set_equal_to_capacity_never_misses_after_warmup() {
        let mut t = tlb(8);
        for lap in 0..10 {
            for p in 0..8u64 {
                if t.lookup(VirtPage::new(p)).is_none() {
                    assert_eq!(lap, 0, "miss after warm-up lap");
                    t.fill(VirtPage::new(p), PhysPage::new(p));
                }
            }
        }
        assert_eq!(t.misses(), 8);
    }
}
