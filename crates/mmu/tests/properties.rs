//! Property tests: the associative structures agree with naive reference
//! models.

use proptest::prelude::*;
use tlbsim_core::{Associativity, PhysPage, VirtPage};
use tlbsim_mmu::{AssocCache, PrefetchBuffer, Tlb, TlbConfig};

/// A naive fully-associative LRU model: a Vec ordered MRU-first.
#[derive(Default)]
struct NaiveLru {
    entries: Vec<u64>,
    capacity: usize,
}

impl NaiveLru {
    fn new(capacity: usize) -> Self {
        NaiveLru {
            entries: Vec::new(),
            capacity,
        }
    }

    fn lookup(&mut self, page: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|p| *p == page) {
            let p = self.entries.remove(pos);
            self.entries.insert(0, p);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, page: u64) -> Option<u64> {
        if let Some(pos) = self.entries.iter().position(|p| *p == page) {
            let p = self.entries.remove(pos);
            self.entries.insert(0, p);
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            self.entries.pop()
        } else {
            None
        };
        self.entries.insert(0, page);
        evicted
    }
}

proptest! {
    /// The fully-associative TLB matches the naive LRU model exactly,
    /// including which page each fill evicts.
    #[test]
    fn tlb_matches_naive_lru(
        capacity in 1usize..32,
        pages in prop::collection::vec(0u64..64, 1..500),
    ) {
        let mut tlb = Tlb::new(TlbConfig::fully_associative(capacity)).unwrap();
        let mut model = NaiveLru::new(capacity);
        for page in pages {
            let vp = VirtPage::new(page);
            let hit = tlb.lookup(vp).is_some();
            prop_assert_eq!(hit, model.lookup(page));
            if !hit {
                let fill = tlb.fill(vp, PhysPage::new(page));
                let expected = model.fill(page);
                prop_assert_eq!(fill.evicted.map(VirtPage::number), expected);
            }
        }
    }

    /// A set-associative cache behaves like one independent naive LRU per
    /// set.
    #[test]
    fn set_assoc_cache_matches_per_set_models(
        ways in 1usize..5,
        sets_pow in 0u32..4,
        pages in prop::collection::vec(0u64..128, 1..400),
    ) {
        let sets = 1usize << sets_pow;
        let capacity = ways * sets;
        let assoc = if ways == 1 {
            Associativity::Direct
        } else if capacity == ways {
            Associativity::Full
        } else {
            Associativity::ways_of(ways)
        };
        let mut cache: AssocCache<u64> = AssocCache::new(capacity, assoc).unwrap();
        let real_sets = assoc.sets(capacity).unwrap();
        let mut models: Vec<NaiveLru> = (0..real_sets)
            .map(|_| NaiveLru::new(capacity / real_sets))
            .collect();
        for page in pages {
            let vp = VirtPage::new(page);
            let set = (page % real_sets as u64) as usize;
            let hit = cache.touch(vp).is_some();
            prop_assert_eq!(hit, models[set].lookup(page));
            if !hit {
                let evicted = cache.insert(vp, page).map(|e| e.page.number());
                prop_assert_eq!(evicted, models[set].fill(page));
            }
        }
    }

    /// The prefetch buffer conserves entries: inserted = promoted +
    /// evicted_unused + still-resident.
    #[test]
    fn prefetch_buffer_conserves_entries(
        capacity in 1usize..32,
        ops in prop::collection::vec((0u64..64, prop::bool::ANY), 1..400),
    ) {
        let mut pb = PrefetchBuffer::new(capacity).unwrap();
        let mut resident: std::collections::HashSet<u64> = Default::default();
        let mut dup_inserts = 0u64;
        for (page, promote) in ops {
            let vp = VirtPage::new(page);
            if promote {
                let was_resident = resident.remove(&page);
                prop_assert_eq!(pb.promote(vp).is_some(), was_resident);
            } else {
                if resident.contains(&page) {
                    dup_inserts += 1;
                }
                if let Some(ev) = pb.insert(vp, PhysPage::new(page)) {
                    resident.remove(&ev.number());
                }
                resident.insert(page);
            }
        }
        prop_assert_eq!(pb.len(), resident.len());
        prop_assert_eq!(
            pb.inserted(),
            pb.promoted() + pb.evicted_unused() + pb.len() as u64 + dup_inserts
        );
    }

    /// TLB miss counting is exact: misses equal the number of lookups
    /// that returned None.
    #[test]
    fn tlb_counters_are_exact(
        capacity in 1usize..16,
        pages in prop::collection::vec(0u64..32, 1..300),
    ) {
        let mut tlb = Tlb::new(TlbConfig::fully_associative(capacity)).unwrap();
        let mut misses = 0u64;
        for page in &pages {
            let vp = VirtPage::new(*page);
            if tlb.lookup(vp).is_none() {
                misses += 1;
                tlb.fill(vp, PhysPage::new(*page));
            }
        }
        prop_assert_eq!(tlb.misses(), misses);
        prop_assert_eq!(tlb.lookups(), pages.len() as u64);
    }
}
