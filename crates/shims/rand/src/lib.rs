//! Offline stand-in for the `rand` API subset used by `tlbsim-workloads`:
//! `SmallRng::seed_from_u64`, `Rng::gen_range(Range<u64>)`, and
//! `SliceRandom::shuffle`.
//!
//! The generator is splitmix64 — tiny, fast, and statistically far more
//! than good enough for synthetic page-visit permutations. Streams are
//! deterministic per seed (the property the workload models and their
//! tests rely on), though the concrete sequences differ from the real
//! `rand::rngs::SmallRng`.

use std::ops::Range;

/// Types that can be seeded from a `u64` (stand-in for
/// `rand::SeedableRng`; only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core 64-bit generation (stand-in for `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling on top of [`RngCore`] (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (empty ranges panic).
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "cannot sample an empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A splitmix64 generator standing in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence helpers (stand-in for `rand::seq`).

    use super::Rng;

    /// Slice shuffling (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SmallRng::seed_from_u64(1).next_u64();
        let b = SmallRng::seed_from_u64(2).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u64> = (0..64).collect();
        let original = v.clone();
        let mut rng = SmallRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        assert_ne!(v, original);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }
}
