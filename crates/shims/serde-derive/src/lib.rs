//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The simulator derives serde traits on its config and stats types so
//! downstream users can persist them, but nothing in-repo serializes at
//! runtime. In the offline build environment the real `serde_derive` is
//! unavailable, so these derives expand to nothing; the marker traits in
//! `tlbsim-shim-serde` are blanket-implemented instead.

use proc_macro::TokenStream;

/// Expands to nothing; `tlbsim-shim-serde` blanket-implements the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `tlbsim-shim-serde` blanket-implements the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
