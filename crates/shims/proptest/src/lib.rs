//! Offline stand-in for the `proptest` API subset this repo's property
//! tests use: range/`Just`/tuple/`prop_map`/`prop_oneof!` strategies,
//! `prop::collection::vec`, `any::<T>()`, the `proptest!` test macro,
//! and the `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **no shrinking** — a failing case panics directly; generation is
//!   fully deterministic (seeded from the test name and case index), so
//!   a failure reproduces exactly by rerunning the same test;
//! * **fixed case count** — [`ProptestConfig::default`] runs 32 cases
//!   (`with_cases` overrides), keeping the offline suite fast.

/// Deterministic splitmix64 generator driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case, derived from the test name and
    /// case index so runs are reproducible.
    pub fn for_case(case: u64, test_name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.arms.len() as u64) as usize;
            self.arms[arm].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end as i128 - start as i128 + 1;
                    if span > u64::MAX as i128 {
                        // Full 64-bit domain: sampling modulo a span
                        // would wrap to 0, so draw the raw bits instead.
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6)
    );
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// The accepted size specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniformly random booleans (stand-in for `prop::bool::ANY`).
    pub const ANY: Any = Any;
}

/// Types with a canonical "anything" strategy (stand-in for
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: strategy::Strategy<Value = Self>;
    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy marker for primitive types.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl strategy::Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = bool::Any;
    fn arbitrary() -> Self::Strategy {
        bool::ANY
    }
}

/// The full-domain strategy for `T` (stand-in for `proptest::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Succeeds if the condition holds, otherwise skips the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(u64::from(__case), stringify!($name));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ()> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                let _ = __outcome;
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! The glob import the test suites use.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig, TestRng,
    };

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection`, `prop::bool`).
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0, "ranges");
        for _ in 0..500 {
            let x = Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&x));
            let y = Strategy::generate(&(-4i64..4), &mut rng);
            assert!((-4..4).contains(&y));
            let z = Strategy::generate(&(1usize..=3), &mut rng);
            assert!((1..=3).contains(&z));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case(1, "vec");
        let strat = prop::collection::vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case(2, "oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, tuples, maps and assume all work.
        #[test]
        fn macro_smoke((a, b) in (0u64..10, 0u64..10), flip in prop::bool::ANY) {
            prop_assume!(a != 9);
            let sum = (0u64..5).prop_map(move |x| x + a);
            let mut rng = TestRng::for_case(a, "inner");
            prop_assert!(Strategy::generate(&sum, &mut rng) >= a);
            prop_assert_eq!(b < 10, true);
            prop_assert_ne!(flip as u64, 2);
        }
    }
}
