//! Offline stand-in for the `serde` facade.
//!
//! Exposes `Serialize`/`Deserialize` as both marker traits (blanket
//! implemented, so bounds written against them always hold) and no-op
//! derive macros. The repo only *derives* these traits — no code path
//! serializes at runtime — so this is enough to keep the public type
//! signatures identical to a networked build against real serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
