//! Offline stand-in for the `criterion` API subset the bench suites use.
//!
//! A real (if simple) measuring harness: every benchmark is warmed up
//! once, then timed over enough iterations to fill a measurement window,
//! and the median-of-samples nanoseconds per iteration is printed
//! together with derived element throughput when the group declared one.
//! There is no statistical regression machinery — results are for
//! eyeballing and for in-bench assertions via [`Criterion::results`].
//! (`xp bench-json` measures the same stream fixtures but with its own
//! min-of-N harness, so its absolute numbers are not interchangeable
//! with these medians.)
//!
//! Environment knobs:
//!
//! * `TLBSIM_BENCH_WINDOW_MS` — per-sample measurement window
//!   (default 120 ms);
//! * `TLBSIM_BENCH_SAMPLES` — samples per benchmark (default 7).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration work, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark path (`group/label`).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Declared per-iteration element count, if any.
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Elements per second, when a throughput was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements.map(|n| n as f64 / (self.ns_per_iter / 1e9))
    }
}

/// Drives closures through the measurement loop.
pub struct Bencher<'a> {
    window: Duration,
    samples: usize,
    recorded: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Measures `routine`, keeping its return value alive via
    /// [`black_box`] so the work is not optimised away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));

        let iters_per_sample = (self.window.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.recorded
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// The top-level harness handle (stand-in for `criterion::Criterion`).
pub struct Criterion {
    window: Duration,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let window_ms = std::env::var("TLBSIM_BENCH_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120u64);
        let samples = std::env::var("TLBSIM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(7usize);
        Criterion {
            window: Duration::from_millis(window_ms),
            samples: samples.max(1),

            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_owned(), None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut recorded = Vec::new();
        let mut bencher = Bencher {
            window: self.window,
            samples: self.samples,
            recorded: &mut recorded,
        };
        f(&mut bencher);
        if recorded.is_empty() {
            return;
        }
        recorded.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let ns_per_iter = recorded[recorded.len() / 2];
        let elements = match throughput {
            Some(Throughput::Elements(n)) => Some(n),
            _ => None,
        };
        let result = BenchResult {
            name,
            ns_per_iter,
            elements,
        };
        match result.elements_per_sec() {
            Some(eps) => println!(
                "{:<44} {:>14.1} ns/iter {:>14.0} elem/s",
                result.name, result.ns_per_iter, eps
            ),
            None => println!("{:<44} {:>14.1} ns/iter", result.name, result.ns_per_iter),
        }
        self.results.push(result);
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("measured {} benchmarks", self.results.len());
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling is controlled by the
    /// environment knobs instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.label);
        let throughput = self.throughput;
        self.criterion.run_one(name, throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().label);
        let throughput = self.throughput;
        self.criterion.run_one(name, throughput, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("TLBSIM_BENCH_WINDOW_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>());
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 2 + 2));
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].name, "g/x");
        assert!(c.results()[0].elements_per_sec().unwrap() > 0.0);
        assert!(c.results()[1].elements.is_none());
    }
}
