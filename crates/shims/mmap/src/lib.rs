//! Offline stand-in for the usual memory-mapping crates (`memmap2`): a
//! minimal **read-only** file mapping built directly on the `mmap`
//! syscall, plus a safe read-whole-file fallback.
//!
//! This is the *only* crate in the workspace allowed to contain `unsafe`
//! code — every other crate keeps `#![forbid(unsafe_code)]` and consumes
//! the mapping through the safe [`Mmap::as_bytes`] slice. The unsafe
//! surface is deliberately tiny:
//!
//! * the raw `mmap`/`munmap` syscalls (no `libc` in the offline build
//!   environment, so the two syscalls are issued with inline assembly on
//!   x86-64 and aarch64 Linux);
//! * the `&[u8]` view over the mapped pages;
//! * the `Send`/`Sync` impls, sound because the mapping is private,
//!   read-only and owned until `Drop`.
//!
//! On other platforms — or whenever the syscall fails — [`Mmap::open`]
//! falls back to reading the whole file into an owned buffer, so callers
//! get identical semantics everywhere and only lose the zero-copy
//! property.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fs::File;
use std::io;
use std::path::Path;

/// Which implementation backs an [`Mmap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The file's pages are mapped directly (zero-copy).
    Mapped,
    /// The file was read into an owned heap buffer (fallback).
    Buffered,
}

impl Backend {
    /// A short human-readable label (`"mmap"` / `"read"`).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Mapped => "mmap",
            Backend::Buffered => "read",
        }
    }
}

enum Storage {
    /// A live `mmap` region: base pointer and length in bytes, plus a
    /// skew marking where the caller's requested range starts inside
    /// the mapping (`mmap` offsets must be page-aligned; a range map
    /// aligns down and hides the alignment slack behind the skew).
    ///
    /// Invariants: `ptr` came from a successful read-only `MAP_PRIVATE`
    /// mmap of `len > 0` bytes, `skew <= len`, and the region is
    /// unmapped exactly once, in `Drop`.
    Mapped {
        ptr: *const u8,
        len: usize,
        skew: usize,
    },
    /// The read-whole-file fallback (also used for empty files, which
    /// `mmap` rejects with `EINVAL`).
    Buffered(Vec<u8>),
}

/// Page-cache advice forwarded to `madvise` on mapped views (a no-op on
/// buffered views and platforms without the syscall). Advice is always
/// best-effort: the kernel may ignore it, so failures are swallowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Expect sequential access: aggressive readahead, early eviction
    /// behind the cursor (`MADV_SEQUENTIAL`).
    Sequential,
    /// Expect access soon: start readahead now (`MADV_WILLNEED`).
    WillNeed,
}

/// A read-only view of a file's bytes, memory-mapped when the platform
/// allows and read into a buffer otherwise.
///
/// # Examples
///
/// ```
/// let path = std::env::temp_dir().join(format!("mmap-shim-doc-{}", std::process::id()));
/// std::fs::write(&path, b"hello mapping").unwrap();
/// let map = tlbsim_shim_mmap::Mmap::open(&path).unwrap();
/// assert_eq!(map.as_bytes(), b"hello mapping");
/// std::fs::remove_file(&path).unwrap();
/// ```
pub struct Mmap {
    storage: Storage,
    backend: Backend,
}

// SAFETY: the mapped region is private and read-only for the lifetime
// of the value, accessed only through `&self`, and unmapped exactly once
// in `Drop`; the buffered variant is an ordinary `Vec<u8>`.
unsafe impl Send for Mmap {}
// SAFETY: as above — shared references only ever read the bytes.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only, falling back to [`Mmap::open_buffered`] if
    /// mapping is unsupported on this platform or the syscall fails.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path.as_ref())?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map into this address space",
            ));
        }
        if len == 0 {
            // `mmap` rejects zero-length mappings (EINVAL); an empty
            // buffer is served — and reported — as the buffered path.
            return Ok(Mmap {
                storage: Storage::Buffered(Vec::new()),
                backend: Backend::Buffered,
            });
        }
        match sys::map_readonly(&file, len as usize, 0) {
            Some(Ok(ptr)) => Ok(Mmap {
                storage: Storage::Mapped {
                    ptr,
                    len: len as usize,
                    skew: 0,
                },
                backend: Backend::Mapped,
            }),
            // `None` means "no mmap on this platform"; `Some(Err(_))`
            // means the syscall itself refused (exotic filesystem,
            // resource limits). Both degrade to the buffered path.
            Some(Err(_)) | None => Self::open_buffered(&file),
        }
    }

    /// Maps `len` bytes of `file` starting at byte `offset`, falling
    /// back to a positioned buffered read if mapping is unavailable.
    ///
    /// This is the windowed-replay primitive: a streaming cursor keeps
    /// one `File` open and remaps successive windows of a
    /// larger-than-RAM trace through this call, so no path re-open or
    /// per-window metadata lookup happens on the advance path. `mmap`
    /// requires page-aligned offsets; the requested offset is aligned
    /// down internally and the slack is hidden, so [`Mmap::as_bytes`]
    /// returns exactly the requested range.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the range extends past the end of the file (a
    /// mapped page past EOF would fault on access, not error), plus any
    /// I/O error from the buffered fallback.
    pub fn map_file_range(file: &File, offset: u64, len: usize) -> io::Result<Self> {
        let file_len = file.metadata()?.len();
        if offset
            .checked_add(len as u64)
            .is_none_or(|end| end > file_len)
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "range extends past the end of the file",
            ));
        }
        if len == 0 {
            return Ok(Mmap {
                storage: Storage::Buffered(Vec::new()),
                backend: Backend::Buffered,
            });
        }
        // Align the offset down to the (conservative) 4 KiB page grid.
        // If the platform's real page size is larger the syscall refuses
        // with EINVAL and the buffered fallback serves the same bytes.
        const PAGE: u64 = 4096;
        let aligned = offset - (offset % PAGE);
        let skew = (offset - aligned) as usize;
        let map_len = len + skew;
        match sys::map_readonly(file, map_len, aligned) {
            Some(Ok(ptr)) => Ok(Mmap {
                storage: Storage::Mapped {
                    ptr,
                    len: map_len,
                    skew,
                },
                backend: Backend::Mapped,
            }),
            Some(Err(_)) | None => Self::read_range_buffered(file, offset, len),
        }
    }

    /// The positioned-read fallback behind [`Mmap::map_file_range`].
    fn read_range_buffered(file: &File, offset: u64, len: usize) -> io::Result<Self> {
        use io::{Read as _, Seek as _};
        let mut reader: &File = file;
        reader.seek(io::SeekFrom::Start(offset))?;
        let mut bytes = vec![0u8; len];
        reader.read_exact(&mut bytes)?;
        Ok(Mmap {
            storage: Storage::Buffered(bytes),
            backend: Backend::Buffered,
        })
    }

    /// Forwards page-cache advice for the whole view to `madvise`.
    ///
    /// Best-effort by design: buffered views, platforms without the
    /// syscall, and kernels that refuse the advice all degrade to "no
    /// advice", never to an error — readahead is an optimisation, not a
    /// correctness property.
    pub fn advise(&self, advice: Advice) {
        if let Storage::Mapped { ptr, len, .. } = self.storage {
            sys::advise(ptr, len, advice);
        }
    }

    /// Reads the whole file into an owned buffer — the safe fallback,
    /// also reachable directly so tests can exercise both backends on
    /// any platform.
    pub fn open_buffered(file: &File) -> io::Result<Self> {
        let mut bytes = Vec::new();
        let mut reader: &File = file;
        io::Read::read_to_end(&mut reader, &mut bytes)?;
        Ok(Mmap {
            storage: Storage::Buffered(bytes),
            backend: Backend::Buffered,
        })
    }

    /// Wraps an in-memory buffer in the `Mmap` interface (for tests and
    /// tools that synthesise trace bytes without touching disk).
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Mmap {
            storage: Storage::Buffered(bytes),
            backend: Backend::Buffered,
        }
    }

    /// The file's bytes (for a range map, exactly the requested range).
    pub fn as_bytes(&self) -> &[u8] {
        match &self.storage {
            // SAFETY: `ptr` points at a live read-only mapping of
            // exactly `len` bytes with `skew <= len` (struct
            // invariants); the lifetime of the returned slice is tied
            // to `&self`, and the region is only unmapped in `Drop`.
            Storage::Mapped { ptr, len, skew } => {
                let full = unsafe { std::slice::from_raw_parts(*ptr, *len) };
                &full[*skew..]
            }
            Storage::Buffered(bytes) => bytes,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Mapped { len, skew, .. } => *len - *skew,
            Storage::Buffered(bytes) => bytes.len(),
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which implementation backs this view.
    pub fn backend(&self) -> Backend {
        self.backend
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if let Storage::Mapped { ptr, len, .. } = self.storage {
            // SAFETY: the pointer/length pair came from a successful
            // mmap and is unmapped exactly once; failure here cannot be
            // meaningfully handled, matching every mmap wrapper.
            unsafe { sys::unmap(ptr, len) };
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("backend", &self.backend.label())
            .finish()
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! Raw `mmap`/`munmap` on Linux, issued without `libc` (the offline
    //! build has no crates.io): number and arguments per the kernel's
    //! syscall ABI for each architecture.

    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    use super::Advice;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;
    const MADV_SEQUENTIAL: usize = 2;
    const MADV_WILLNEED: usize = 3;

    /// Maps `len` bytes of `file` read-only, starting at the
    /// page-aligned byte `offset`. `Some(Err(_))` is a syscall failure;
    /// the caller falls back to buffered reading.
    pub fn map_readonly(file: &File, len: usize, offset: u64) -> Option<io::Result<*const u8>> {
        let fd = file.as_raw_fd();
        // SAFETY: arguments follow the mmap(2) contract — addr = NULL
        // (kernel chooses), a non-zero length, read-only protection, a
        // private mapping of a valid owned fd at a page-aligned offset
        // inside the file. The kernel validates everything else and
        // reports errors in the return value, decoded below.
        let ret = unsafe { mmap_syscall(len, fd, offset) };
        if ret as usize >= -4095isize as usize {
            return Some(Err(io::Error::from_raw_os_error(-(ret as i32))));
        }
        Some(Ok(ret as *const u8))
    }

    /// Forwards [`Advice`] to `madvise(2)`; best-effort, result ignored.
    pub fn advise(ptr: *const u8, len: usize, advice: Advice) {
        let advice = match advice {
            Advice::Sequential => MADV_SEQUENTIAL,
            Advice::WillNeed => MADV_WILLNEED,
        };
        // SAFETY: `ptr`/`len` describe a live mapping (caller holds the
        // owning `Mmap`); madvise reads nothing and writes nothing in
        // the process's memory, it only tunes kernel readahead. A
        // refusal is irrelevant — advice is advisory.
        unsafe { madvise_syscall(ptr, len, advice) };
    }

    /// Unmaps a region previously returned by [`map_readonly`].
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must describe exactly one live mapping, which must
    /// not be used afterwards.
    pub unsafe fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: forwarded contract — one live mapping, unmapped once.
        unsafe { munmap_syscall(ptr, len) };
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn mmap_syscall(len: usize, fd: i32, offset: u64) -> isize {
        let ret: isize;
        // SAFETY: a plain syscall instruction; rcx/r11 are declared
        // clobbered per the x86-64 syscall ABI and no memory the
        // compiler knows about is touched.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9isize => ret, // __NR_mmap
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as isize,
                in("r9") offset as usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn madvise_syscall(ptr: *const u8, len: usize, advice: usize) {
        // SAFETY: as for `mmap_syscall`.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 28isize => _, // __NR_madvise
                in("rdi") ptr,
                in("rsi") len,
                in("rdx") advice,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn munmap_syscall(ptr: *const u8, len: usize) {
        // SAFETY: as for `mmap_syscall`.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 11isize => _, // __NR_munmap
                in("rdi") ptr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn mmap_syscall(len: usize, fd: i32, offset: u64) -> isize {
        let ret: isize;
        // SAFETY: a plain svc instruction following the aarch64 syscall
        // ABI (number in x8, arguments in x0..x5, result in x0).
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") 222isize, // __NR_mmap
                inlateout("x0") 0usize => ret,
                in("x1") len,
                in("x2") PROT_READ,
                in("x3") MAP_PRIVATE,
                in("x4") fd as isize,
                in("x5") offset as usize,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn madvise_syscall(ptr: *const u8, len: usize, advice: usize) {
        // SAFETY: as for `mmap_syscall`.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") 233isize, // __NR_madvise
                inlateout("x0") ptr => _,
                in("x1") len,
                in("x2") advice,
                options(nostack)
            );
        }
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn munmap_syscall(ptr: *const u8, len: usize) {
        // SAFETY: as for `mmap_syscall`.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") 215isize, // __NR_munmap
                inlateout("x0") ptr => _,
                in("x1") len,
                options(nostack)
            );
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! No raw mmap on this platform: `map_readonly` declines and the
    //! caller uses the buffered fallback.

    use std::fs::File;
    use std::io;

    use super::Advice;

    pub fn map_readonly(_file: &File, _len: usize, _offset: u64) -> Option<io::Result<*const u8>> {
        None
    }

    /// No mappings exist on the fallback platform, so never called with
    /// a live region; a no-op keeps the caller unconditional.
    pub fn advise(_ptr: *const u8, _len: usize, _advice: Advice) {}

    /// # Safety
    ///
    /// Never called: the fallback platform never produces a mapping.
    pub unsafe fn unmap(_ptr: *const u8, _len: usize) {
        unreachable!("no mappings exist on the fallback platform");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tlbsim-mmap-{}-{tag}", std::process::id()))
    }

    #[test]
    fn mapping_matches_file_contents() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.as_bytes(), payload.as_slice());
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn linux_hosts_get_the_zero_copy_backend() {
        let path = temp_path("backend");
        std::fs::write(&path, b"x").unwrap();
        let map = Mmap::open(&path).unwrap();
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert_eq!(map.backend(), Backend::Mapped);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buffered_fallback_agrees_with_the_mapping() {
        let path = temp_path("fallback");
        std::fs::write(&path, b"same bytes either way").unwrap();
        let mapped = Mmap::open(&path).unwrap();
        let buffered = Mmap::open_buffered(&std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(mapped.as_bytes(), buffered.as_bytes());
        assert_eq!(buffered.backend(), Backend::Buffered);
        assert_eq!(buffered.backend().label(), "read");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_bytes(), b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn from_vec_wraps_in_memory_bytes() {
        let map = Mmap::from_vec(vec![1, 2, 3]);
        assert_eq!(map.as_bytes(), &[1, 2, 3]);
        assert_eq!(map.backend(), Backend::Buffered);
        assert_eq!(format!("{map:?}"), "Mmap { len: 3, backend: \"read\" }");
    }

    #[test]
    fn missing_files_error() {
        assert!(Mmap::open(temp_path("missing-never-created")).is_err());
    }

    #[test]
    fn range_maps_serve_exactly_the_requested_window() {
        let path = temp_path("range");
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        // Unaligned offset, unaligned length, repeated windows through
        // one file handle — the streaming-cursor access pattern.
        for (offset, len) in [(0usize, 4096usize), (4100, 777), (19_000, 1000), (123, 0)] {
            let map = Mmap::map_file_range(&file, offset as u64, len).unwrap();
            assert_eq!(map.as_bytes(), &payload[offset..offset + len]);
            assert_eq!(map.len(), len);
            map.advise(Advice::Sequential);
            map.advise(Advice::WillNeed);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn range_maps_agree_with_the_buffered_fallback() {
        let path = temp_path("range-fallback");
        let payload: Vec<u8> = (0..9000u32).map(|i| (i % 199) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let mapped = Mmap::map_file_range(&file, 4097, 2000).unwrap();
        let buffered = Mmap::read_range_buffered(&file, 4097, 2000).unwrap();
        assert_eq!(mapped.as_bytes(), buffered.as_bytes());
        assert_eq!(buffered.backend(), Backend::Buffered);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_windows_are_rejected() {
        let path = temp_path("range-oob");
        std::fs::write(&path, vec![7u8; 100]).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(Mmap::map_file_range(&file, 50, 51).is_err());
        assert!(Mmap::map_file_range(&file, 101, 0).is_err());
        assert!(Mmap::map_file_range(&file, u64::MAX, 1).is_err());
        assert!(Mmap::map_file_range(&file, 50, 50).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mappings_move_across_threads() {
        let path = temp_path("threads");
        std::fs::write(&path, b"cross-thread bytes").unwrap();
        let map = Mmap::open(&path).unwrap();
        let sum = std::thread::spawn(move || map.as_bytes().iter().map(|b| *b as u64).sum::<u64>())
            .join()
            .unwrap();
        assert!(sum > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
