//! # tlbsim-bench — shared benchmark fixtures
//!
//! Deterministic miss streams and run helpers used by the Criterion
//! benches in `benches/`. The bench groups mirror the paper's artifacts:
//! `figures.rs` and `tables.rs` time the kernels that regenerate each
//! figure/table, `prefetchers.rs` and `substrates.rs` microbenchmark the
//! mechanisms and hardware models, `ablations.rs` quantifies the design
//! choices documented in the repository `README.md`, `throughput.rs`
//! gates the zero-allocation miss path (sink ≥ 1.5× the legacy `Vec`
//! path), `sharding.rs` gates the sharded single-run executor
//! (≥ 2× sequential throughput at 4 shards on ≥ 4-CPU hosts),
//! `trace_replay.rs` gates mmap trace replay (≥ 0.8× the
//! generator-driven throughput on the identical stream), and
//! `multiprogram.rs` gates the interleaved multiprogrammed path
//! (≥ 0.8× back-to-back single-stream throughput on the identical
//! accesses).

use tlbsim_sim::{Engine, SimConfig, SimStats};
use tlbsim_workloads::{AppSpec, Scale};

// The stream fixtures are canonically defined next to the telemetry
// that snapshots them (`xp bench-json`), so bench numbers and
// BENCH_throughput.json always measure the same streams.
pub use tlbsim_experiments::throughput::{looping_access_stream, mixed_miss_stream};

/// Runs an application through the functional engine at bench scale.
pub fn run_functional(app: &AppSpec, config: &SimConfig) -> SimStats {
    let mut engine = Engine::new(config).expect("valid bench configuration");
    engine.run(app.workload(Scale::TINY));
    engine.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_core::{CandidateBuf, PrefetcherConfig, PrefetcherKind};

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(mixed_miss_stream(100), mixed_miss_stream(100));
        assert_eq!(
            looping_access_stream(10, 2, 2),
            looping_access_stream(10, 2, 2)
        );
        assert_eq!(looping_access_stream(10, 2, 2).len(), 40);
    }

    #[test]
    fn sink_path_matches_vec_path_on_mixed_miss_stream() {
        // Byte-for-byte equivalence of the reusable-sink hot path and
        // the owned-decision convenience path on the shared bench
        // fixture, for every mechanism.
        let stream = mixed_miss_stream(5_000);
        for kind in PrefetcherKind::ALL {
            let mut via_sink = PrefetcherConfig::new(kind).build().unwrap();
            let mut via_decide = PrefetcherConfig::new(kind).build().unwrap();
            let mut sink = CandidateBuf::new();
            for (i, ctx) in stream.iter().enumerate() {
                sink.clear();
                via_sink.on_miss(ctx, &mut sink);
                let decision = via_decide.decide(ctx);
                assert_eq!(
                    sink.pages(),
                    decision.pages.as_slice(),
                    "{kind:?} diverged at miss {i}"
                );
                assert_eq!(sink.maintenance_ops(), decision.maintenance_ops);
            }
        }
    }
}
