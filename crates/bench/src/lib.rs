//! # tlbsim-bench — shared benchmark fixtures
//!
//! Deterministic miss streams and run helpers used by the Criterion
//! benches in `benches/`. The bench groups mirror the paper's artifacts:
//! `figures.rs` and `tables.rs` time the kernels that regenerate each
//! figure/table, `prefetchers.rs` and `substrates.rs` microbenchmark the
//! mechanisms and hardware models, and `ablations.rs` quantifies the
//! design choices called out in `DESIGN.md`.

use tlbsim_core::{MemoryAccess, MissContext, Pc, VirtPage};
use tlbsim_sim::{Engine, SimConfig, SimStats};
use tlbsim_workloads::{AppSpec, Scale};

/// A deterministic synthetic miss stream mixing strided runs with
/// repeating jumps — exercises every mechanism's table paths without
/// degenerating into a single hot row.
pub fn mixed_miss_stream(len: usize) -> Vec<MissContext> {
    let mut out = Vec::with_capacity(len);
    let mut page = 0x10_0000u64;
    for i in 0..len {
        let step = match i % 7 {
            0..=3 => 1,
            4 => 13,
            5 => 1,
            _ => 97,
        };
        page += step;
        out.push(MissContext {
            page: VirtPage::new(page),
            pc: Pc::new(0x400 + (i as u64 % 4) * 4),
            prefetch_buffer_hit: i % 3 == 0,
            evicted_tlb_entry: if i % 2 == 0 {
                Some(VirtPage::new(page - 200))
            } else {
                None
            },
        });
    }
    out
}

/// A deterministic access stream for whole-engine benchmarks.
pub fn looping_access_stream(pages: u64, refs: u64, laps: u64) -> Vec<MemoryAccess> {
    let mut out = Vec::with_capacity((pages * refs * laps) as usize);
    for _ in 0..laps {
        for p in 0..pages {
            for r in 0..refs {
                out.push(MemoryAccess::read(0x400, (0x10_0000 + p) * 4096 + r * 64));
            }
        }
    }
    out
}

/// Runs an application through the functional engine at bench scale.
pub fn run_functional(app: &AppSpec, config: &SimConfig) -> SimStats {
    let mut engine = Engine::new(config).expect("valid bench configuration");
    engine.run(app.workload(Scale::TINY));
    *engine.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(mixed_miss_stream(100), mixed_miss_stream(100));
        assert_eq!(
            looping_access_stream(10, 2, 2),
            looping_access_stream(10, 2, 2)
        );
        assert_eq!(looping_access_stream(10, 2, 2).len(), 40);
    }
}
