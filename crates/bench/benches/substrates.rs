//! Microbenchmarks of the hardware substrates: TLB, prefetch buffer,
//! page table, prefetch channel, and the trace codecs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlbsim_bench::looping_access_stream;
use tlbsim_core::{Associativity, PageSize, PhysPage, VirtPage};
use tlbsim_mem::PrefetchChannel;
use tlbsim_mmu::{PageTable, PrefetchBuffer, Tlb, TlbConfig};
use tlbsim_trace::{BinaryTraceReader, BinaryTraceWriter};

fn bench_tlb(c: &mut Criterion) {
    let stream = looping_access_stream(200, 4, 3);
    let mut group = c.benchmark_group("tlb");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (label, config) in [
        ("128-full", TlbConfig::fully_associative(128)),
        (
            "128-4way",
            TlbConfig {
                entries: 128,
                assoc: Associativity::ways_of(4),
            },
        ),
        ("64-full", TlbConfig::fully_associative(64)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| {
                let mut tlb = Tlb::new(*config).unwrap();
                for access in &stream {
                    let page = PageSize::DEFAULT.page_of(access.vaddr);
                    if tlb.lookup(page).is_none() {
                        tlb.fill(page, PhysPage::new(page.number()));
                    }
                }
                tlb.misses()
            });
        });
    }
    group.finish();
}

fn bench_prefetch_buffer(c: &mut Criterion) {
    c.bench_function("prefetch_buffer/insert_promote", |b| {
        b.iter(|| {
            let mut pb = PrefetchBuffer::new(16).unwrap();
            let mut hits = 0u64;
            for i in 0..10_000u64 {
                pb.insert(VirtPage::new(i % 64), PhysPage::new(i));
                if pb.promote(VirtPage::new((i + 3) % 64)).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    });
}

fn bench_page_table(c: &mut Criterion) {
    c.bench_function("page_table/translate", |b| {
        b.iter(|| {
            let mut pt = PageTable::new();
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc += pt.translate(VirtPage::new(i % 2048)).number();
            }
            acc
        });
    });
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("channel/issue_drain", |b| {
        b.iter(|| {
            let mut ch = PrefetchChannel::new(50);
            let mut delivered = 0u64;
            for i in 0..5_000u64 {
                ch.issue_maintenance(i * 10, 2);
                ch.issue_fetch(i * 10, VirtPage::new(i));
                ch.drain_arrived(i * 10 + 200, |_| delivered += 1);
            }
            delivered
        });
    });
}

fn bench_trace_codec(c: &mut Criterion) {
    let stream = looping_access_stream(500, 4, 2);
    let mut encoded = Vec::new();
    let mut writer = BinaryTraceWriter::create(&mut encoded).unwrap();
    for access in &stream {
        writer.write(access).unwrap();
    }
    writer.finish().unwrap();

    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            let mut w = BinaryTraceWriter::create(&mut buf).unwrap();
            for access in &stream {
                w.write(access).unwrap();
            }
            w.finish().unwrap();
            buf.len()
        });
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            BinaryTraceReader::open(encoded.as_slice())
                .unwrap()
                .filter(|r| r.is_ok())
                .count()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tlb,
    bench_prefetch_buffer,
    bench_page_table,
    bench_channel,
    bench_trace_codec
);
criterion_main!(benches);
